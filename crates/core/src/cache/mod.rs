//! The persistent, content-addressed, **tiered** verdict cache.
//!
//! Verification is a pure function of `(scalar, candidate, configuration)`:
//! the checksum harness is seeded, the SMT solver is deterministic, and
//! budgets are part of the configuration. The engine therefore memoizes
//! verdicts across batches — and, through the file backing, across
//! *processes* — keyed by content hashes rather than source text:
//!
//! * `scalar` — [`lv_cir::structural_hash`] of the scalar kernel, so
//!   renaming its variables, labels, or the kernel itself still hits;
//! * `candidate` — [`lv_cir::hash::structural_hash_in_env`] of the
//!   candidate in the scalar's parameter-name environment: renaming the
//!   candidate's locals or labels still hits, but renaming its *parameters*
//!   away from the scalar's misses — the harnesses bind arrays by parameter
//!   name, so that rename genuinely changes the verification problem. Any
//!   semantic edit (a constant, an operator, a type, the statement shape)
//!   misses;
//! * `config` — [`EngineConfig::semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint),
//!   covering the cascade stage list, the checksum harness configuration,
//!   and every solver budget. Anything that could change a verdict — or an
//!   `Inconclusive` outcome — invalidates the entry by changing its key.
//!
//! # Tiers
//!
//! A [`VerdictCache`] is a three-tier store; lookups fall through in order
//! and the first tier holding the key answers:
//!
//! 1. **hot** — the in-memory delta `HashMap`. Every [`VerdictCache::insert`]
//!    lands here (and, in journal mode, appends to the backing journal).
//!    The hot tier *shadows* the others: if a key exists in several tiers,
//!    the hot entry wins.
//! 2. **warm** — the local immutable binary snapshot the cache was opened
//!    from ([`CacheSnapshot`]): loaded zero-copy as one owned buffer,
//!    binary-searched in place, payloads decoded lazily on hit, negative
//!    lookups short-circuited by its bloom block.
//! 3. **cold** — optional shared-directory snapshots attached with
//!    [`VerdictCache::attach_cold_dir`], consulted in attach order. An
//!    attach re-checks the typed-conflict contract: a cold snapshot that
//!    *disagrees* with the currently-visible entries is rejected with the
//!    rendered [`CacheMergeError`] — never silently shadowed.
//!
//! There is no promotion on lookup (a warm/cold hit stays where it is —
//! promotion would re-journal bytes that are already durable). Promotion
//! happens at **compaction**: [`VerdictCache::compact_to`] folds every tier
//! into one sorted snapshot file, after which a reopen serves the whole
//! cache from the warm tier again.
//!
//! # File formats
//!
//! Four interchangeable on-disk forms, sniffed by content (first bytes) —
//! [`VerdictCache::open`] accepts any of them:
//!
//! **JSON snapshot** — a single JSON document (via the `serde` shim's
//! [`json`] module):
//!
//! ```json
//! {"version":1,"entries":[
//!   {"scalar":"0f3a…16 hex…","candidate":"…","config":"…",
//!    "verdict":"equivalent","stage":"cunroll","detail":"",
//!    "checksum":"plausible"}
//! ]}
//! ```
//!
//! Hashes are 16-digit lower-case hex strings (JSON numbers cannot hold a
//! `u64`). Entries are written in sorted key order, so persisting the same
//! contents twice produces byte-identical files. `checksum` is `null` for
//! verdicts produced by cascades without a checksum stage.
//!
//! **JSON journal** — the append-only form ([`crate::journal`] documents
//! the framing): a `{"journal":"verdict-cache","version":1}` header record
//! followed by one CRC-framed record per entry, so a torn tail is detected
//! and truncated, never mis-parsed.
//!
//! **Binary journal** — the same append-only contract behind the binary
//! framing (`LVBJ` magic, `[u32 len][payload][u32 crc32]` frames — see
//! [`crate::journal::BinaryJournalWriter`]), carrying compact binary
//! records instead of JSON lines:
//!
//! ```text
//! [scalar u64 LE][candidate u64 LE][config u64 LE]  -- 24-byte key prefix
//! [verdict u8][stage u8][checksum u8]               -- enum tags
//! [detail varint length][detail UTF-8 bytes]
//! ```
//!
//! **Binary snapshot** — the sorted immutable tier file (`LVCS` magic):
//! a fixed-stride key index, an optional bloom block, and a payload region
//! of key-stripped binary records, each region CRC-covered. [`snapshot`]
//! documents the exact layout.
//!
//! A journal-mode cache appends through one long-lived buffered handle:
//! every [`VerdictCache::insert`] flushes just that record — O(record)
//! flush I/O instead of the snapshot's O(file) rewrite — which is what lets
//! shard workers flush after every job without quadratic total I/O.
//! [`crate::journal::FsyncPolicy`] picks per-record durability;
//! compaction ([`VerdictCache::compact_journal`] /
//! [`VerdictCache::compact_to`]) always `fsync`s the snapshot *and its
//! parent directory* (the rename itself is durable — recorded in
//! [`VerdictCache::sync_events`] so tests can assert the sequence).
//!
//! # JSON interop guarantee
//!
//! JSON stays the import/export format. [`VerdictCache::persist`] and
//! [`VerdictCache::compact_journal`] always render the canonical sorted
//! JSON snapshot — byte-identical for identical contents regardless of
//! which tier or format each entry came from — so the byte-identity CI
//! pins survive the binary engine as conversion round-trip tests, and
//! `lv-sweep compact --format json` converts any binary file back to the
//! legacy snapshot byte-for-byte.
//!
//! # Invalidation rules
//!
//! There is no explicit invalidation: a key embeds everything a verdict
//! depends on, so stale entries are simply never looked up again. The
//! `version` field guards the *format and hash scheme* in all four forms:
//! bump [`CACHE_FORMAT_VERSION`] when [`lv_cir::structural_hash`]'s
//! protocol or any file layout changes, and readers reject files from
//! other versions (a rejected file is reported as an error, not silently
//! discarded, so an operator can delete it deliberately).

pub(crate) mod binary;
pub mod snapshot;

pub use snapshot::{BloomStats, CacheSnapshot, SnapshotError};

use crate::journal::{self, fsync_dir, BinaryJournalWriter, FsyncPolicy, JournalWriter};
use crate::pipeline::{Equivalence, Stage};
use lv_interp::ChecksumClass;
use serde::json::{self, CountingWriter, Emitter, Value};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// The on-disk format version; readers reject any other value.
pub const CACHE_FORMAT_VERSION: i64 = 1;

/// The content-addressed key of one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`lv_cir::structural_hash`] of the scalar kernel.
    pub scalar: u64,
    /// [`lv_cir::hash::structural_hash_in_env`] of the candidate in the
    /// scalar's parameter-name environment (see the module docs for why the
    /// pairing is semantic).
    pub candidate: u64,
    /// [`crate::EngineConfig::semantic_fingerprint`] of the engine
    /// configuration the verdict was produced under.
    pub config: u64,
}

/// A memoized verdict: everything a [`JobReport`](crate::JobReport) needs to
/// be bit-identical to a fresh run, minus the telemetry (a cache hit runs no
/// stages, so it has no traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// The final verdict.
    pub verdict: Equivalence,
    /// The stage that produced it.
    pub stage: Stage,
    /// Counterexample, mismatch, or inconclusive reason.
    pub detail: String,
    /// Checksum classification, when the cascade included the checksum stage.
    pub checksum: Option<ChecksumClass>,
}

/// Which serialization a cache journal or compacted snapshot uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheFormat {
    /// The legacy human-readable JSON forms — the import/export format.
    #[default]
    Json,
    /// The compact binary forms (`LVBJ` journal / `LVCS` snapshot).
    Binary,
}

impl CacheFormat {
    /// Stable CLI tag (`json` / `binary`).
    pub fn tag(&self) -> &'static str {
        match self {
            CacheFormat::Json => "json",
            CacheFormat::Binary => "binary",
        }
    }

    /// Parses [`CacheFormat::tag`] output.
    pub fn from_tag(tag: &str) -> Result<CacheFormat, String> {
        match tag {
            "json" => Ok(CacheFormat::Json),
            "binary" | "bin" => Ok(CacheFormat::Binary),
            other => Err(format!("unknown cache format `{}`", other)),
        }
    }
}

/// One durability syscall recorded by a compaction, in order — what the
/// fsync-sequence test asserts: the snapshot's bytes must be on disk
/// *before* the rename is made durable by the directory sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncEvent {
    /// `fsync` of the freshly-written snapshot (before it renamed into
    /// place).
    File(PathBuf),
    /// `fsync` of the snapshot's parent directory (after the rename),
    /// making the rename itself durable.
    Dir(PathBuf),
}

/// Why merging two verdict caches failed.
///
/// Verification is deterministic, so two caches built under the same format
/// version can only disagree on a key if one of them is corrupt, was produced
/// by a build with different semantics under the same
/// [`CACHE_FORMAT_VERSION`], or was tampered with. Last-write-wins would
/// silently propagate the corruption into every future sweep, so a merge
/// refuses instead: the conflict is a typed, actionable error naming the key
/// and both verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMergeError {
    /// Both caches hold the key with different verdict payloads.
    Conflict {
        /// The disputed key.
        key: CacheKey,
        /// What the destination cache holds.
        existing: Box<CachedVerdict>,
        /// What the source cache holds.
        incoming: Box<CachedVerdict>,
    },
}

impl std::fmt::Display for CacheMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheMergeError::Conflict {
                key,
                existing,
                incoming,
            } => write!(
                f,
                "verdict cache merge conflict on key (scalar {:016x}, candidate {:016x}, \
                 config {:016x}): existing verdict `{}` @ {} vs incoming `{}` @ {} — \
                 one of the caches is corrupt or was produced by a semantically \
                 different build under the same format version",
                key.scalar,
                key.candidate,
                key.config,
                verdict_tag(existing.verdict),
                stage_tag(existing.stage),
                verdict_tag(incoming.verdict),
                stage_tag(incoming.stage),
            ),
        }
    }
}

impl std::error::Error for CacheMergeError {}

/// What a successful [`VerdictCache::merge_from`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Keys added to the destination.
    pub added: usize,
    /// Keys present in both caches with identical verdicts (no-ops).
    pub agreed: usize,
}

/// Size bounds applied by [`VerdictCache::compact`], so million-candidate
/// sweeps do not grow the cache file without limit.
///
/// Eviction is deterministic: entries are dropped from the *end* of the
/// sorted key order (the same order [`VerdictCache::persist`] writes), so
/// compacting identical contents always keeps identical survivors —
/// bit-identical files again. The cache is content-addressed, so an evicted
/// entry costs only a re-verification on its next lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBounds {
    /// Maximum number of entries to keep; `None` means unbounded.
    pub max_entries: Option<usize>,
    /// Maximum size of the rendered cache file in bytes; `None` means
    /// unbounded. Enforced on the serialized JSON form, so it bounds the
    /// file a [`VerdictCache::persist`] would write.
    pub max_bytes: Option<usize>,
}

impl CacheBounds {
    /// Bounds that never evict.
    pub fn unbounded() -> CacheBounds {
        CacheBounds::default()
    }

    /// Returns `true` when neither bound is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// The cache's open journal handle, in either serialization.
#[derive(Debug)]
enum CacheJournal {
    /// JSON-line journal (the legacy format).
    Json(JournalWriter),
    /// Binary-framed journal.
    Binary(BinaryJournalWriter),
}

impl CacheJournal {
    fn append_entry(&mut self, key: &CacheKey, verdict: &CachedVerdict) -> io::Result<()> {
        match self {
            CacheJournal::Json(w) => w.append(|e| emit_entry(e, key, verdict)),
            CacheJournal::Binary(w) => w.append(|buf| binary::encode_record(buf, key, verdict)),
        }
    }

    fn bytes_written(&self) -> u64 {
        match self {
            CacheJournal::Json(w) => w.bytes_written(),
            CacheJournal::Binary(w) => w.bytes_written(),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            CacheJournal::Json(w) => w.flush(),
            CacheJournal::Binary(w) => w.flush(),
        }
    }

    fn set_flush_every(&mut self, n: usize) {
        match self {
            CacheJournal::Json(w) => w.set_flush_every(n),
            CacheJournal::Binary(w) => w.set_flush_every(n),
        }
    }
}

/// A thread-safe tiered verdict store, optionally backed by a file.
///
/// Workers on the engine's pool share one cache through an `Arc`; `get`
/// takes a short mutex for the hot tier and a read lock for the snapshot
/// tiers, never I/O. In the default snapshot mode, file I/O happens only in
/// [`VerdictCache::open`] and [`VerdictCache::persist`]; in journal mode
/// ([`VerdictCache::open_journal`] /
/// [`VerdictCache::open_journal_with`]) each `insert` additionally appends
/// one framed record through the cache's long-lived buffered journal handle
/// (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct VerdictCache {
    /// The hot tier. Lock order where multiple are nested: `journal`, then
    /// `tiers`, then `entries` (lookups acquire sequentially, never
    /// nested).
    entries: Mutex<HashMap<CacheKey, CachedVerdict>>,
    path: Option<PathBuf>,
    /// The open append handle when the cache is in journal mode.
    journal: Mutex<Option<CacheJournal>>,
    /// The warm snapshot (index 0, when the cache was opened from one)
    /// followed by attached cold snapshots, consulted in order after the
    /// hot tier misses.
    tiers: RwLock<Vec<CacheSnapshot>>,
    /// Cumulative bytes this cache has written to its backing file
    /// (snapshot rewrites + journal appends) — the flush-I/O metric the
    /// `journal_flush` bench compares across persistence modes.
    io_bytes: AtomicU64,
    /// Durability syscalls recorded by compactions, for the fsync-sequence
    /// test.
    sync_log: Mutex<Vec<SyncEvent>>,
}

impl VerdictCache {
    /// An empty cache with no file backing.
    pub fn in_memory() -> VerdictCache {
        VerdictCache::default()
    }

    /// A cache backed by `path`, in snapshot mode. A missing file yields an
    /// empty cache; an unreadable or malformed file is an error (never
    /// silently discarded). All four persisted formats are accepted: JSON
    /// and binary journals are replayed into the hot tier (tolerating a
    /// torn final record), a JSON snapshot is parsed into the hot tier, and
    /// a **binary snapshot becomes the warm tier** — loaded zero-copy, not
    /// parsed.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<VerdictCache> {
        let path = path.into();
        let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
        let bytes = match std::fs::read(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(VerdictCache {
                    path: Some(path),
                    ..VerdictCache::default()
                })
            }
            Err(e) => return Err(e),
            Ok(bytes) => bytes,
        };
        if snapshot::is_snapshot(&bytes) {
            let snap = CacheSnapshot::from_bytes(bytes).map_err(|e| invalid(e.to_string()))?;
            return Ok(VerdictCache {
                path: Some(path),
                tiers: RwLock::new(vec![snap]),
                ..VerdictCache::default()
            });
        }
        let entries = entries_from_bytes(&bytes).map_err(invalid)?;
        Ok(VerdictCache {
            entries: Mutex::new(entries),
            path: Some(path),
            ..VerdictCache::default()
        })
    }

    /// A cache backed by `path` in **journal mode** with the legacy JSON
    /// framing; see [`VerdictCache::open_journal_with`].
    pub fn open_journal(path: impl Into<PathBuf>, fsync: FsyncPolicy) -> io::Result<VerdictCache> {
        VerdictCache::open_journal_with(path, fsync, CacheFormat::Json)
    }

    /// A cache backed by `path` in **journal mode**: one buffered append
    /// handle is opened now and kept for the cache's lifetime, and every
    /// [`VerdictCache::insert`] appends (and flushes) one framed record —
    /// O(record) flush I/O per new verdict. `format` picks the framing:
    /// JSON lines or compact binary records.
    ///
    /// A missing file starts a fresh journal; an existing journal of the
    /// same format is replayed, its torn final record (if any) truncated,
    /// and appends continue where it left off; any other existing form
    /// (either snapshot, or a journal of the *other* format) is converted —
    /// rewritten as a journal of `format` (atomically, via a temp file) so
    /// appends can continue incrementally. `fsync` selects the durability
    /// policy.
    pub fn open_journal_with(
        path: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        format: CacheFormat,
    ) -> io::Result<VerdictCache> {
        let path = path.into();
        let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
        let existing = match std::fs::read(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
            Ok(bytes) => Some(bytes),
        };
        let (entries, writer) = match (existing, format) {
            (None, format) => (HashMap::new(), create_journal(&path, fsync, format)?),
            (Some(bytes), CacheFormat::Json) if is_text_journal(&bytes) => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|e| invalid(format!("journal is not UTF-8: {}", e)))?;
                let replayed = journal::replay(text).map_err(invalid)?;
                journal::check_header(&replayed, CACHE_JOURNAL_KIND, CACHE_FORMAT_VERSION)
                    .map_err(invalid)?;
                let entries = entries_from_records(&replayed.records).map_err(invalid)?;
                let writer = if replayed.valid_len == 0 {
                    // Torn header (crash at creation): start the journal over.
                    create_journal(&path, fsync, CacheFormat::Json)?
                } else {
                    CacheJournal::Json(JournalWriter::open_append(
                        &path,
                        fsync,
                        replayed.valid_len,
                    )?)
                };
                (entries, writer)
            }
            (Some(bytes), CacheFormat::Binary) if journal::is_binary_journal(&bytes) => {
                let replayed = journal::replay_binary(&bytes).map_err(invalid)?;
                binary::check_binary_cache_header(replayed.header).map_err(invalid)?;
                let entries =
                    binary::entries_from_binary_records(&replayed.records).map_err(invalid)?;
                let writer = if replayed.valid_len == 0 {
                    create_journal(&path, fsync, CacheFormat::Binary)?
                } else {
                    CacheJournal::Binary(BinaryJournalWriter::open_append(
                        &path,
                        fsync,
                        replayed.valid_len,
                    )?)
                };
                (entries, writer)
            }
            (Some(bytes), format) => {
                // Conversion, atomically: the existing file stays intact
                // until the fully-written journal renames over it.
                let entries = if snapshot::is_snapshot(&bytes) {
                    let snap =
                        CacheSnapshot::from_bytes(bytes).map_err(|e| invalid(e.to_string()))?;
                    snap.entries().into_iter().collect()
                } else {
                    entries_from_bytes(&bytes).map_err(invalid)?
                };
                let tmp = path.with_extension("tmp");
                let mut writer = create_journal(&tmp, fsync, format)?;
                let mut sorted: Vec<(&CacheKey, &CachedVerdict)> = entries.iter().collect();
                sorted.sort_by_key(|(key, _)| **key);
                for (key, verdict) in sorted {
                    writer.append_entry(key, verdict)?;
                }
                let len = match &mut writer {
                    CacheJournal::Json(w) => {
                        w.sync()?;
                        w.bytes_written()
                    }
                    CacheJournal::Binary(w) => {
                        w.sync()?;
                        w.bytes_written()
                    }
                };
                drop(writer);
                std::fs::rename(&tmp, &path)?;
                let writer = match format {
                    CacheFormat::Json => {
                        CacheJournal::Json(JournalWriter::open_append(&path, fsync, len)?)
                    }
                    CacheFormat::Binary => {
                        CacheJournal::Binary(BinaryJournalWriter::open_append(&path, fsync, len)?)
                    }
                };
                (entries, writer)
            }
        };
        Ok(VerdictCache {
            entries: Mutex::new(entries),
            path: Some(path),
            journal: Mutex::new(Some(writer)),
            ..VerdictCache::default()
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Whether the cache is in journal mode (appends per insert).
    pub fn is_journaling(&self) -> bool {
        self.journal.lock().unwrap().is_some()
    }

    /// The journal's serialization, when the cache is in journal mode.
    pub fn journal_format(&self) -> Option<CacheFormat> {
        self.journal.lock().unwrap().as_ref().map(|j| match j {
            CacheJournal::Json(_) => CacheFormat::Json,
            CacheJournal::Binary(_) => CacheFormat::Binary,
        })
    }

    /// Sets the journal's flush batching (see
    /// [`JournalWriter::set_flush_every`]): every `n`-th appended record
    /// flushes; a crash loses at most `n - 1` buffered tail entries. No-op
    /// in snapshot mode.
    pub fn set_journal_flush_every(&self, n: usize) {
        if let Some(writer) = self.journal.lock().unwrap().as_mut() {
            writer.set_flush_every(n);
        }
    }

    /// Cumulative bytes written to the backing file over this cache's
    /// lifetime — snapshot rewrites plus journal appends. The flush-cost
    /// metric: rewrite-per-job grows it quadratically, a journal linearly.
    pub fn io_bytes_written(&self) -> u64 {
        self.io_bytes.load(Ordering::Relaxed)
    }

    /// The durability syscalls compactions have performed, in order (see
    /// [`SyncEvent`]).
    pub fn sync_events(&self) -> Vec<SyncEvent> {
        self.sync_log.lock().unwrap().clone()
    }

    /// Attaches every binary snapshot found directly in `dir` as a cold
    /// tier, in file-name order (deterministic). Files that are not binary
    /// snapshots are skipped; a snapshot that fails validation is an error;
    /// a snapshot that *disagrees* with the currently-visible entries on
    /// any key is rejected with the rendered [`CacheMergeError`] (the
    /// typed-conflict contract — see the module docs). Returns how many
    /// snapshots were attached.
    pub fn attach_cold_dir(&self, dir: impl AsRef<Path>) -> io::Result<usize> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir.as_ref())?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| p.is_file() && Some(p.as_path()) != self.path.as_deref())
            .collect();
        paths.sort();
        let mut attached = 0;
        for path in paths {
            let mut magic = [0u8; 4];
            let readable = File::open(&path).and_then(|mut f| {
                use std::io::Read;
                f.read_exact(&mut magic)
            });
            if readable.is_err() || magic != snapshot::SNAPSHOT_MAGIC {
                continue;
            }
            self.attach_snapshot(&path)?;
            attached += 1;
        }
        Ok(attached)
    }

    /// Attaches one binary snapshot file as a cold tier, after checking the
    /// typed-conflict contract against the currently-visible entries.
    pub fn attach_snapshot(&self, path: &Path) -> io::Result<()> {
        let snap = CacheSnapshot::open(path)?;
        for (key, verdict) in snap.entries() {
            if let Some(existing) = self.get(&key) {
                if existing != verdict {
                    let conflict = CacheMergeError::Conflict {
                        key,
                        existing: Box::new(existing),
                        incoming: Box::new(verdict),
                    };
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("cold snapshot {}: {}", path.display(), conflict),
                    ));
                }
            }
        }
        self.tiers.write().unwrap().push(snap);
        Ok(())
    }

    /// Looks up a verdict: hot tier first, then each snapshot tier in
    /// order.
    pub fn get(&self, key: &CacheKey) -> Option<CachedVerdict> {
        if let Some(found) = self.entries.lock().unwrap().get(key) {
            return Some(found.clone());
        }
        let tiers = self.tiers.read().unwrap();
        tiers.iter().find_map(|snap| snap.get(key))
    }

    /// Stores a verdict in the hot tier. In journal mode the record is also
    /// appended to the backing file and flushed (best-effort, like the
    /// shard flush protocol: an unwritable journal surfaces later as
    /// missing persisted output, and the in-memory entry is stored
    /// regardless). An insert whose verdict is already visible in *any*
    /// tier appends nothing.
    pub fn insert(&self, key: CacheKey, verdict: CachedVerdict) {
        let mut journal = self.journal.lock().unwrap();
        if let Some(writer) = journal.as_mut() {
            let stale = self.get(&key).as_ref() == Some(&verdict);
            if !stale {
                let before = writer.bytes_written();
                let _ = writer.append_entry(&key, &verdict);
                self.io_bytes
                    .fetch_add(writer.bytes_written() - before, Ordering::Relaxed);
            }
        }
        drop(journal);
        self.entries.lock().unwrap().insert(key, verdict);
    }

    /// Number of distinct visible verdicts across every tier (hot entries
    /// shadow snapshot entries with the same key).
    pub fn len(&self) -> usize {
        let hot = self.entries.lock().unwrap().clone();
        let tiers = self.tiers.read().unwrap();
        if tiers.is_empty() {
            return hot.len();
        }
        let mut seen = hot;
        for snap in tiers.iter() {
            for (key, verdict) in snap.entries() {
                seen.entry(key).or_insert(verdict);
            }
        }
        seen.len()
    }

    /// Returns `true` if the cache holds no verdicts in any tier.
    pub fn is_empty(&self) -> bool {
        if !self.entries.lock().unwrap().is_empty() {
            return false;
        }
        self.tiers.read().unwrap().iter().all(|s| s.is_empty())
    }

    /// Every visible entry, tier-merged (hot shadows warm shadows cold).
    fn effective_entries(&self) -> HashMap<CacheKey, CachedVerdict> {
        let mut map = self.entries.lock().unwrap().clone();
        let tiers = self.tiers.read().unwrap();
        for snap in tiers.iter() {
            for (key, verdict) in snap.entries() {
                map.entry(key).or_insert(verdict);
            }
        }
        map
    }

    /// Folds every snapshot tier into the hot map (shadowed keys keep their
    /// hot value) and drops the tiers — the mutable view compaction and
    /// eviction work on.
    fn materialize(&self) {
        let mut tiers = self.tiers.write().unwrap();
        if tiers.is_empty() {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        for snap in tiers.iter() {
            for (key, verdict) in snap.entries() {
                entries.entry(key).or_insert(verdict);
            }
        }
        tiers.clear();
    }

    /// Merges every visible entry of `other` into this cache's hot tier.
    ///
    /// A key present in both caches with the *same* verdict is a no-op; a
    /// key present with *different* verdicts aborts the merge with
    /// [`CacheMergeError::Conflict`] — never last-write-wins (see the error
    /// type for why). On error the destination may already contain some of
    /// `other`'s non-conflicting entries; since those entries agree with
    /// `other` by construction, the destination is still internally
    /// consistent.
    pub fn merge_from(&self, other: &VerdictCache) -> Result<MergeStats, CacheMergeError> {
        let incoming = other.effective_entries();
        let tiers = self.tiers.read().unwrap();
        let mut entries = self.entries.lock().unwrap();
        let mut stats = MergeStats::default();
        for (key, verdict) in incoming {
            let existing = entries
                .get(&key)
                .cloned()
                .or_else(|| tiers.iter().find_map(|snap| snap.get(&key)));
            match existing {
                None => {
                    entries.insert(key, verdict);
                    stats.added += 1;
                }
                Some(existing) if existing == verdict => stats.agreed += 1,
                Some(existing) => {
                    return Err(CacheMergeError::Conflict {
                        key,
                        existing: Box::new(existing),
                        incoming: Box::new(verdict),
                    })
                }
            }
        }
        Ok(stats)
    }

    /// [`VerdictCache::merge_from`] over a cache *file*: loads `path` and
    /// merges its entries into this cache. Unreadable or malformed files and
    /// merge conflicts are all reported as [`io::Error`]s (a conflict uses
    /// [`io::ErrorKind::InvalidData`] and carries the rendered
    /// [`CacheMergeError`] message).
    pub fn merge_file(&self, path: impl Into<PathBuf>) -> io::Result<MergeStats> {
        let other = VerdictCache::open(path)?;
        self.merge_from(&other)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Evicts entries until the cache fits `bounds`; returns how many were
    /// dropped. Eviction order is the tail of the sorted key order, so it is
    /// deterministic (see [`CacheBounds`]). Snapshot tiers are materialized
    /// into the hot tier first — eviction needs a mutable view of every
    /// entry.
    pub fn compact(&self, bounds: &CacheBounds) -> usize {
        if bounds.is_unbounded() {
            return 0;
        }
        self.materialize();
        let mut entries = self.entries.lock().unwrap();
        let before = entries.len();
        if let Some(max) = bounds.max_entries {
            if entries.len() > max {
                let mut keys: Vec<CacheKey> = entries.keys().copied().collect();
                keys.sort();
                for key in keys.drain(max..) {
                    entries.remove(&key);
                }
            }
        }
        if let Some(max_bytes) = bounds.max_bytes {
            // One full size measurement establishes the total; each eviction
            // then shrinks it by exactly the entry's serialized bytes plus
            // its separating comma (none once the array is empty), so the
            // bound is enforced without re-measuring per entry.
            let mut size = snapshot_len(&entries);
            if size > max_bytes {
                let mut keys: Vec<CacheKey> = entries.keys().copied().collect();
                keys.sort();
                while size > max_bytes {
                    let Some(key) = keys.pop() else { break };
                    let verdict = entries.remove(&key).expect("key came from the map");
                    let serialized = entry_len(&key, &verdict);
                    size = size.saturating_sub(serialized + usize::from(!entries.is_empty()));
                }
            }
        }
        before - entries.len()
    }

    /// Writes the cache to its backing file. No-op for an in-memory cache,
    /// and for an unmodified snapshot-tier view (an empty hot tier over
    /// loaded snapshots — the file already holds the canonical contents,
    /// and a read-only open must not rewrite it).
    ///
    /// In snapshot mode this rewrites the whole file (atomically: temp
    /// file, then rename) as the canonical **JSON** snapshot — the export
    /// format (see the module docs) — streaming the tier-merged entries in
    /// sorted key order so persisting the same contents always produces
    /// byte-identical files. In journal mode every insert already appended
    /// and flushed its own record, so this only flushes the buffered
    /// writer.
    pub fn persist(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        {
            let mut journal = self.journal.lock().unwrap();
            if let Some(writer) = journal.as_mut() {
                return writer.flush();
            }
        }
        if self.entries.lock().unwrap().is_empty() && !self.tiers.read().unwrap().is_empty() {
            return Ok(());
        }
        let entries = self.effective_entries();
        let bytes = write_snapshot_atomic(path, &entries, false)?;
        self.io_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Compacts the cache file into the canonical **JSON snapshot** format;
    /// equivalent to [`VerdictCache::compact_to`] with
    /// [`CacheFormat::Json`].
    pub fn compact_journal(&self) -> io::Result<()> {
        self.compact_to(CacheFormat::Json)
    }

    /// Compacts the cache file into the snapshot form of `format`: the
    /// journal (if the cache is in journal mode) is closed and atomically
    /// replaced by the deterministic sorted snapshot of every visible entry
    /// — for [`CacheFormat::Json`], byte-identical to what a snapshot-mode
    /// [`VerdictCache::persist`] of the same contents writes; for
    /// [`CacheFormat::Binary`], the `LVCS` tier file (bloom block
    /// included).
    ///
    /// This is the durability point of [`FsyncPolicy::OnCompact`], honored
    /// uniformly for both formats: the snapshot is `fsync`ed *before* the
    /// rename, and the parent directory is `fsync`ed *after* it, so the
    /// rename itself survives power loss. Both syscalls are recorded in
    /// [`VerdictCache::sync_events`]. Afterwards the cache is in snapshot
    /// mode; further inserts no longer append. Idempotent, and callable on
    /// a snapshot-mode cache (where it is a synced persist).
    pub fn compact_to(&self, format: CacheFormat) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut journal = self.journal.lock().unwrap();
        let entries = self.effective_entries();
        let bytes = match format {
            CacheFormat::Json => write_snapshot_atomic(path, &entries, true)?,
            CacheFormat::Binary => {
                let mut sorted: Vec<(CacheKey, CachedVerdict)> = entries.into_iter().collect();
                sorted.sort_by_key(|(key, _)| *key);
                CacheSnapshot::write_file(path, &sorted, true, true)?
            }
        };
        let mut log = self.sync_log.lock().unwrap();
        log.push(SyncEvent::File(path.clone()));
        let parent = match path.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => dir.to_path_buf(),
            _ => PathBuf::from("."),
        };
        fsync_dir(&parent)?;
        log.push(SyncEvent::Dir(parent));
        drop(log);
        *journal = None;
        self.io_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }
}

/// Per-file statistics for `lv-sweep cache stats`: which of the four forms
/// a cache file is, how big it is, and what it holds.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheFileStats {
    /// The sniffed form: `json-snapshot`, `json-journal`, `binary-journal`,
    /// or `binary-snapshot`.
    pub format: &'static str,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Number of distinct entries.
    pub entries: usize,
    /// Entries whose verdict is `equivalent`.
    pub equivalent: usize,
    /// Entries whose verdict is `not-equivalent`.
    pub not_equivalent: usize,
    /// Entries whose verdict is `inconclusive`.
    pub inconclusive: usize,
    /// Bloom-block shape and estimated false-positive rate, for binary
    /// snapshots that carry one.
    pub bloom: Option<BloomStats>,
}

impl CacheFileStats {
    /// Average stored bytes per entry (0 for an empty file).
    pub fn bytes_per_entry(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.file_bytes as f64 / self.entries as f64
        }
    }
}

/// Computes [`CacheFileStats`] for any of the four persisted cache forms.
pub fn cache_file_stats(path: &Path) -> io::Result<CacheFileStats> {
    let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
    let bytes = std::fs::read(path)?;
    let file_bytes = bytes.len() as u64;
    let (format, entries, bloom) = if snapshot::is_snapshot(&bytes) {
        let snap = CacheSnapshot::from_bytes(bytes).map_err(|e| invalid(e.to_string()))?;
        let bloom = snap.bloom_stats();
        ("binary-snapshot", snap.entries(), bloom)
    } else if journal::is_binary_journal(&bytes) {
        let replayed = journal::replay_binary(&bytes).map_err(invalid)?;
        binary::check_binary_cache_header(replayed.header).map_err(invalid)?;
        let entries = binary::entries_from_binary_records(&replayed.records).map_err(invalid)?;
        ("binary-journal", entries.into_iter().collect(), None)
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| invalid(format!("cache file is not UTF-8: {}", e)))?;
        let format = if journal::is_journal(text) {
            "json-journal"
        } else {
            "json-snapshot"
        };
        let entries = parse_text(text).map_err(invalid)?;
        (format, entries.into_iter().collect(), None)
    };
    let mut stats = CacheFileStats {
        format,
        file_bytes,
        entries: entries.len(),
        equivalent: 0,
        not_equivalent: 0,
        inconclusive: 0,
        bloom,
    };
    for (_, verdict) in &entries {
        match verdict.verdict {
            Equivalence::Equivalent => stats.equivalent += 1,
            Equivalence::NotEquivalent => stats.not_equivalent += 1,
            Equivalence::Inconclusive => stats.inconclusive += 1,
        }
    }
    Ok(stats)
}

fn create_journal(
    path: &Path,
    fsync: FsyncPolicy,
    format: CacheFormat,
) -> io::Result<CacheJournal> {
    Ok(match format {
        CacheFormat::Json => {
            CacheJournal::Json(JournalWriter::create(path, fsync, emit_cache_header)?)
        }
        CacheFormat::Binary => CacheJournal::Binary(BinaryJournalWriter::create(
            path,
            fsync,
            binary::emit_binary_cache_header,
        )?),
    })
}

/// Does `bytes` look like a *text* (JSON) journal?
fn is_text_journal(bytes: &[u8]) -> bool {
    std::str::from_utf8(bytes)
        .map(journal::is_journal)
        .unwrap_or(false)
}

/// Parses any non-`LVCS` persisted form into an entry map, sniffing the
/// format from the first bytes.
fn entries_from_bytes(bytes: &[u8]) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    if journal::is_binary_journal(bytes) {
        let replayed = journal::replay_binary(bytes)?;
        binary::check_binary_cache_header(replayed.header)?;
        return binary::entries_from_binary_records(&replayed.records);
    }
    let text = std::str::from_utf8(bytes).map_err(|e| format!("cache file is not UTF-8: {}", e))?;
    parse_text(text)
}

pub(crate) fn hex(value: u64) -> Value {
    Value::Str(format!("{:016x}", value))
}

pub(crate) fn parse_hex(value: Option<&Value>, field: &str) -> Result<u64, String> {
    let s = value
        .and_then(Value::as_str)
        .ok_or_else(|| format!("entry is missing the `{}` hash", field))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("`{}` is not a hex hash: `{}`", field, s))
}

pub(crate) fn verdict_tag(verdict: Equivalence) -> &'static str {
    match verdict {
        Equivalence::Equivalent => "equivalent",
        Equivalence::NotEquivalent => "not-equivalent",
        Equivalence::Inconclusive => "inconclusive",
    }
}

pub(crate) fn parse_verdict(tag: &str) -> Result<Equivalence, String> {
    match tag {
        "equivalent" => Ok(Equivalence::Equivalent),
        "not-equivalent" => Ok(Equivalence::NotEquivalent),
        "inconclusive" => Ok(Equivalence::Inconclusive),
        other => Err(format!("unknown verdict tag `{}`", other)),
    }
}

pub(crate) fn stage_tag(stage: Stage) -> &'static str {
    match stage {
        Stage::Checksum => "checksum",
        Stage::Alive2 => "alive2",
        Stage::CUnroll => "cunroll",
        Stage::Splitting => "splitting",
    }
}

pub(crate) fn parse_stage(tag: &str) -> Result<Stage, String> {
    match tag {
        "checksum" => Ok(Stage::Checksum),
        "alive2" => Ok(Stage::Alive2),
        "cunroll" => Ok(Stage::CUnroll),
        "splitting" => Ok(Stage::Splitting),
        other => Err(format!("unknown stage tag `{}`", other)),
    }
}

pub(crate) fn checksum_tag(class: ChecksumClass) -> &'static str {
    match class {
        ChecksumClass::Plausible => "plausible",
        ChecksumClass::NotEquivalent => "not-equivalent",
        ChecksumClass::CannotCompile => "cannot-compile",
        ChecksumClass::ScalarFailed => "scalar-failed",
    }
}

/// Emits `checksum`'s value position: the stable tag, or `null` for
/// verdicts produced by cascades without a checksum stage.
pub(crate) fn emit_checksum<W: io::Write>(
    e: &mut Emitter<W>,
    class: Option<ChecksumClass>,
) -> io::Result<()> {
    match class {
        None => e.null(),
        Some(class) => e.str(checksum_tag(class)),
    }
}

pub(crate) fn parse_checksum(value: Option<&Value>) -> Result<Option<ChecksumClass>, String> {
    match value {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => match s.as_str() {
            "plausible" => Ok(Some(ChecksumClass::Plausible)),
            "not-equivalent" => Ok(Some(ChecksumClass::NotEquivalent)),
            "cannot-compile" => Ok(Some(ChecksumClass::CannotCompile)),
            "scalar-failed" => Ok(Some(ChecksumClass::ScalarFailed)),
            other => Err(format!("unknown checksum tag `{}`", other)),
        },
        Some(other) => Err(format!("checksum field has the wrong type: {}", other)),
    }
}

/// The journal-header kind tag for cache journals (both framings).
const CACHE_JOURNAL_KIND: &str = "verdict-cache";

/// Emits the JSON cache journal's header record payload.
fn emit_cache_header(e: &mut Emitter<&mut Vec<u8>>) -> io::Result<()> {
    e.begin_object()?;
    e.field_str("journal", CACHE_JOURNAL_KIND)?;
    e.field_int("version", CACHE_FORMAT_VERSION)?;
    e.end_object()
}

/// Streams one entry object — the shape shared by snapshot `entries`
/// elements and journal records.
fn emit_entry<W: io::Write>(
    e: &mut Emitter<W>,
    key: &CacheKey,
    verdict: &CachedVerdict,
) -> io::Result<()> {
    e.begin_object()?;
    e.field_hex("scalar", key.scalar)?;
    e.field_hex("candidate", key.candidate)?;
    e.field_hex("config", key.config)?;
    e.field_str("verdict", verdict_tag(verdict.verdict))?;
    e.field_str("stage", stage_tag(verdict.stage))?;
    e.field_str("detail", &verdict.detail)?;
    e.key("checksum")?;
    emit_checksum(e, verdict.checksum)?;
    e.end_object()
}

/// Streams the whole snapshot document (sorted key order, trailing newline)
/// into `w` — byte-identical for identical contents.
fn write_snapshot<W: io::Write>(
    w: W,
    entries: &HashMap<CacheKey, CachedVerdict>,
) -> io::Result<()> {
    let mut sorted: Vec<(&CacheKey, &CachedVerdict)> = entries.iter().collect();
    sorted.sort_by_key(|(key, _)| **key);
    let mut e = Emitter::new(w);
    e.begin_object()?;
    e.field_int("version", CACHE_FORMAT_VERSION)?;
    e.key("entries")?;
    e.begin_array()?;
    for (key, verdict) in sorted {
        emit_entry(&mut e, key, verdict)?;
    }
    e.end_array()?;
    e.end_object()?;
    let mut w = e.into_inner();
    w.write_all(b"\n")
}

/// Streams a document to `path` atomically (temp file, then rename),
/// creating parent directories as needed and optionally `fsync`ing before
/// the rename; returns the document's size in bytes. The one atomic-write
/// protocol shared by every snapshot surface (cache and shard exchange).
pub(crate) fn write_atomic_stream<F>(path: &Path, sync: bool, emit: F) -> io::Result<u64>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    let mut writer = BufWriter::new(File::create(&tmp)?);
    emit(&mut writer)?;
    let file = writer
        .into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let len = file.metadata()?.len();
    if sync {
        file.sync_all()?;
    }
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(len)
}

/// Atomic JSON snapshot rewrite via [`write_atomic_stream`].
fn write_snapshot_atomic(
    path: &Path,
    entries: &HashMap<CacheKey, CachedVerdict>,
    sync: bool,
) -> io::Result<u64> {
    write_atomic_stream(path, sync, |w| write_snapshot(w, entries))
}

/// Serialized size of the snapshot document for `entries`, measured by
/// streaming into a counting sink (no intermediate `String`).
fn snapshot_len(entries: &HashMap<CacheKey, CachedVerdict>) -> usize {
    let mut counter = CountingWriter::default();
    write_snapshot(&mut counter, entries).expect("counting never fails");
    counter.bytes as usize
}

/// Serialized size of one entry object.
fn entry_len(key: &CacheKey, verdict: &CachedVerdict) -> usize {
    let mut counter = CountingWriter::default();
    let mut e = Emitter::new(&mut counter);
    emit_entry(&mut e, key, verdict).expect("counting never fails");
    counter.bytes as usize
}

/// Parses either JSON persisted format, sniffing the journal marker.
fn parse_text(text: &str) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    if journal::is_journal(text) {
        let replayed = journal::replay(text)?;
        journal::check_header(&replayed, CACHE_JOURNAL_KIND, CACHE_FORMAT_VERSION)?;
        entries_from_records(&replayed.records)
    } else {
        parse_entries(text)
    }
}

/// Builds the entry map from replayed journal records. A key recorded twice
/// with the same verdict is a no-op (a concurrent duplicate append);
/// recorded with *different* verdicts it is corruption, reported like a
/// merge conflict would be — never last-write-wins.
fn entries_from_records(records: &[Value]) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    let mut entries = HashMap::with_capacity(records.len());
    for item in records {
        let (key, verdict) = parse_entry(item)?;
        match entries.get(&key) {
            None => {
                entries.insert(key, verdict);
            }
            Some(existing) if *existing == verdict => {}
            Some(_) => {
                return Err(format!(
                    "journal records disagree on key (scalar {:016x}, candidate {:016x}, \
                     config {:016x})",
                    key.scalar, key.candidate, key.config
                ))
            }
        }
    }
    Ok(entries)
}

/// Parses one entry object (shared by snapshot elements and journal
/// records).
fn parse_entry(item: &Value) -> Result<(CacheKey, CachedVerdict), String> {
    let key = CacheKey {
        scalar: parse_hex(item.get("scalar"), "scalar")?,
        candidate: parse_hex(item.get("candidate"), "candidate")?,
        config: parse_hex(item.get("config"), "config")?,
    };
    let verdict = CachedVerdict {
        verdict: parse_verdict(
            item.get("verdict")
                .and_then(Value::as_str)
                .ok_or("entry is missing `verdict`")?,
        )?,
        stage: parse_stage(
            item.get("stage")
                .and_then(Value::as_str)
                .ok_or("entry is missing `stage`")?,
        )?,
        detail: item
            .get("detail")
            .and_then(Value::as_str)
            .ok_or("entry is missing `detail`")?
            .to_string(),
        checksum: parse_checksum(item.get("checksum"))?,
    };
    Ok((key, verdict))
}

fn parse_entries(text: &str) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("version").and_then(Value::as_int) {
        Some(CACHE_FORMAT_VERSION) => {}
        Some(other) => {
            return Err(format!(
                "cache file has format version {}, this build reads version {}; \
                 delete the file to rebuild it",
                other, CACHE_FORMAT_VERSION
            ))
        }
        None => return Err("cache file has no `version` field".to_string()),
    }
    let items = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| "cache file has no `entries` array".to_string())?;
    let mut entries = HashMap::with_capacity(items.len());
    for item in items {
        let (key, verdict) = parse_entry(item)?;
        entries.insert(key, verdict);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(CacheKey, CachedVerdict)> {
        vec![
            (
                CacheKey {
                    scalar: 1,
                    candidate: 2,
                    config: 3,
                },
                CachedVerdict {
                    verdict: Equivalence::Equivalent,
                    stage: Stage::CUnroll,
                    detail: String::new(),
                    checksum: Some(ChecksumClass::Plausible),
                },
            ),
            (
                CacheKey {
                    scalar: u64::MAX,
                    candidate: 0xdead_beef,
                    config: 42,
                },
                CachedVerdict {
                    verdict: Equivalence::NotEquivalent,
                    stage: Stage::Checksum,
                    detail: "a[0]: expected 1 but \"the\" code\nproduced 2 \\ lane".to_string(),
                    checksum: Some(ChecksumClass::NotEquivalent),
                },
            ),
            (
                CacheKey {
                    scalar: 7,
                    candidate: 8,
                    config: 9,
                },
                CachedVerdict {
                    verdict: Equivalence::Inconclusive,
                    stage: Stage::Splitting,
                    detail: "solver exhausted its budget".to_string(),
                    checksum: None,
                },
            ),
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lv-cache-{}-{}", tag, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_round_trip_preserves_everything() {
        let dir = temp_dir("test");
        let path = dir.join("verdicts.json");
        let _ = std::fs::remove_file(&path);

        let cache = VerdictCache::open(&path).unwrap();
        assert!(cache.is_empty(), "missing file starts empty");
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        cache.persist().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        cache.persist().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "persist is deterministic");

        let reloaded = VerdictCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 3);
        for (key, verdict) in sample_entries() {
            assert_eq!(reloaded.get(&key), Some(verdict));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_files_are_errors() {
        assert!(parse_entries("not json").is_err());
        assert!(parse_entries("{\"entries\":[]}").is_err(), "no version");
        let future = "{\"version\":999,\"entries\":[]}";
        let err = parse_entries(future).unwrap_err();
        assert!(err.contains("999"), "{}", err);
        let bad_hash =
            "{\"version\":1,\"entries\":[{\"scalar\":\"zz\",\"candidate\":\"0\",\"config\":\"0\",\
             \"verdict\":\"equivalent\",\"stage\":\"alive2\",\"detail\":\"\",\"checksum\":null}]}";
        assert!(parse_entries(bad_hash).is_err());
    }

    #[test]
    fn merge_accepts_agreement_and_disjoint_keys() {
        let dest = VerdictCache::in_memory();
        let source = VerdictCache::in_memory();
        let entries = sample_entries();
        // Destination holds entries 0 and 1; source holds 1 (identical) and 2.
        dest.insert(entries[0].0, entries[0].1.clone());
        dest.insert(entries[1].0, entries[1].1.clone());
        source.insert(entries[1].0, entries[1].1.clone());
        source.insert(entries[2].0, entries[2].1.clone());

        let stats = dest.merge_from(&source).expect("agreeing merge succeeds");
        assert_eq!(
            stats,
            MergeStats {
                added: 1,
                agreed: 1
            }
        );
        assert_eq!(dest.len(), 3);
        for (key, verdict) in entries {
            assert_eq!(dest.get(&key), Some(verdict));
        }
    }

    #[test]
    fn merge_conflict_is_a_typed_error_not_last_write_wins() {
        let dest = VerdictCache::in_memory();
        let source = VerdictCache::in_memory();
        let (key, verdict) = sample_entries().remove(0);
        assert_eq!(verdict.verdict, Equivalence::Equivalent);
        let flipped = CachedVerdict {
            verdict: Equivalence::NotEquivalent,
            ..verdict.clone()
        };
        dest.insert(key, verdict.clone());
        source.insert(key, flipped.clone());

        let err = dest.merge_from(&source).expect_err("conflict must error");
        let CacheMergeError::Conflict {
            key: conflict_key,
            existing,
            incoming,
        } = &err;
        assert_eq!(*conflict_key, key);
        assert_eq!(**existing, verdict);
        assert_eq!(**incoming, flipped);
        assert!(err.to_string().contains("merge conflict"), "{}", err);
        // The destination kept its own verdict — no last-write-wins.
        assert_eq!(dest.get(&key), Some(verdict));
    }

    #[test]
    fn merge_file_round_trip_and_conflict() {
        let dir = temp_dir("merge");
        let path = dir.join("shard.json");
        let _ = std::fs::remove_file(&path);

        let source = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            source.insert(key, verdict);
        }
        source.persist().unwrap();

        let dest = VerdictCache::in_memory();
        let stats = dest.merge_file(&path).unwrap();
        assert_eq!(stats.added, 3);
        // Merging the same file again is pure agreement.
        let stats = dest.merge_file(&path).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                added: 0,
                agreed: 3
            }
        );

        // A flipped verdict is a conflict surfaced as InvalidData.
        let (key, _) = sample_entries().remove(0);
        let err = {
            let conflicted = VerdictCache::in_memory();
            conflicted.insert(
                key,
                CachedVerdict {
                    verdict: Equivalence::Inconclusive,
                    stage: Stage::Alive2,
                    detail: String::new(),
                    checksum: None,
                },
            );
            conflicted.merge_file(&path).expect_err("conflict")
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_is_deterministic_and_bounded() {
        let cache = VerdictCache::in_memory();
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        assert_eq!(cache.compact(&CacheBounds::unbounded()), 0);
        assert_eq!(cache.len(), 3);

        // Entry bound: the survivors are the smallest keys in sorted order.
        let evicted = cache.compact(&CacheBounds {
            max_entries: Some(2),
            max_bytes: None,
        });
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        let mut keys = sample_entries();
        keys.sort_by_key(|(k, _)| *k);
        assert!(cache.get(&keys[0].0).is_some());
        assert!(cache.get(&keys[1].0).is_some());
        assert!(cache.get(&keys[2].0).is_none(), "largest key evicted");

        // Byte bound: shrink until the rendered file fits. The incremental
        // size accounting must agree with an actual render.
        let tiny = cache.compact(&CacheBounds {
            max_entries: None,
            max_bytes: Some(120),
        });
        assert!(tiny >= 1, "at least one entry must go");
        assert!(cache.len() <= 1);

        let dir = temp_dir("compact");
        let path = dir.join("bounded.json");
        let _ = std::fs::remove_file(&path);
        let bounded = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            bounded.insert(key, verdict);
        }
        let max_bytes = 260;
        bounded.compact(&CacheBounds {
            max_entries: None,
            max_bytes: Some(max_bytes),
        });
        bounded.persist().unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(
            written.len() <= max_bytes,
            "persisted {} bytes > bound {}",
            written.len(),
            max_bytes
        );
        assert!(!bounded.is_empty(), "the bound leaves room for an entry");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_cache_round_trips_values() {
        let cache = VerdictCache::in_memory();
        let (key, verdict) = sample_entries().remove(0);
        assert_eq!(cache.get(&key), None);
        cache.insert(key, verdict.clone());
        assert_eq!(cache.get(&key), Some(verdict));
        assert_eq!(cache.len(), 1);
        cache.persist().unwrap(); // no-op without a backing file
        assert!(cache.path().is_none());
    }

    #[test]
    fn binary_compact_round_trips_through_the_warm_tier() {
        let dir = temp_dir("binary-compact");
        let path = dir.join("tiered.cache");
        let _ = std::fs::remove_file(&path);

        let cache = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        cache.compact_to(CacheFormat::Binary).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(snapshot::is_snapshot(&bytes), "binary compact writes LVCS");

        // Reopen: the file becomes the warm tier, served without parsing.
        let reopened = VerdictCache::open(&path).unwrap();
        assert!(!reopened.is_journaling());
        assert_eq!(reopened.len(), 3);
        for (key, verdict) in sample_entries() {
            assert_eq!(reopened.get(&key), Some(verdict));
        }
        // A read-only tiered view never rewrites its file.
        reopened.persist().unwrap();
        assert!(
            snapshot::is_snapshot(&std::fs::read(&path).unwrap()),
            "persist of an unmodified tier view must not rewrite the file"
        );

        // Compacting the warm tier back to JSON is byte-identical to a
        // JSON-native persist of the same contents (the interop guarantee).
        reopened.compact_journal().unwrap();
        let json_path = dir.join("native.json");
        let native = VerdictCache::open(&json_path).unwrap();
        for (key, verdict) in sample_entries() {
            native.insert(key, verdict);
        }
        native.persist().unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            std::fs::read_to_string(&json_path).unwrap(),
            "binary → JSON conversion must be byte-identical to the legacy snapshot"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&json_path);
    }

    #[test]
    fn hot_tier_shadows_warm_tier() {
        let dir = temp_dir("shadow");
        let path = dir.join("warm.cache");
        let _ = std::fs::remove_file(&path);

        let cache = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        cache.compact_to(CacheFormat::Binary).unwrap();

        let tiered = VerdictCache::open(&path).unwrap();
        let (key, verdict) = sample_entries().remove(0);
        let shadowing = CachedVerdict {
            detail: "hot shadows warm".to_string(),
            ..verdict
        };
        tiered.insert(key, shadowing.clone());
        assert_eq!(tiered.get(&key), Some(shadowing), "hot wins");
        assert_eq!(tiered.len(), 3, "shadowed key counted once");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_journal_mode_round_trips_and_converts() {
        let dir = temp_dir("binary-journal");
        let path = dir.join("journal.cache");
        let _ = std::fs::remove_file(&path);

        let cache =
            VerdictCache::open_journal_with(&path, FsyncPolicy::OnCompact, CacheFormat::Binary)
                .unwrap();
        assert_eq!(cache.journal_format(), Some(CacheFormat::Binary));
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        cache.persist().unwrap();
        drop(cache);
        let bytes = std::fs::read(&path).unwrap();
        assert!(journal::is_binary_journal(&bytes));

        // Sniffing open replays the binary journal.
        let replayed = VerdictCache::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        for (key, verdict) in sample_entries() {
            assert_eq!(replayed.get(&key), Some(verdict));
        }

        // Re-opening in binary journal mode continues the same journal.
        let continued =
            VerdictCache::open_journal_with(&path, FsyncPolicy::OnCompact, CacheFormat::Binary)
                .unwrap();
        assert_eq!(continued.len(), 3);
        drop(continued);

        // Opening in *JSON* journal mode converts the binary journal.
        let converted = VerdictCache::open_journal(&path, FsyncPolicy::OnCompact).unwrap();
        assert_eq!(converted.journal_format(), Some(CacheFormat::Json));
        assert_eq!(converted.len(), 3);
        drop(converted);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(journal::is_journal(&text));

        // And a JSON journal converts back to binary.
        let back =
            VerdictCache::open_journal_with(&path, FsyncPolicy::OnCompact, CacheFormat::Binary)
                .unwrap();
        assert_eq!(back.len(), 3);
        for (key, verdict) in sample_entries() {
            assert_eq!(back.get(&key), Some(verdict));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_records_the_fsync_sequence() {
        let dir = temp_dir("fsync-seq");
        for format in [CacheFormat::Json, CacheFormat::Binary] {
            let path = dir.join(format!("seq.{}.cache", format.tag()));
            let _ = std::fs::remove_file(&path);
            let cache =
                VerdictCache::open_journal_with(&path, FsyncPolicy::OnCompact, CacheFormat::Json)
                    .unwrap();
            let (key, verdict) = sample_entries().remove(0);
            cache.insert(key, verdict);
            assert!(cache.sync_events().is_empty(), "no compaction yet");
            cache.compact_to(format).unwrap();
            let events = cache.sync_events();
            assert_eq!(
                events,
                vec![SyncEvent::File(path.clone()), SyncEvent::Dir(dir.clone()),],
                "{}: file must be synced before the directory",
                format.tag()
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn cold_snapshots_attach_and_honor_conflicts() {
        let dir = temp_dir("cold");
        let shared = dir.join("shared");
        std::fs::create_dir_all(&shared).unwrap();
        let entries = sample_entries();

        // Two cold snapshots with one overlapping (agreeing) entry.
        CacheSnapshot::write_file(&shared.join("a.lvcs"), &entries[0..2], true, false).unwrap();
        CacheSnapshot::write_file(&shared.join("b.lvcs"), &entries[1..3], true, false).unwrap();
        // A non-snapshot file in the directory is skipped.
        std::fs::write(shared.join("notes.txt"), "not a snapshot").unwrap();

        let cache = VerdictCache::in_memory();
        let attached = cache.attach_cold_dir(&shared).unwrap();
        assert_eq!(attached, 2);
        assert_eq!(cache.len(), 3);
        for (key, verdict) in &entries {
            assert_eq!(cache.get(key).as_ref(), Some(verdict));
        }

        // A disagreeing cold snapshot is rejected with the typed conflict.
        let mut flipped = entries[0].clone();
        flipped.1.verdict = Equivalence::Inconclusive;
        CacheSnapshot::write_file(&shared.join("c.lvcs"), &[flipped], true, false).unwrap();
        let err = cache
            .attach_snapshot(&shared.join("c.lvcs"))
            .expect_err("conflicting cold snapshot must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("merge conflict"), "{}", err);
        let _ = std::fs::remove_dir_all(&shared);
    }

    #[test]
    fn cache_file_stats_cover_all_four_forms() {
        let dir = temp_dir("stats");
        let entries = sample_entries();

        let json_path = dir.join("stats.json");
        let cache = VerdictCache::open(&json_path).unwrap();
        for (key, verdict) in &entries {
            cache.insert(*key, verdict.clone());
        }
        cache.persist().unwrap();
        let stats = cache_file_stats(&json_path).unwrap();
        assert_eq!(stats.format, "json-snapshot");
        assert_eq!(
            (
                stats.entries,
                stats.equivalent,
                stats.not_equivalent,
                stats.inconclusive
            ),
            (3, 1, 1, 1)
        );
        assert!(stats.bloom.is_none());
        assert!(stats.bytes_per_entry() > 0.0);

        let journal_path = dir.join("stats.journal");
        let journaling = VerdictCache::open_journal(&journal_path, FsyncPolicy::OnCompact).unwrap();
        for (key, verdict) in &entries {
            journaling.insert(*key, verdict.clone());
        }
        journaling.persist().unwrap();
        assert_eq!(
            cache_file_stats(&journal_path).unwrap().format,
            "json-journal"
        );

        let bin_journal_path = dir.join("stats.bjournal");
        let bin = VerdictCache::open_journal_with(
            &bin_journal_path,
            FsyncPolicy::OnCompact,
            CacheFormat::Binary,
        )
        .unwrap();
        for (key, verdict) in &entries {
            bin.insert(*key, verdict.clone());
        }
        bin.persist().unwrap();
        let stats = cache_file_stats(&bin_journal_path).unwrap();
        assert_eq!(stats.format, "binary-journal");
        assert_eq!(stats.entries, 3);

        bin.compact_to(CacheFormat::Binary).unwrap();
        let stats = cache_file_stats(&bin_journal_path).unwrap();
        assert_eq!(stats.format, "binary-snapshot");
        assert_eq!(stats.entries, 3);
        let bloom = stats.bloom.expect("binary compact writes a bloom block");
        assert!(bloom.fp_estimate < 0.05);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
