//! The sorted immutable binary snapshot — the warm/cold tier file format.
//!
//! A snapshot is one self-validating file holding every entry of a compacted
//! cache in sorted key order (see the [module docs](super) for the role it
//! plays in the tiering). Layout, all integers little-endian:
//!
//! ```text
//! header   0..4   magic "LVCS"
//!          4..8   u32 format version (= CACHE_FORMAT_VERSION)
//!          8..16  u64 entry count
//!          16..24 u64 index offset (always 56)
//!          24..32 u64 bloom offset
//!          32..40 u64 payload offset
//!          40..48 u64 payload length
//!          48..52 u32 bloom hash count k (0 = no bloom block)
//!          52..56 u32 CRC-32 of bytes 0..52
//! index    count × 32-byte strides, sorted strictly ascending by key:
//!            [scalar u64][candidate u64][config u64][payload rel. offset u64]
//!          u32 CRC-32 of the index bytes
//! bloom    (only when k > 0)
//!          u64 bit-array length in bytes (a power of two)
//!          the bit array
//!          u32 CRC-32 of the length field + bit array
//! payload  `payload length` bytes of verdict payloads (the binary record
//!          codec, key-stripped — the key lives in the index)
//!          u32 CRC-32 of the payload bytes
//! ```
//!
//! [`CacheSnapshot::open`] is a single `read` into an owned buffer; lookups
//! binary-search the raw index strides and decode a payload only on hit.
//! Every region is CRC-covered and structurally validated **once at load**
//! (allocation-free), so any byte flip or truncation anywhere in the file is
//! a typed [`SnapshotError`] at open — a loaded snapshot can never serve a
//! wrong verdict, and the hit path never re-validates.
//!
//! The bloom block makes cold *negative* lookups touch no index or payload
//! bytes: `k` double-hashed probes (`h1 + i·h2` over a splitmix64-mixed
//! key) into a power-of-two bit array sized at ~10 bits per entry — a
//! false-positive rate of roughly 1%, and never a false negative.

use super::binary;
use super::{write_atomic_stream, CacheKey, CachedVerdict, CACHE_FORMAT_VERSION};
use crate::journal::crc32;
use serde::bin::{self, Reader};
use std::io;
use std::path::Path;

/// The magic a binary snapshot file starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"LVCS";

const HEADER_BYTES: usize = 56;
/// One index stride: the 24-byte key prefix plus the payload's relative
/// offset.
const INDEX_STRIDE: usize = binary::KEY_BYTES + 8;
/// Bloom sizing: bits per entry (~1% false positives at k = 7).
const BLOOM_BITS_PER_ENTRY: usize = 10;
/// Bloom probes per key.
const BLOOM_HASHES: u32 = 7;

/// Does `bytes` look like a binary snapshot file?
pub fn is_snapshot(bytes: &[u8]) -> bool {
    bytes.starts_with(&SNAPSHOT_MAGIC)
}

/// Why loading a binary snapshot failed. Every variant is a *typed* load
/// error: a snapshot that does not validate end to end is rejected whole,
/// never partially served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The header's format version is not [`CACHE_FORMAT_VERSION`].
    BadVersion(u32),
    /// The file ends before a region the header promises.
    Truncated {
        /// Bytes the declared layout requires.
        need: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// The header CRC does not match (a flipped header byte — offsets and
    /// counts cannot be trusted).
    HeaderCrc,
    /// The index-region CRC does not match (corrupt key stride or payload
    /// offset).
    IndexCrc,
    /// The bloom-block CRC does not match.
    BloomCrc,
    /// The payload-region CRC does not match.
    PayloadCrc,
    /// The header's offsets are internally inconsistent with the file.
    Layout(String),
    /// The index is not strictly ascending by key, or points outside the
    /// payload region.
    Index(String),
    /// A payload record failed structural validation.
    Record {
        /// Index of the offending entry.
        index: usize,
        /// What failed to decode.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => {
                write!(f, "not a binary cache snapshot (missing LVCS magic)")
            }
            SnapshotError::BadVersion(found) => write!(
                f,
                "snapshot has format version {}, this build reads version {}; \
                 delete the file to rebuild it",
                found, CACHE_FORMAT_VERSION
            ),
            SnapshotError::Truncated { need, have } => write!(
                f,
                "snapshot is truncated: the layout requires {} bytes, the file has {}",
                need, have
            ),
            SnapshotError::HeaderCrc => write!(f, "snapshot header fails its CRC-32 check"),
            SnapshotError::IndexCrc => write!(f, "snapshot index region fails its CRC-32 check"),
            SnapshotError::BloomCrc => write!(f, "snapshot bloom block fails its CRC-32 check"),
            SnapshotError::PayloadCrc => {
                write!(f, "snapshot payload region fails its CRC-32 check")
            }
            SnapshotError::Layout(reason) => {
                write!(f, "snapshot layout is inconsistent: {}", reason)
            }
            SnapshotError::Index(reason) => write!(f, "snapshot index is invalid: {}", reason),
            SnapshotError::Record { index, reason } => {
                write!(f, "snapshot record {} is invalid: {}", index, reason)
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Shape and estimated quality of a snapshot's bloom block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloomStats {
    /// Bit-array size in bits.
    pub bits: u64,
    /// Probes per key.
    pub hashes: u32,
    /// Estimated false-positive rate `(1 − e^{−kn/m})^k` for the snapshot's
    /// entry count. False *negatives* are impossible by construction.
    pub fp_estimate: f64,
}

/// splitmix64's finalizer: a cheap, well-distributed 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The two independent hashes the bloom probes combine (`h1 + i·h2`); `h2`
/// is forced odd so the probe sequence walks the whole power-of-two table.
fn bloom_hashes(key: &CacheKey) -> (u64, u64) {
    let h1 = mix64(key.scalar ^ mix64(key.candidate ^ mix64(key.config)));
    let h2 = mix64(h1 ^ 0x9e37_79b9_7f4a_7c15) | 1;
    (h1, h2)
}

/// A loaded, validated, immutable binary snapshot: one owned buffer,
/// binary-searched in place.
#[derive(Debug)]
pub struct CacheSnapshot {
    buf: Vec<u8>,
    count: usize,
    index_off: usize,
    payload_off: usize,
    payload_len: usize,
    /// `(bit-array byte range start, byte length, k)` when a bloom block is
    /// present.
    bloom: Option<(usize, usize, u32)>,
}

impl CacheSnapshot {
    /// Renders a snapshot document for `entries` (any order; sorted
    /// internally). `bloom` controls whether the bloom block is emitted.
    pub(crate) fn render(entries: &[(CacheKey, CachedVerdict)], bloom: bool) -> Vec<u8> {
        let mut sorted: Vec<&(CacheKey, CachedVerdict)> = entries.iter().collect();
        sorted.sort_by_key(|(key, _)| *key);
        for pair in sorted.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "snapshot entries must have unique keys"
            );
        }

        let mut index = Vec::with_capacity(sorted.len() * INDEX_STRIDE);
        let mut payload = Vec::new();
        for (key, verdict) in &sorted {
            binary::encode_key(&mut index, key);
            bin::put_u64(&mut index, payload.len() as u64);
            binary::encode_verdict(&mut payload, verdict);
        }

        let (bloom_k, bloom_section) = if bloom {
            let bits = (sorted.len() * BLOOM_BITS_PER_ENTRY)
                .next_power_of_two()
                .max(64);
            let mut array = vec![0u8; bits / 8];
            let mask = (bits - 1) as u64;
            for (key, _) in &sorted {
                let (h1, h2) = bloom_hashes(key);
                for i in 0..BLOOM_HASHES {
                    let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) & mask) as usize;
                    array[bit / 8] |= 1 << (bit % 8);
                }
            }
            let mut section = Vec::with_capacity(12 + array.len());
            bin::put_u64(&mut section, array.len() as u64);
            section.extend_from_slice(&array);
            let crc = crc32(&section);
            bin::put_u32(&mut section, crc);
            (BLOOM_HASHES, section)
        } else {
            (0, Vec::new())
        };

        let index_off = HEADER_BYTES as u64;
        let bloom_off = index_off + index.len() as u64 + 4;
        let payload_off = bloom_off + bloom_section.len() as u64;
        let mut doc = Vec::with_capacity(
            HEADER_BYTES + index.len() + 4 + bloom_section.len() + payload.len() + 4,
        );
        doc.extend_from_slice(&SNAPSHOT_MAGIC);
        bin::put_u32(&mut doc, CACHE_FORMAT_VERSION as u32);
        bin::put_u64(&mut doc, sorted.len() as u64);
        bin::put_u64(&mut doc, index_off);
        bin::put_u64(&mut doc, bloom_off);
        bin::put_u64(&mut doc, payload_off);
        bin::put_u64(&mut doc, payload.len() as u64);
        bin::put_u32(&mut doc, bloom_k);
        let header_crc = crc32(&doc);
        bin::put_u32(&mut doc, header_crc);

        doc.extend_from_slice(&index);
        bin::put_u32(&mut doc, crc32(&index));
        doc.extend_from_slice(&bloom_section);
        doc.extend_from_slice(&payload);
        bin::put_u32(&mut doc, crc32(&payload));
        doc
    }

    /// Writes a snapshot of `entries` to `path` atomically (temp file, then
    /// rename), optionally `fsync`ing the file before the rename; returns
    /// the document size in bytes. The parent-directory fsync is the
    /// caller's responsibility (see `VerdictCache::compact_to`).
    pub fn write_file(
        path: &Path,
        entries: &[(CacheKey, CachedVerdict)],
        bloom: bool,
        sync: bool,
    ) -> io::Result<u64> {
        let doc = CacheSnapshot::render(entries, bloom);
        write_atomic_stream(path, sync, |w| {
            use std::io::Write;
            w.write_all(&doc)
        })
    }

    /// Loads and validates a snapshot file: one `read`, then the CRC and
    /// structural checks described in the [module docs](self). Every
    /// failure is a typed [`SnapshotError`] surfaced as
    /// [`io::ErrorKind::InvalidData`].
    pub fn open(path: &Path) -> io::Result<CacheSnapshot> {
        let buf = std::fs::read(path)?;
        CacheSnapshot::from_bytes(buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Validates `buf` as a snapshot document and takes ownership of it.
    pub fn from_bytes(buf: Vec<u8>) -> Result<CacheSnapshot, SnapshotError> {
        if !is_snapshot(&buf) {
            return Err(SnapshotError::BadMagic);
        }
        if buf.len() < HEADER_BYTES {
            return Err(SnapshotError::Truncated {
                need: HEADER_BYTES as u64,
                have: buf.len() as u64,
            });
        }
        // The CRC must pass before any header field is trusted.
        let recorded = bin::read_u32_at(&buf, 52).unwrap();
        if crc32(&buf[..52]) != recorded {
            return Err(SnapshotError::HeaderCrc);
        }
        let version = bin::read_u32_at(&buf, 4).unwrap();
        if i64::from(version) != CACHE_FORMAT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let count = bin::read_u64_at(&buf, 8).unwrap();
        let index_off = bin::read_u64_at(&buf, 16).unwrap();
        let bloom_off = bin::read_u64_at(&buf, 24).unwrap();
        let payload_off = bin::read_u64_at(&buf, 32).unwrap();
        let payload_len = bin::read_u64_at(&buf, 40).unwrap();
        let bloom_k = bin::read_u32_at(&buf, 48).unwrap();

        let layout = |reason: String| Err(SnapshotError::Layout(reason));
        if index_off != HEADER_BYTES as u64 {
            return layout(format!("index offset {} != {}", index_off, HEADER_BYTES));
        }
        let count = usize::try_from(count)
            .ok()
            .filter(|c| c.checked_mul(INDEX_STRIDE).is_some())
            .ok_or_else(|| SnapshotError::Layout("entry count overflows".to_string()))?;
        let expected_bloom_off = index_off + (count * INDEX_STRIDE) as u64 + 4;
        if bloom_off != expected_bloom_off {
            return layout(format!(
                "bloom offset {} does not follow the index (expected {})",
                bloom_off, expected_bloom_off
            ));
        }
        if bloom_k > 64 {
            return layout(format!("bloom hash count {} is implausible", bloom_k));
        }

        // Bloom block shape (its length field is needed to pin the payload
        // offset; its CRC is checked below once the bounds are known).
        let bloom = if bloom_k > 0 {
            let bits_len =
                bin::read_u64_at(&buf, bloom_off as usize).ok_or(SnapshotError::Truncated {
                    need: bloom_off + 8,
                    have: buf.len() as u64,
                })?;
            let bits_len = usize::try_from(bits_len)
                .ok()
                .filter(|&n| n > 0 && n.is_power_of_two())
                .ok_or_else(|| {
                    SnapshotError::Layout(
                        "bloom bit-array length is not a power of two".to_string(),
                    )
                })?;
            let expected_payload_off = bloom_off + 8 + bits_len as u64 + 4;
            if payload_off != expected_payload_off {
                return layout(format!(
                    "payload offset {} does not follow the bloom block (expected {})",
                    payload_off, expected_payload_off
                ));
            }
            Some((bloom_off as usize + 8, bits_len, bloom_k))
        } else {
            if payload_off != bloom_off {
                return layout(format!(
                    "payload offset {} does not follow the index (expected {})",
                    payload_off, bloom_off
                ));
            }
            None
        };

        let required = payload_off
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| SnapshotError::Layout("payload bounds overflow".to_string()))?;
        if (buf.len() as u64) < required {
            return Err(SnapshotError::Truncated {
                need: required,
                have: buf.len() as u64,
            });
        }
        if buf.len() as u64 != required {
            return layout(format!(
                "{} trailing bytes after the payload region",
                buf.len() as u64 - required
            ));
        }

        let index_off = index_off as usize;
        let payload_off = payload_off as usize;
        let payload_len = payload_len as usize;
        let index_end = index_off + count * INDEX_STRIDE;
        if crc32(&buf[index_off..index_end]) != bin::read_u32_at(&buf, index_end).unwrap() {
            return Err(SnapshotError::IndexCrc);
        }
        if let Some((bits_off, bits_len, _)) = bloom {
            let section = &buf[bits_off - 8..bits_off + bits_len];
            if crc32(section) != bin::read_u32_at(&buf, bits_off + bits_len).unwrap() {
                return Err(SnapshotError::BloomCrc);
            }
        }
        if crc32(&buf[payload_off..payload_off + payload_len])
            != bin::read_u32_at(&buf, payload_off + payload_len).unwrap()
        {
            return Err(SnapshotError::PayloadCrc);
        }

        let snapshot = CacheSnapshot {
            buf,
            count,
            index_off,
            payload_off,
            payload_len,
            bloom,
        };
        // Structural validation (allocation-free) of every index stride and
        // record, so the hit path can decode without re-checking.
        let mut previous: Option<(u64, u64, u64)> = None;
        for i in 0..count {
            let key = snapshot.key_at(i);
            if let Some(prev) = previous {
                if prev >= key {
                    return Err(SnapshotError::Index(format!(
                        "entry {} is not strictly ascending",
                        i
                    )));
                }
            }
            previous = Some(key);
            let rel = snapshot.payload_rel(i);
            if rel > payload_len {
                return Err(SnapshotError::Index(format!(
                    "entry {} points past the payload region ({} > {})",
                    i, rel, payload_len
                )));
            }
            let mut r = Reader::new(&snapshot.buf[payload_off + rel..payload_off + payload_len]);
            binary::validate_verdict(&mut r)
                .map_err(|reason| SnapshotError::Record { index: i, reason })?;
        }
        Ok(snapshot)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes resident in memory for this snapshot (the owned file buffer).
    pub fn resident_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The bloom block's shape, when present.
    pub fn bloom_stats(&self) -> Option<BloomStats> {
        self.bloom.map(|(_, bits_len, k)| {
            let bits = (bits_len * 8) as u64;
            let exponent = -(f64::from(k) * self.count as f64) / bits as f64;
            BloomStats {
                bits,
                hashes: k,
                fp_estimate: (1.0 - exponent.exp()).powi(k as i32),
            }
        })
    }

    fn key_at(&self, i: usize) -> (u64, u64, u64) {
        let off = self.index_off + i * INDEX_STRIDE;
        (
            bin::read_u64_at(&self.buf, off).unwrap(),
            bin::read_u64_at(&self.buf, off + 8).unwrap(),
            bin::read_u64_at(&self.buf, off + 16).unwrap(),
        )
    }

    fn payload_rel(&self, i: usize) -> usize {
        bin::read_u64_at(&self.buf, self.index_off + i * INDEX_STRIDE + 24).unwrap() as usize
    }

    /// The bloom pre-check: `false` means *definitely absent* (and the
    /// lookup touched no index or payload bytes); `true` means "probably
    /// present". Always `true` when the snapshot has no bloom block.
    pub fn maybe_contains(&self, key: &CacheKey) -> bool {
        let Some((bits_off, bits_len, k)) = self.bloom else {
            return true;
        };
        let mask = (bits_len * 8 - 1) as u64;
        let (h1, h2) = bloom_hashes(key);
        for i in 0..k {
            let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) & mask) as usize;
            if self.buf[bits_off + bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Looks up a verdict: bloom pre-check, binary search over the raw
    /// index strides, payload decoded lazily only on hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedVerdict> {
        if !self.maybe_contains(key) {
            return None;
        }
        let target = (key.scalar, key.candidate, key.config);
        let (mut lo, mut hi) = (0usize, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.key_at(mid).cmp(&target) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let rel = self.payload_rel(mid);
                    let region =
                        &self.buf[self.payload_off + rel..self.payload_off + self.payload_len];
                    let mut r = Reader::new(region);
                    return Some(binary::decode_verdict(&mut r).expect("record validated at load"));
                }
            }
        }
        None
    }

    /// Decodes every entry, in sorted key order.
    pub fn entries(&self) -> Vec<(CacheKey, CachedVerdict)> {
        (0..self.count)
            .map(|i| {
                let (scalar, candidate, config) = self.key_at(i);
                let rel = self.payload_rel(i);
                let region = &self.buf[self.payload_off + rel..self.payload_off + self.payload_len];
                let mut r = Reader::new(region);
                (
                    CacheKey {
                        scalar,
                        candidate,
                        config,
                    },
                    binary::decode_verdict(&mut r).expect("record validated at load"),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Equivalence, Stage};

    fn sample(n: u64) -> Vec<(CacheKey, CachedVerdict)> {
        (0..n)
            .map(|i| {
                (
                    CacheKey {
                        scalar: mix64(i),
                        candidate: mix64(i ^ 0xabcd),
                        config: 7,
                    },
                    CachedVerdict {
                        verdict: Equivalence::Equivalent,
                        stage: Stage::CUnroll,
                        detail: format!("entry {}", i),
                        checksum: None,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn snapshot_round_trips_with_and_without_bloom() {
        for bloom in [false, true] {
            let entries = sample(100);
            let doc = CacheSnapshot::render(&entries, bloom);
            let snap = CacheSnapshot::from_bytes(doc).unwrap();
            assert_eq!(snap.len(), 100);
            assert_eq!(snap.bloom_stats().is_some(), bloom);
            for (key, verdict) in &entries {
                assert!(snap.maybe_contains(key), "no false negatives");
                assert_eq!(snap.get(key).as_ref(), Some(verdict));
            }
            let miss = CacheKey {
                scalar: 1,
                candidate: 2,
                config: 3,
            };
            assert_eq!(snap.get(&miss), None);
            let mut decoded = snap.entries();
            decoded.sort_by_key(|(k, _)| *k);
            let mut expected = entries.clone();
            expected.sort_by_key(|(k, _)| *k);
            assert_eq!(decoded, expected);
        }
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let doc = CacheSnapshot::render(&[], true);
        let snap = CacheSnapshot::from_bytes(doc).unwrap();
        assert!(snap.is_empty());
        assert_eq!(
            snap.get(&CacheKey {
                scalar: 0,
                candidate: 0,
                config: 0
            }),
            None
        );
    }

    #[test]
    fn bloom_estimate_is_sane() {
        let entries = sample(1000);
        let doc = CacheSnapshot::render(&entries, true);
        let snap = CacheSnapshot::from_bytes(doc).unwrap();
        let stats = snap.bloom_stats().unwrap();
        assert_eq!(stats.hashes, BLOOM_HASHES);
        assert!(stats.bits >= 1000 * BLOOM_BITS_PER_ENTRY as u64);
        assert!(
            stats.fp_estimate > 0.0 && stats.fp_estimate < 0.05,
            "{}",
            stats.fp_estimate
        );
    }
}
