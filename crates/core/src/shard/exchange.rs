//! On-disk exchange formats for sharded sweeps.
//!
//! See the [module docs](crate::shard) for the format overview. Everything
//! here reuses the `serde` shim's [`json`] document model and the verdict
//! cache's conventions: `u64` values travel as 16-digit lower-case hex
//! strings, enum payloads as stable string tags, and every whole-file
//! document is written atomically (temp file + rename) so a reader never
//! observes a torn write. Serialization streams through the shim's
//! [`Emitter`] — no intermediate document tree or `String` on the per-record
//! paths. Functions travel as printed C source —
//! [`lv_cir::printer::print_function`] followed by [`lv_cir::parse_function`]
//! yields a structurally equal AST, so content hashes (and therefore shard
//! assignment, cache keys, and verdicts) are unaffected by the round trip.
//!
//! The shard report has two interchangeable on-disk forms, mirroring the
//! verdict cache: the **snapshot** document below, and an **append-only
//! journal** ([`ShardReportJournal`]) whose header carries the
//! shard/fingerprint metadata and whose records are the individual job
//! entries — the O(record)-flush form shard workers write.
//! [`ShardReportFile::load`] sniffs and accepts both.

use crate::cache::{
    emit_checksum, hex, parse_checksum, parse_hex, parse_stage, parse_verdict, stage_tag,
    verdict_tag, write_atomic_stream,
};
use crate::engine::{
    EngineConfig, EngineReuse, Job, JobReport, ReuseCounters, SimplifyCounters, StageSchedule,
    StageTrace,
};
use crate::journal::{self, FsyncPolicy, JournalWriter};
use crate::pipeline::PipelineConfig;
use crate::shard::{ShardError, ShardPlan, ShardPolicy};
use lv_cir::ast::Function;
use lv_cir::printer::print_function;
use lv_interp::{ChecksumConfig, ExecConfig};
use lv_tv::{SolverBudget, TvConfig};
use serde::json::{self, Emitter, Value};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The manifest / shard-report format version; readers reject other values.
pub const SHARD_FORMAT_VERSION: i64 = 1;

/// The journal-header kind tag for shard-report journals.
pub(crate) const REPORT_JOURNAL_KIND: &str = "shard-report";

/// The journal-header kind tag for steal-claim journals.
pub(crate) const CLAIMS_JOURNAL_KIND: &str = "shard-claims";

fn int_field(value: &Value, key: &str) -> Result<i64, String> {
    value
        .get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| format!("missing integer field `{}`", key))
}

fn str_field<'a>(value: &'a Value, key: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field `{}`", key))
}

fn bool_field(value: &Value, key: &str) -> Result<bool, String> {
    match value.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing boolean field `{}`", key)),
    }
}

/// A boolean field that older documents may lack; absent means `false`
/// (used for the simplify knobs, which predate no manifest but must keep
/// pre-simplify documents readable).
fn opt_bool_field(value: &Value, key: &str) -> Result<bool, String> {
    match value.get(key) {
        None => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field `{}` is not a boolean", key)),
    }
}

fn usize_field(value: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(int_field(value, key)?)
        .map_err(|_| format!("field `{}` does not fit a usize", key))
}

// ---------------------------------------------------------------------------
// Engine-configuration serialization.
// ---------------------------------------------------------------------------

fn budget_value(budget: SolverBudget) -> Value {
    Value::Object(vec![
        ("max_conflicts".to_string(), hex(budget.max_conflicts)),
        ("max_clauses".to_string(), hex(budget.max_clauses as u64)),
    ])
}

fn parse_budget(value: &Value, key: &str) -> Result<SolverBudget, String> {
    let obj = value
        .get(key)
        .ok_or_else(|| format!("missing budget object `{}`", key))?;
    Ok(SolverBudget {
        max_conflicts: parse_hex(obj.get("max_conflicts"), "max_conflicts")?,
        max_clauses: usize::try_from(parse_hex(obj.get("max_clauses"), "max_clauses")?)
            .map_err(|_| "max_clauses does not fit a usize".to_string())?,
    })
}

fn checksum_config_value(config: &ChecksumConfig) -> Value {
    let mut overrides: Vec<(&String, &i32)> = config.scalar_overrides.iter().collect();
    overrides.sort();
    Value::Object(vec![
        ("n".to_string(), Value::Int(i64::from(config.n))),
        ("trials".to_string(), Value::Int(i64::from(config.trials))),
        ("seed".to_string(), hex(config.seed)),
        ("slack".to_string(), Value::Int(config.slack as i64)),
        (
            "value_range".to_string(),
            Value::Array(vec![
                Value::Int(i64::from(config.value_range.0)),
                Value::Int(i64::from(config.value_range.1)),
            ]),
        ),
        (
            "scalar_overrides".to_string(),
            Value::Object(
                overrides
                    .into_iter()
                    .map(|(name, value)| (name.clone(), Value::Int(i64::from(*value))))
                    .collect(),
            ),
        ),
        ("max_steps".to_string(), hex(config.exec.max_steps)),
    ])
}

fn parse_checksum_config(value: &Value) -> Result<ChecksumConfig, String> {
    let obj = value
        .get("checksum")
        .ok_or_else(|| "missing `checksum` configuration".to_string())?;
    let range = obj
        .get("value_range")
        .and_then(Value::as_array)
        .filter(|a| a.len() == 2)
        .ok_or_else(|| "missing `value_range` pair".to_string())?;
    let range_int = |v: &Value| -> Result<i32, String> {
        v.as_int()
            .and_then(|i| i32::try_from(i).ok())
            .ok_or_else(|| "value_range entry is not an i32".to_string())
    };
    let overrides = match obj.get("scalar_overrides") {
        Some(Value::Object(entries)) => entries
            .iter()
            .map(|(name, value)| {
                value
                    .as_int()
                    .and_then(|i| i32::try_from(i).ok())
                    .map(|i| (name.clone(), i))
                    .ok_or_else(|| format!("override `{}` is not an i32", name))
            })
            .collect::<Result<_, _>>()?,
        _ => return Err("missing `scalar_overrides` object".to_string()),
    };
    Ok(ChecksumConfig {
        n: i32::try_from(int_field(obj, "n")?).map_err(|_| "`n` does not fit an i32")?,
        trials: u32::try_from(int_field(obj, "trials")?)
            .map_err(|_| "`trials` does not fit a u32")?,
        seed: parse_hex(obj.get("seed"), "seed")?,
        slack: usize_field(obj, "slack")?,
        value_range: (range_int(&range[0])?, range_int(&range[1])?),
        scalar_overrides: overrides,
        exec: ExecConfig {
            max_steps: parse_hex(obj.get("max_steps"), "max_steps")?,
        },
    })
}

fn tv_config_value(config: &TvConfig) -> Value {
    Value::Object(vec![
        (
            "alive2_budget".to_string(),
            budget_value(config.alive2_budget),
        ),
        (
            "cunroll_budget".to_string(),
            budget_value(config.cunroll_budget),
        ),
        (
            "spatial_budget".to_string(),
            budget_value(config.spatial_budget),
        ),
        (
            "alive2_chunks".to_string(),
            Value::Int(config.alive2_chunks as i64),
        ),
        (
            "array_slack".to_string(),
            Value::Int(config.array_slack as i64),
        ),
        (
            "max_iterations".to_string(),
            Value::Int(config.max_iterations as i64),
        ),
    ])
}

fn parse_tv_config(value: &Value) -> Result<TvConfig, String> {
    let obj = value
        .get("tv")
        .ok_or_else(|| "missing `tv` configuration".to_string())?;
    Ok(TvConfig {
        alive2_budget: parse_budget(obj, "alive2_budget")?,
        cunroll_budget: parse_budget(obj, "cunroll_budget")?,
        spatial_budget: parse_budget(obj, "spatial_budget")?,
        alive2_chunks: usize_field(obj, "alive2_chunks")?,
        array_slack: usize_field(obj, "array_slack")?,
        max_iterations: usize_field(obj, "max_iterations")?,
    })
}

// ---------------------------------------------------------------------------
// The manifest.
// ---------------------------------------------------------------------------

/// A manifest's generation spec: instead of shipping every printed
/// candidate, the manifest carries the scalar kernels plus `(k, seed)` and
/// each shard *generates its own share*. Per-cell seeds derive from the
/// base seed with [`lv_agents::derive_cell_seed`], so every participant —
/// coordinator, any worker, any thief — materializes bit-identical
/// candidates for any cell without coordination. Job `index` is cell
/// `(index / k, index % k)` of the kernel grid, labeled `name#j` — the same
/// grid (and therefore the same candidates and labels) as the in-process
/// overlapped driver [`crate::passk::overlapped_pass_at_k`] over the same
/// kernel list and base seed.
#[derive(Debug, Clone)]
pub struct GenerationSpec {
    /// The scalar kernels, in grid order: `(label prefix, function)`.
    pub kernels: Vec<(String, Function)>,
    /// Completions sampled per kernel.
    pub k: usize,
    /// The base RNG seed the per-cell seeds derive from.
    pub seed: u64,
}

impl GenerationSpec {
    /// Jobs the spec expands to: `kernels × k`.
    pub fn job_count(&self) -> usize {
        self.kernels.len() * self.k
    }

    /// The label job `index` will carry (`name#j`).
    pub fn label(&self, index: usize) -> String {
        let (i, j) = (index / self.k, index % self.k);
        format!("{}#{}", self.kernels[i].0, j)
    }

    /// Materializes job `index`: samples cell `(index / k, index % k)`
    /// under the derived per-cell seed. Deterministic — any process, any
    /// thread, any call order produces the same job.
    pub fn job(&self, index: usize) -> Job {
        let (i, j) = (index / self.k, index % self.k);
        let (name, scalar) = &self.kernels[i];
        let config = lv_agents::LlmConfig {
            seed: self.seed,
            ..lv_agents::LlmConfig::default()
        };
        let completion = lv_agents::sample_completion_cell(scalar, &config, i, j);
        Job::new(
            format!("{}#{}", name, j),
            scalar.clone(),
            completion.candidate,
        )
    }

    /// Materializes the whole grid, in job order.
    pub fn materialize_jobs(&self) -> Vec<Job> {
        (0..self.job_count()).map(|index| self.job(index)).collect()
    }

    /// The stable per-job plan keys. Candidates do not exist when the plan
    /// is derived, so the key covers the scalar's structural hash and the
    /// generated label — still a pure content function every participant
    /// computes identically, which is all [`ShardPlan`] needs.
    fn job_keys(&self) -> Vec<u64> {
        use lv_cir::hash::{structural_hash, Fnv64};
        let kernel_hashes: Vec<u64> = self
            .kernels
            .iter()
            .map(|(_, scalar)| structural_hash(scalar))
            .collect();
        (0..self.job_count())
            .map(|index| {
                let mut fnv = Fnv64::new();
                fnv.write_u64(kernel_hashes[index / self.k]);
                fnv.write_str(&self.label(index));
                fnv.finish()
            })
            .collect()
    }

    /// The shard plan over the spec's (not-yet-materialized) jobs.
    pub fn plan(&self, shards: usize, policy: ShardPolicy) -> ShardPlan {
        ShardPlan::from_job_keys(&self.job_keys(), shards, policy)
    }
}

/// The coordinator → worker manifest: the full job list, the shard layout,
/// and the engine configuration (minus cache and adaptive policy — every
/// worker opens its own per-shard cache file, and adaptive tuning is a
/// whole-batch decision that sharding deliberately leaves off so verdicts
/// stay bit-identical to the single-process run).
#[derive(Debug, Clone)]
pub struct SweepManifest {
    /// Number of shards the sweep is partitioned into.
    pub shards: usize,
    /// The partitioning policy.
    pub policy: ShardPolicy,
    /// Worker threads per shard process (`0` = one per CPU).
    pub threads: usize,
    /// The cascade stage list, in base order.
    pub cascade: Vec<crate::pipeline::Stage>,
    /// The per-kernel-category stage schedule. Serialized as its configured
    /// overrides; the recorded fingerprint covers the *resolved* orders, so
    /// a worker from a build whose categorizer or resolution differs is
    /// rejected before it can mix verdicts.
    pub schedule: StageSchedule,
    /// Stage configurations.
    pub pipeline: PipelineConfig,
    /// The solver-reuse layers every shard runs with. Part of the exchange
    /// because incremental reuse perturbs the configuration fingerprint —
    /// a worker must run the same reuse layers to produce (and verify) the
    /// recorded fingerprint. Manifests written before the reuse subsystem
    /// carry no field and mean "all layers off".
    pub reuse: EngineReuse,
    /// The sweep's jobs, in batch order. **Empty when [`generation`] is
    /// set** — a generation manifest ships no printed candidates; go
    /// through [`SweepManifest::job`] / [`SweepManifest::job_count`] /
    /// [`SweepManifest::materialize_jobs`], which cover both forms.
    ///
    /// [`generation`]: SweepManifest::generation
    pub jobs: Vec<Job>,
    /// When set, the manifest is a *generation* manifest: the jobs above
    /// are not shipped; every shard materializes its own share from this
    /// spec (deterministically, so all participants agree on every cell).
    /// Manifests written before the overlapped pipeline carry no field and
    /// mean the explicit job list.
    pub generation: Option<GenerationSpec>,
}

impl SweepManifest {
    /// Builds a manifest for `jobs` under `config`, partitioned into
    /// `shards` shards by `policy`. `config.cache` and `config.adaptive`
    /// are not part of the exchange (see the struct docs).
    pub fn new(
        config: &EngineConfig,
        jobs: &[Job],
        shards: usize,
        policy: ShardPolicy,
    ) -> SweepManifest {
        SweepManifest {
            shards: shards.max(1),
            policy,
            threads: config.threads,
            cascade: config.cascade.clone(),
            schedule: config.schedule.clone(),
            pipeline: config.pipeline.clone(),
            reuse: config.reuse,
            jobs: jobs.to_vec(),
            generation: None,
        }
    }

    /// Builds a *generation* manifest: no job list travels; every shard
    /// materializes its share from `spec`.
    pub fn from_generation(
        config: &EngineConfig,
        spec: GenerationSpec,
        shards: usize,
        policy: ShardPolicy,
    ) -> SweepManifest {
        SweepManifest {
            shards: shards.max(1),
            policy,
            threads: config.threads,
            cascade: config.cascade.clone(),
            schedule: config.schedule.clone(),
            pipeline: config.pipeline.clone(),
            reuse: config.reuse,
            jobs: Vec::new(),
            generation: Some(spec),
        }
    }

    /// Number of jobs the sweep covers, in either manifest form.
    pub fn job_count(&self) -> usize {
        match &self.generation {
            Some(spec) => spec.job_count(),
            None => self.jobs.len(),
        }
    }

    /// Job `index` of the sweep: cloned from the shipped list, or
    /// materialized on the fly from the generation spec — which is what
    /// lets a shard generate its share as the engine consumes it.
    pub fn job(&self, index: usize) -> Job {
        match &self.generation {
            Some(spec) => spec.job(index),
            None => self.jobs[index].clone(),
        }
    }

    /// The full job list, in batch order (materialized for a generation
    /// manifest — the coordinator's merge/recovery paths need it whole).
    pub fn materialize_jobs(&self) -> Vec<Job> {
        match &self.generation {
            Some(spec) => spec.materialize_jobs(),
            None => self.jobs.clone(),
        }
    }

    /// The engine configuration every worker (and the coordinator's
    /// recovery path) runs under. Attach a cache with
    /// [`EngineConfig::with_cache`] before building the engine.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            cascade: self.cascade.clone(),
            schedule: self.schedule.clone(),
            pipeline: self.pipeline.clone(),
            cache: None,
            adaptive: None,
            reuse: self.reuse,
        }
    }

    /// The configuration fingerprint recorded in (and verified against)
    /// the file.
    pub fn fingerprint(&self) -> u64 {
        self.engine_config().semantic_fingerprint()
    }

    /// The shard plan every participant derives from this manifest.
    pub fn plan(&self) -> ShardPlan {
        match &self.generation {
            Some(spec) => spec.plan(self.shards, self.policy),
            None => ShardPlan::new(&self.jobs, self.shards, self.policy),
        }
    }

    /// Streams the manifest document into `w` (jobs are printed and emitted
    /// one at a time, never assembled into a document tree).
    fn write_to<W: io::Write>(&self, w: W) -> io::Result<()> {
        let mut e = Emitter::new(w);
        e.begin_object()?;
        e.field_int("version", SHARD_FORMAT_VERSION)?;
        e.field_hex("fingerprint", self.fingerprint())?;
        e.field_int("shards", self.shards as i64)?;
        e.field_str("policy", self.policy.tag())?;
        e.field_int("threads", self.threads as i64)?;
        e.key("cascade")?;
        e.begin_array()?;
        for stage in &self.cascade {
            e.str(stage_tag(*stage))?;
        }
        e.end_array()?;
        e.key("schedule")?;
        e.begin_object()?;
        for (category, order) in self.schedule.overrides() {
            e.key(category.tag())?;
            e.begin_array()?;
            for stage in order {
                e.str(stage_tag(*stage))?;
            }
            e.end_array()?;
        }
        e.end_object()?;
        e.key("checksum")?;
        e.value(&checksum_config_value(&self.pipeline.checksum))?;
        e.key("tv")?;
        e.value(&tv_config_value(&self.pipeline.tv))?;
        e.key("reuse")?;
        e.begin_object()?;
        e.field_bool("memo", self.reuse.memo)?;
        e.field_bool("incremental", self.reuse.incremental)?;
        e.field_bool("portfolio", self.reuse.portfolio)?;
        e.field_bool("simplify_preprocess", self.reuse.simplify.preprocess)?;
        e.field_bool("simplify_inprocess", self.reuse.simplify.inprocess)?;
        e.end_object()?;
        match &self.generation {
            // A generation manifest ships the kernels + (k, seed) instead
            // of the expanded job list with its printed candidates.
            Some(spec) => {
                e.key("generation")?;
                e.begin_object()?;
                e.field_hex("seed", spec.seed)?;
                e.field_int("k", spec.k as i64)?;
                e.key("kernels")?;
                e.begin_array()?;
                for (label, scalar) in &spec.kernels {
                    e.begin_object()?;
                    e.field_str("label", label)?;
                    e.field_str("scalar", &print_function(scalar))?;
                    e.end_object()?;
                }
                e.end_array()?;
                e.end_object()?;
            }
            None => {
                e.key("jobs")?;
                e.begin_array()?;
                for job in &self.jobs {
                    e.begin_object()?;
                    e.field_str("label", &job.label)?;
                    e.field_str("scalar", &print_function(&job.scalar))?;
                    e.field_str("candidate", &print_function(&job.candidate))?;
                    e.end_object()?;
                }
                e.end_array()?;
            }
        }
        e.end_object()?;
        let mut w = e.into_inner();
        w.write_all(b"\n")
    }

    /// Serializes the manifest to its JSON document.
    pub fn render(&self) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("rendering to memory cannot fail");
        String::from_utf8(buf).expect("JSON output is UTF-8")
    }

    /// Writes the manifest atomically.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        write_atomic_stream(path, false, |w| self.write_to(w)).map(|_| ())
    }

    /// Loads and validates a manifest: the format version must match, every
    /// function source must re-parse, and the recorded fingerprint must
    /// equal the one recomputed from the parsed configuration (a mismatch
    /// means the writer was a semantically different build).
    pub fn load(path: impl Into<PathBuf>) -> Result<SweepManifest, ShardError> {
        let path = path.into();
        let text = std::fs::read_to_string(&path)?;
        let doc = json::parse(&text).map_err(|e| ShardError::Format(e.to_string()))?;
        check_version(&doc, "manifest")?;
        let policy = ShardPolicy::from_tag(str_field(&doc, "policy").map_err(ShardError::Format)?)
            .map_err(ShardError::Format)?;
        let cascade = doc
            .get("cascade")
            .and_then(Value::as_array)
            .ok_or_else(|| ShardError::Format("missing `cascade` array".to_string()))?
            .iter()
            .map(|stage| {
                stage
                    .as_str()
                    .ok_or_else(|| "cascade entry is not a string".to_string())
                    .and_then(parse_stage)
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(ShardError::Format)?;
        let mut schedule = StageSchedule::algorithm1();
        match doc.get("schedule") {
            // Manifests written before the schedule layer carry no field;
            // they mean the default order.
            None => {}
            Some(Value::Object(clauses)) => {
                for (tag, order) in clauses {
                    let category =
                        lv_analysis::KernelCategory::from_tag(tag).map_err(ShardError::Format)?;
                    let order = order
                        .as_array()
                        .ok_or_else(|| {
                            ShardError::Format(format!(
                                "schedule override `{}` is not an array",
                                tag
                            ))
                        })?
                        .iter()
                        .map(|stage| {
                            stage
                                .as_str()
                                .ok_or_else(|| "schedule stage is not a string".to_string())
                                .and_then(parse_stage)
                        })
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(ShardError::Format)?;
                    schedule = schedule
                        .with_override(category, order)
                        .map_err(ShardError::Format)?;
                }
            }
            Some(_) => {
                return Err(ShardError::Format(
                    "`schedule` is not an object".to_string(),
                ))
            }
        }
        // Either form: a generation spec (kernels + k + seed, no printed
        // candidates), or the explicit job list.
        let (jobs, generation) = match doc.get("generation") {
            Some(spec) => {
                let kernels = spec
                    .get("kernels")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ShardError::Format("missing `kernels` array".to_string()))?
                    .iter()
                    .map(|kernel| {
                        let label = str_field(kernel, "label")?.to_string();
                        let scalar = parse_source(str_field(kernel, "scalar")?)?;
                        Ok((label, scalar))
                    })
                    .collect::<Result<Vec<(String, Function)>, String>>()
                    .map_err(ShardError::Format)?;
                let parsed = GenerationSpec {
                    kernels,
                    k: usize_field(spec, "k").map_err(ShardError::Format)?,
                    seed: parse_hex(spec.get("seed"), "seed").map_err(ShardError::Format)?,
                };
                (Vec::new(), Some(parsed))
            }
            None => {
                let jobs = doc
                    .get("jobs")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ShardError::Format("missing `jobs` array".to_string()))?
                    .iter()
                    .map(|job| {
                        let label = str_field(job, "label")?.to_string();
                        let scalar = parse_source(str_field(job, "scalar")?)?;
                        let candidate = parse_source(str_field(job, "candidate")?)?;
                        Ok(Job {
                            label,
                            scalar,
                            candidate,
                        })
                    })
                    .collect::<Result<Vec<Job>, String>>()
                    .map_err(ShardError::Format)?;
                (jobs, None)
            }
        };
        // Manifests written before the reuse subsystem carry no `reuse`
        // field; they mean every layer off.
        let reuse = match doc.get("reuse") {
            None => EngineReuse::default(),
            Some(obj) => EngineReuse {
                memo: bool_field(obj, "memo").map_err(ShardError::Format)?,
                incremental: bool_field(obj, "incremental").map_err(ShardError::Format)?,
                portfolio: bool_field(obj, "portfolio").map_err(ShardError::Format)?,
                simplify: lv_tv::SimplifyConfig {
                    preprocess: opt_bool_field(obj, "simplify_preprocess")
                        .map_err(ShardError::Format)?,
                    inprocess: opt_bool_field(obj, "simplify_inprocess")
                        .map_err(ShardError::Format)?,
                },
            },
        };
        let manifest = SweepManifest {
            shards: usize_field(&doc, "shards").map_err(ShardError::Format)?,
            policy,
            threads: usize_field(&doc, "threads").map_err(ShardError::Format)?,
            cascade,
            schedule,
            pipeline: PipelineConfig {
                checksum: parse_checksum_config(&doc).map_err(ShardError::Format)?,
                tv: parse_tv_config(&doc).map_err(ShardError::Format)?,
            },
            reuse,
            jobs,
            generation,
        };
        let recorded =
            parse_hex(doc.get("fingerprint"), "fingerprint").map_err(ShardError::Format)?;
        let computed = manifest.fingerprint();
        if recorded != computed {
            return Err(ShardError::FingerprintMismatch { recorded, computed });
        }
        Ok(manifest)
    }
}

fn parse_source(source: &str) -> Result<Function, String> {
    lv_cir::parse_function(source).map_err(|e| format!("function failed to re-parse: {}", e))
}

fn check_version(doc: &Value, what: &str) -> Result<(), ShardError> {
    match doc.get("version").and_then(Value::as_int) {
        Some(SHARD_FORMAT_VERSION) => Ok(()),
        Some(other) => Err(ShardError::Format(format!(
            "{} has format version {}, this build reads version {}",
            what, other, SHARD_FORMAT_VERSION
        ))),
        None => Err(ShardError::Format(format!(
            "{} has no `version` field",
            what
        ))),
    }
}

// ---------------------------------------------------------------------------
// The shard report.
// ---------------------------------------------------------------------------

/// One shard's results: `(original job index, report)` pairs for every job
/// the shard finished, in ascending index order.
#[derive(Debug, Clone)]
pub struct ShardReportFile {
    /// Which shard produced the file.
    pub shard: usize,
    /// The sweep's total shard count.
    pub shards: usize,
    /// The configuration fingerprint the shard ran under.
    pub fingerprint: u64,
    /// Finished jobs: original index → report.
    pub entries: Vec<(usize, JobReport)>,
}

impl ShardReportFile {
    /// Streams the snapshot report document into `w`. Entries are emitted
    /// in ascending job-index order, so re-rendering the same contents is
    /// byte-identical.
    fn write_to<W: io::Write>(&self, w: W) -> io::Result<()> {
        let mut entries: Vec<&(usize, JobReport)> = self.entries.iter().collect();
        entries.sort_by_key(|(index, _)| *index);
        let mut e = Emitter::new(w);
        e.begin_object()?;
        e.field_int("version", SHARD_FORMAT_VERSION)?;
        e.field_int("shard", self.shard as i64)?;
        e.field_int("shards", self.shards as i64)?;
        e.field_hex("fingerprint", self.fingerprint)?;
        e.key("jobs")?;
        e.begin_array()?;
        for (index, report) in entries {
            emit_job_report(&mut e, *index, report)?;
        }
        e.end_array()?;
        e.end_object()?;
        let mut w = e.into_inner();
        w.write_all(b"\n")
    }

    /// Serializes the report to its snapshot JSON document.
    pub fn render(&self) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("rendering to memory cannot fail");
        String::from_utf8(buf).expect("JSON output is UTF-8")
    }

    /// Writes the snapshot report atomically; returns its size in bytes
    /// (the whole-file flush cost the `journal_flush` bench accounts).
    pub fn write(&self, path: &Path) -> io::Result<u64> {
        write_atomic_stream(path, false, |w| self.write_to(w))
    }

    /// Loads a shard report — snapshot or journal form, sniffed by content.
    /// A journal's torn final record is truncated (the killed-mid-append
    /// case); a journal torn at its *header* has no shard metadata and is
    /// reported as malformed, which the coordinator treats like a missing
    /// report.
    pub fn load(path: impl Into<PathBuf>) -> Result<ShardReportFile, ShardError> {
        let path = path.into();
        let text = std::fs::read_to_string(&path)?;
        if journal::is_journal(&text) {
            return ShardReportFile::from_journal(&text);
        }
        let doc = json::parse(&text).map_err(|e| ShardError::Format(e.to_string()))?;
        check_version(&doc, "shard report")?;
        let entries = doc
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or_else(|| ShardError::Format("missing `jobs` array".to_string()))?
            .iter()
            .map(parse_job_report)
            .collect::<Result<Vec<_>, String>>()
            .map_err(ShardError::Format)?;
        Ok(ShardReportFile {
            shard: usize_field(&doc, "shard").map_err(ShardError::Format)?,
            shards: usize_field(&doc, "shards").map_err(ShardError::Format)?,
            fingerprint: parse_hex(doc.get("fingerprint"), "fingerprint")
                .map_err(ShardError::Format)?,
            entries,
        })
    }

    /// Replays a report journal into the in-memory report form.
    fn from_journal(text: &str) -> Result<ShardReportFile, ShardError> {
        let replayed = journal::replay(text).map_err(ShardError::Format)?;
        journal::check_header(&replayed, REPORT_JOURNAL_KIND, SHARD_FORMAT_VERSION)
            .map_err(ShardError::Format)?;
        let header = &replayed.header;
        let entries = replayed
            .records
            .iter()
            // Heartbeat records are liveness telemetry, not job results.
            .filter(|record| record.get("heartbeat").is_none())
            .map(parse_job_report)
            .collect::<Result<Vec<_>, String>>()
            .map_err(ShardError::Format)?;
        Ok(ShardReportFile {
            shard: usize_field(header, "shard").map_err(ShardError::Format)?,
            shards: usize_field(header, "shards").map_err(ShardError::Format)?,
            fingerprint: parse_hex(header.get("fingerprint"), "fingerprint")
                .map_err(ShardError::Format)?,
            entries,
        })
    }
}

/// The append-only form of the shard report: a journal whose header record
/// carries the shard metadata and whose data records are job entries.
/// Appending a finished job is O(record) — one framed line through the
/// journal's long-lived buffered handle — instead of the snapshot's
/// whole-file rewrite. [`ShardReportFile::load`] reads both forms.
#[derive(Debug)]
pub struct ShardReportJournal {
    writer: JournalWriter,
}

impl ShardReportJournal {
    /// Creates (truncating) the report journal at `path` and writes its
    /// header record.
    pub fn create(
        path: &Path,
        shard: usize,
        shards: usize,
        fingerprint: u64,
        fsync: FsyncPolicy,
    ) -> io::Result<ShardReportJournal> {
        let writer = JournalWriter::create(path, fsync, |e| {
            e.begin_object()?;
            e.field_str("journal", REPORT_JOURNAL_KIND)?;
            e.field_int("version", SHARD_FORMAT_VERSION)?;
            e.field_int("shard", shard as i64)?;
            e.field_int("shards", shards as i64)?;
            e.field_hex("fingerprint", fingerprint)?;
            e.end_object()
        })?;
        Ok(ShardReportJournal { writer })
    }

    /// Appends (and, per the flush batching, flushes) one finished job's
    /// record.
    pub fn append(&mut self, index: usize, report: &JobReport) -> io::Result<()> {
        self.writer.append(|e| emit_job_report(e, index, report))
    }

    /// Appends a liveness heartbeat: a monotonic sequence number plus the
    /// shard's finished-job count. Heartbeats are flushed immediately —
    /// their whole point is that a *reader* (the coordinator's stall
    /// detector, a thief shard) sees liveness now, not at the next batched
    /// commit — which also commits any job records buffered behind them.
    /// [`ShardReportFile::load`] skips them, so they are invisible to the
    /// report merge.
    pub fn append_heartbeat(&mut self, seq: u64, finished: usize) -> io::Result<()> {
        self.writer.append(|e| {
            e.begin_object()?;
            e.field_hex("heartbeat", seq)?;
            e.field_int("finished", finished as i64)?;
            e.end_object()
        })?;
        self.writer.flush()
    }

    /// Sets the journal's flush batching (see
    /// [`JournalWriter::set_flush_every`]).
    pub fn set_flush_every(&mut self, n: usize) {
        self.writer.set_flush_every(n);
    }

    /// Total journal bytes written, i.e. the file's current length.
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Flushes buffered bytes (appends already flush per record).
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Forces the journal to disk, regardless of fsync policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }
}

/// A live shard's observable progress, read from its report journal
/// *while the worker is still running*: the latest heartbeat sequence
/// number plus the set of job indices it has already committed. This is
/// the signal both the coordinator's stall detector and thief shards key
/// on — a worker whose progress tuple stops advancing is stalled even if
/// its process is alive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardProgress {
    /// The highest heartbeat sequence number seen (0 before the first
    /// heartbeat).
    pub heartbeats: u64,
    /// Original job indices whose reports have reached the journal.
    pub reported: std::collections::BTreeSet<usize>,
}

/// Reads a live shard's progress from its report journal, tolerantly: a
/// missing file, a non-journal file, a torn or wrong-kind header, a
/// fingerprint mismatch, or any malformed record reads as `None` / gets
/// skipped — a concurrent reader must never fail a sweep over a file that
/// is mid-append.
pub fn read_progress(path: &Path, fingerprint: u64) -> Option<ShardProgress> {
    let text = std::fs::read_to_string(path).ok()?;
    if !journal::is_journal(&text) {
        return None;
    }
    let replayed = journal::replay(&text).ok()?;
    journal::check_header(&replayed, REPORT_JOURNAL_KIND, SHARD_FORMAT_VERSION).ok()?;
    if replayed.header != Value::Null
        && parse_hex(replayed.header.get("fingerprint"), "fingerprint").ok()? != fingerprint
    {
        return None;
    }
    let mut progress = ShardProgress::default();
    for record in &replayed.records {
        if let Ok(seq) = parse_hex(record.get("heartbeat"), "heartbeat") {
            progress.heartbeats = progress.heartbeats.max(seq);
        } else if let Ok(index) = usize_field(record, "index") {
            progress.reported.insert(index);
        }
    }
    Some(progress)
}

/// The append-only steal-claim journal a stealing-enabled shard writes
/// next to its report journal (`shard-<i>.claims.json`): its header
/// carries the shard/fingerprint metadata, and each record is one job
/// index the shard claims *before* running it. Claims are flushed per
/// record — a claim that other shards cannot see yet does not exist.
///
/// Claims are advisory, not locks: two shards that race to claim the same
/// index both run it, deterministically produce the same verdict, and the
/// coordinator's first-report-wins merge plus the cache's
/// equal-entries-merge-cleanly rule make the duplicate harmless. The
/// claim's job is to make that race rare, not impossible.
#[derive(Debug)]
pub struct ClaimsJournal {
    writer: JournalWriter,
}

impl ClaimsJournal {
    /// Creates (truncating) the claims journal at `path` and writes its
    /// header record.
    pub fn create(
        path: &Path,
        shard: usize,
        shards: usize,
        fingerprint: u64,
        fsync: FsyncPolicy,
    ) -> io::Result<ClaimsJournal> {
        let writer = JournalWriter::create(path, fsync, |e| {
            e.begin_object()?;
            e.field_str("journal", CLAIMS_JOURNAL_KIND)?;
            e.field_int("version", SHARD_FORMAT_VERSION)?;
            e.field_int("shard", shard as i64)?;
            e.field_int("shards", shards as i64)?;
            e.field_hex("fingerprint", fingerprint)?;
            e.end_object()
        })?;
        Ok(ClaimsJournal { writer })
    }

    /// Appends (and flushes — claims must be visible immediately) one
    /// claimed job index.
    pub fn append(&mut self, index: usize) -> io::Result<()> {
        self.writer.append(|e| {
            e.begin_object()?;
            e.field_int("index", index as i64)?;
            e.end_object()
        })
    }
}

/// Reads the set of job indices a shard has claimed, tolerantly (same
/// rules as [`read_progress`]: anything unreadable reads as "no claims").
pub fn read_claims(path: &Path, fingerprint: u64) -> std::collections::BTreeSet<usize> {
    let mut claims = std::collections::BTreeSet::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return claims;
    };
    if !journal::is_journal(&text) {
        return claims;
    }
    let Ok(replayed) = journal::replay(&text) else {
        return claims;
    };
    if journal::check_header(&replayed, CLAIMS_JOURNAL_KIND, SHARD_FORMAT_VERSION).is_err() {
        return claims;
    }
    if replayed.header != Value::Null {
        match parse_hex(replayed.header.get("fingerprint"), "fingerprint") {
            Ok(recorded) if recorded == fingerprint => {}
            _ => return claims,
        }
    }
    for record in &replayed.records {
        if let Ok(index) = usize_field(record, "index") {
            claims.insert(index);
        }
    }
    claims
}

fn duration_us(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

/// Streams one job-report object — the shape shared by snapshot `jobs`
/// elements and report-journal records.
fn emit_job_report<W: io::Write>(
    e: &mut Emitter<W>,
    index: usize,
    report: &JobReport,
) -> io::Result<()> {
    e.begin_object()?;
    e.field_int("index", index as i64)?;
    e.field_str("label", &report.label)?;
    e.field_str("verdict", verdict_tag(report.verdict))?;
    e.field_str("stage", stage_tag(report.stage))?;
    e.field_str("detail", &report.detail)?;
    e.key("checksum")?;
    emit_checksum(e, report.checksum)?;
    e.field_bool("cache_hit", report.cache_hit)?;
    e.field_hex("wall_us", duration_us(report.wall))?;
    e.key("reuse")?;
    e.begin_object()?;
    e.field_hex("blast_hits", report.reuse.blast_hits)?;
    e.field_hex("blast_misses", report.reuse.blast_misses)?;
    e.field_hex("assumption_reuses", report.reuse.assumption_reuses)?;
    e.field_hex("escalations", report.reuse.escalations)?;
    e.end_object()?;
    e.key("simplify")?;
    e.begin_object()?;
    e.field_hex("vars_eliminated", report.simplify.vars_eliminated)?;
    e.field_hex("clauses_subsumed", report.simplify.clauses_subsumed)?;
    e.field_hex("clauses_strengthened", report.simplify.clauses_strengthened)?;
    e.field_hex("arena_bytes", report.simplify.arena_bytes)?;
    e.field_hex("preprocess_us", report.simplify.preprocess_micros)?;
    e.end_object()?;
    e.key("traces")?;
    e.begin_array()?;
    for trace in &report.traces {
        e.begin_object()?;
        e.field_str("stage", stage_tag(trace.stage))?;
        e.field_bool("conclusive", trace.conclusive)?;
        e.field_hex("wall_us", duration_us(trace.wall))?;
        e.field_hex("conflicts", trace.conflicts)?;
        e.field_hex("clauses", trace.clauses)?;
        e.field_bool("name_mismatch", trace.name_mismatch)?;
        e.field_bool("escalated", trace.escalated)?;
        e.end_object()?;
    }
    e.end_array()?;
    e.end_object()
}

fn parse_job_report(item: &Value) -> Result<(usize, JobReport), String> {
    let traces = item
        .get("traces")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing `traces` array".to_string())?
        .iter()
        .map(|trace| {
            Ok(StageTrace {
                stage: parse_stage(str_field(trace, "stage")?)?,
                conclusive: bool_field(trace, "conclusive")?,
                wall: Duration::from_micros(parse_hex(trace.get("wall_us"), "wall_us")?),
                conflicts: parse_hex(trace.get("conflicts"), "conflicts")?,
                clauses: parse_hex(trace.get("clauses"), "clauses")?,
                name_mismatch: bool_field(trace, "name_mismatch")?,
                // Reports written before the portfolio carry no field;
                // nothing escalated then.
                escalated: matches!(trace.get("escalated"), Some(Value::Bool(true))),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    // Reports written before the reuse subsystem carry no counters.
    let reuse = match item.get("reuse") {
        None => ReuseCounters::default(),
        Some(obj) => ReuseCounters {
            blast_hits: parse_hex(obj.get("blast_hits"), "blast_hits")?,
            blast_misses: parse_hex(obj.get("blast_misses"), "blast_misses")?,
            assumption_reuses: parse_hex(obj.get("assumption_reuses"), "assumption_reuses")?,
            escalations: parse_hex(obj.get("escalations"), "escalations")?,
        },
    };
    // Likewise, reports written before the simplification subsystem carry
    // no `simplify` object.
    let simplify = match item.get("simplify") {
        None => SimplifyCounters::default(),
        Some(obj) => SimplifyCounters {
            vars_eliminated: parse_hex(obj.get("vars_eliminated"), "vars_eliminated")?,
            clauses_subsumed: parse_hex(obj.get("clauses_subsumed"), "clauses_subsumed")?,
            clauses_strengthened: parse_hex(
                obj.get("clauses_strengthened"),
                "clauses_strengthened",
            )?,
            arena_bytes: parse_hex(obj.get("arena_bytes"), "arena_bytes")?,
            preprocess_micros: parse_hex(obj.get("preprocess_us"), "preprocess_us")?,
        },
    };
    let report = JobReport {
        label: str_field(item, "label")?.to_string(),
        verdict: parse_verdict(str_field(item, "verdict")?)?,
        stage: parse_stage(str_field(item, "stage")?)?,
        detail: str_field(item, "detail")?.to_string(),
        checksum: parse_checksum(item.get("checksum"))?,
        traces,
        wall: Duration::from_micros(parse_hex(item.get("wall_us"), "wall_us")?),
        cache_hit: bool_field(item, "cache_hit")?,
        reuse,
        simplify,
    };
    Ok((usize_field(item, "index")?, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Equivalence, Stage};
    use lv_cir::parse_function;

    fn sample_manifest() -> SweepManifest {
        let scalar = parse_function(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        )
        .unwrap();
        let jobs = vec![Job::new("s000", scalar.clone(), scalar)];
        let mut config = EngineConfig::full(PipelineConfig::default()).with_threads(2);
        config
            .pipeline
            .checksum
            .scalar_overrides
            .insert("n".to_string(), 40);
        SweepManifest::new(&config, &jobs, 3, ShardPolicy::HashMod)
    }

    #[test]
    fn manifest_round_trips_with_identical_fingerprint() {
        let dir = std::env::temp_dir().join(format!("lv-shard-mani-{}", std::process::id()));
        let path = dir.join("manifest.json");
        let manifest = sample_manifest();
        manifest.write(&path).unwrap();

        let loaded = SweepManifest::load(&path).unwrap();
        assert_eq!(loaded.shards, 3);
        assert_eq!(loaded.policy, ShardPolicy::HashMod);
        assert_eq!(loaded.threads, 2);
        assert_eq!(loaded.cascade, manifest.cascade);
        assert_eq!(loaded.fingerprint(), manifest.fingerprint());
        assert_eq!(loaded.jobs.len(), 1);
        assert_eq!(loaded.jobs[0].scalar, manifest.jobs[0].scalar);
        assert_eq!(loaded.plan(), manifest.plan());
        // Rendering the loaded manifest reproduces the file byte-for-byte.
        assert_eq!(loaded.render(), manifest.render());
        std::fs::remove_file(&path).unwrap();
    }

    fn sample_generation_manifest() -> SweepManifest {
        let kernels: Vec<(String, Function)> = ["s000", "s112"]
            .iter()
            .map(|name| (name.to_string(), lv_tsvc::kernel(name).unwrap().function()))
            .collect();
        let spec = GenerationSpec {
            kernels,
            k: 3,
            seed: 0xC0FFEE,
        };
        let config = EngineConfig::full(PipelineConfig::default()).with_threads(2);
        SweepManifest::from_generation(&config, spec, 2, ShardPolicy::HashMod)
    }

    #[test]
    fn generation_manifest_round_trips_and_ships_no_candidates() {
        let dir = std::env::temp_dir().join(format!("lv-shard-genmani-{}", std::process::id()));
        let path = dir.join("manifest.json");
        let manifest = sample_generation_manifest();
        manifest.write(&path).unwrap();

        let rendered = manifest.render();
        assert!(
            !rendered.contains("\"candidate\""),
            "a generation manifest must not ship printed candidates"
        );
        assert!(rendered.contains("\"generation\""));

        let loaded = SweepManifest::load(&path).unwrap();
        assert_eq!(loaded.fingerprint(), manifest.fingerprint());
        assert!(loaded.jobs.is_empty(), "no job list travels");
        assert_eq!(loaded.job_count(), 6);
        assert_eq!(loaded.plan(), manifest.plan());
        assert_eq!(loaded.render(), rendered);

        // Every participant materializes the identical grid — the cells
        // the writer's spec expands to, labeled `name#j`, in any order.
        let all = manifest.materialize_jobs();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].label, "s000#0");
        assert_eq!(all[5].label, "s112#2");
        for index in (0..6).rev() {
            let job = loaded.job(index);
            assert_eq!(job.label, all[index].label);
            assert_eq!(job.scalar, all[index].scalar);
            assert_eq!(job.candidate, all[index].candidate);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generation_plan_is_stable_and_covers_every_cell() {
        let manifest = sample_generation_manifest();
        let spec = manifest.generation.as_ref().unwrap();
        for policy in [ShardPolicy::HashMod, ShardPolicy::Contiguous] {
            for shards in [1, 2, 5] {
                let plan = spec.plan(shards, policy);
                assert_eq!(plan.len(), spec.job_count());
                assert_eq!(plan, spec.plan(shards, policy), "plans are deterministic");
                let covered: usize = (0..shards).map(|shard| plan.indices_of(shard).len()).sum();
                assert_eq!(covered, spec.job_count());
            }
        }
    }

    #[test]
    fn scheduled_manifest_round_trips_and_fingerprints_distinctly() {
        use lv_analysis::KernelCategory;
        let dir = std::env::temp_dir().join(format!("lv-shard-sched-{}", std::process::id()));
        let path = dir.join("manifest.json");
        let mut manifest = sample_manifest();
        let default_fingerprint = manifest.fingerprint();
        manifest.schedule = StageSchedule::algorithm1()
            .with_override(
                KernelCategory::DependenceFree,
                vec![Stage::Splitting, Stage::Alive2, Stage::CUnroll],
            )
            .unwrap()
            .with_override(
                KernelCategory::Reduction,
                vec![Stage::CUnroll, Stage::Splitting, Stage::Alive2],
            )
            .unwrap();
        assert_ne!(
            manifest.fingerprint(),
            default_fingerprint,
            "effective overrides change the configuration fingerprint"
        );
        manifest.write(&path).unwrap();
        let loaded = SweepManifest::load(&path).unwrap();
        assert_eq!(loaded.schedule, manifest.schedule);
        assert_eq!(loaded.fingerprint(), manifest.fingerprint());
        assert_eq!(loaded.render(), manifest.render());

        // Tampering with the schedule trips the fingerprint check, exactly
        // like any other configuration field.
        let tampered = manifest.render().replace(
            "\"dependence-free\":[\"splitting\",\"alive2\",\"cunroll\"]",
            "\"dependence-free\":[\"alive2\",\"splitting\",\"cunroll\"]",
        );
        assert_ne!(tampered, manifest.render(), "tamper point must exist");
        std::fs::write(&path, &tampered).unwrap();
        match SweepManifest::load(&path) {
            Err(ShardError::FingerprintMismatch { .. }) => {}
            other => panic!("expected a fingerprint mismatch, got {:?}", other),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tampered_fingerprint_is_rejected() {
        let dir = std::env::temp_dir().join(format!("lv-shard-tamper-{}", std::process::id()));
        let path = dir.join("manifest.json");
        let manifest = sample_manifest();
        let tampered = manifest.render().replace("\"trials\":3", "\"trials\":4");
        assert_ne!(tampered, manifest.render(), "tamper point must exist");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &tampered).unwrap();
        match SweepManifest::load(&path) {
            Err(ShardError::FingerprintMismatch { .. }) => {}
            other => panic!("expected a fingerprint mismatch, got {:?}", other),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shard_report_round_trips() {
        let dir = std::env::temp_dir().join(format!("lv-shard-report-{}", std::process::id()));
        let path = dir.join("shard-0.report.json");
        let report = ShardReportFile {
            shard: 0,
            shards: 2,
            fingerprint: 0xabcd,
            entries: vec![(
                4,
                JobReport {
                    label: "s112".to_string(),
                    verdict: Equivalence::Equivalent,
                    stage: Stage::CUnroll,
                    detail: "with \"quotes\"\nand newlines".to_string(),
                    checksum: Some(lv_interp::ChecksumClass::Plausible),
                    traces: vec![StageTrace {
                        stage: Stage::Checksum,
                        conclusive: false,
                        wall: Duration::from_micros(1234),
                        conflicts: 0,
                        clauses: 0,
                        name_mismatch: true,
                        escalated: true,
                    }],
                    wall: Duration::from_micros(9999),
                    cache_hit: false,
                    reuse: ReuseCounters {
                        blast_hits: 7,
                        blast_misses: 2,
                        assumption_reuses: 5,
                        escalations: 1,
                    },
                    simplify: SimplifyCounters {
                        vars_eliminated: 210,
                        clauses_subsumed: 33,
                        clauses_strengthened: 12,
                        arena_bytes: 65_536,
                        preprocess_micros: 800,
                    },
                },
            )],
        };
        report.write(&path).unwrap();
        let loaded = ShardReportFile::load(&path).unwrap();
        assert_eq!(loaded.shard, 0);
        assert_eq!(loaded.shards, 2);
        assert_eq!(loaded.fingerprint, 0xabcd);
        assert_eq!(loaded.entries.len(), 1);
        let (index, job) = &loaded.entries[0];
        assert_eq!(*index, 4);
        assert_eq!(job.label, "s112");
        assert_eq!(job.verdict, Equivalence::Equivalent);
        assert_eq!(job.stage, Stage::CUnroll);
        assert_eq!(job.detail, "with \"quotes\"\nand newlines");
        assert_eq!(job.traces.len(), 1);
        assert!(job.traces[0].name_mismatch);
        assert!(job.traces[0].escalated);
        assert_eq!(job.traces[0].wall, Duration::from_micros(1234));
        assert_eq!(job.reuse.blast_hits, 7);
        assert_eq!(job.reuse.blast_misses, 2);
        assert_eq!(job.reuse.assumption_reuses, 5);
        assert_eq!(job.reuse.escalations, 1);
        assert_eq!(job.simplify.vars_eliminated, 210);
        assert_eq!(job.simplify.clauses_subsumed, 33);
        assert_eq!(job.simplify.clauses_strengthened, 12);
        assert_eq!(job.simplify.arena_bytes, 65_536);
        assert_eq!(job.simplify.preprocess_micros, 800);
        assert_eq!(loaded.render(), report.render());
        std::fs::remove_file(&path).unwrap();
    }
}
