//! The coordinator side of a sharded sweep: process spawning, supervision,
//! recovery, and merge.
//!
//! [`run_sharded_sweep`] writes the manifest, spawns one worker process per
//! shard (`<worker> --shard i/N --manifest … --out …`), supervises them
//! under a wall-clock timeout, and merges whatever they produced. Any job a
//! worker did not report — because the worker was killed, timed out, exited
//! nonzero, never spawned, or reported under a mismatched configuration
//! fingerprint — is re-run *in-process* through the identical engine
//! configuration, so the merged result never has holes and, verification
//! being deterministic, equals the single-process run bit for bit. Shard
//! cache files are merged with conflict detection
//! ([`VerdictCache::merge_from`]) and bounded by the configured
//! [`CacheBounds`] before the merged cache is persisted.

use crate::cache::{CacheBounds, CacheFormat, CachedVerdict, VerdictCache};
use crate::engine::{job_cache_key, BatchReport, Job, JobReport, VerificationEngine};
use crate::journal::FsyncPolicy;
use crate::profile::CrossRunProfile;
use crate::shard::exchange::{
    read_progress, GenerationSpec, ShardProgress, ShardReportFile, SweepManifest,
};
use crate::shard::runner::{cache_path, claims_path, profile_path, report_path, FlushMode};
use crate::shard::{ShardError, ShardPolicy};
use crate::EngineConfig;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to invoke a shard worker process.
///
/// The coordinator appends `--shard i/N --manifest <path> --out <dir>` (and
/// `--fail-after k` under fault injection) to `args`, so any binary that
/// starts with [`run_worker_from_args`](crate::shard::run_worker_from_args)
/// works — most commonly the coordinator's own executable
/// ([`WorkerSpec::current_exe`]).
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// The program to spawn.
    pub program: PathBuf,
    /// Arguments placed before the shard arguments.
    pub args: Vec<String>,
}

impl WorkerSpec {
    /// A worker spec running `program` with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerSpec {
        WorkerSpec {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// The self-exec spec: re-invoke the current executable.
    pub fn current_exe() -> std::io::Result<WorkerSpec> {
        Ok(WorkerSpec::new(std::env::current_exe()?))
    }
}

/// A fully assembled worker launch: program, final argument vector, and the
/// log file its stdout/stderr should go to. The coordinator builds one per
/// shard and hands it to the [`WorkerSpawner`]; a backend never has to know
/// how the shard arguments were derived.
#[derive(Debug, Clone)]
pub struct WorkerLaunch {
    /// The program to run.
    pub program: PathBuf,
    /// The complete argument vector (worker-spec args plus shard args).
    pub args: Vec<String>,
    /// Where the worker's stdout/stderr should be captured.
    pub log_path: PathBuf,
}

/// A handle to one spawned worker, owned by the coordinator's supervision
/// loop.
pub trait WorkerHandle: Send {
    /// Non-blocking poll: `Ok(None)` while the worker is still running,
    /// `Ok(Some(status))` once it ended.
    fn try_wait(&mut self) -> std::io::Result<Option<ShardStatus>>;
    /// Forcibly terminates the worker (used at the deadline and on stall).
    /// Must reap the worker so no zombie outlives the sweep.
    fn kill(&mut self);
}

/// Spawning backend for shard workers.
///
/// [`run_sharded_sweep`] uses [`LocalProcessSpawner`] — one local child
/// process per shard. The trait exists so the same coordinator (manifest,
/// supervision, stall detection, merge, recovery) can drive workers it does
/// not fork itself, e.g. a remote-exec backend that ships the launch to
/// another host; the shard exchange format is already path-based and
/// self-describing, so only this seam changes.
pub trait WorkerSpawner {
    /// Starts one worker. Errors become [`ShardStatus::SpawnFailed`] — the
    /// coordinator recovers the shard's jobs in-process.
    fn spawn(&self, launch: &WorkerLaunch) -> Result<Box<dyn WorkerHandle>, String>;
}

/// The default [`WorkerSpawner`]: `std::process::Command` on this machine,
/// stdout/stderr captured to the launch's log file.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalProcessSpawner;

struct LocalProcessHandle(Child);

impl WorkerHandle for LocalProcessHandle {
    fn try_wait(&mut self) -> std::io::Result<Option<ShardStatus>> {
        Ok(self.0.try_wait()?.map(|status| {
            if status.success() {
                ShardStatus::Completed
            } else {
                ShardStatus::Failed(status.code())
            }
        }))
    }

    fn kill(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl WorkerSpawner for LocalProcessSpawner {
    fn spawn(&self, launch: &WorkerLaunch) -> Result<Box<dyn WorkerHandle>, String> {
        let mut command = Command::new(&launch.program);
        command.args(&launch.args).stdin(Stdio::null());
        // Worker diagnostics go to the per-shard log so they survive for
        // post-mortems; an uncreatable log silently degrades to /dev/null
        // rather than failing the shard.
        match std::fs::File::create(&launch.log_path) {
            Ok(log) => {
                let err = log.try_clone();
                command.stdout(Stdio::from(log));
                if let Ok(err) = err {
                    command.stderr(Stdio::from(err));
                }
            }
            Err(_) => {
                command.stdout(Stdio::null()).stderr(Stdio::null());
            }
        }
        match command.spawn() {
            Ok(child) => Ok(Box::new(LocalProcessHandle(child))),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of worker processes / shards.
    pub shards: usize,
    /// How jobs are partitioned.
    pub policy: ShardPolicy,
    /// Working directory for the manifest, per-shard outputs, worker logs,
    /// and the merged cache file. Created if missing.
    pub workdir: PathBuf,
    /// Wall-clock budget for the worker processes; workers still running at
    /// the deadline are killed and their missing jobs recovered in-process.
    pub timeout: Duration,
    /// How to spawn a worker.
    pub worker: WorkerSpec,
    /// Bounds applied to the merged cache before it is persisted.
    pub bounds: CacheBounds,
    /// How workers flush per-job output (passed as `--flush`/`--fsync`):
    /// append-only journals by default, whole-file rewrite as the legacy
    /// fallback. The merge path reads both formats regardless, so mixed
    /// sweeps (e.g. during a rolling change of the default) still merge.
    pub flush: FlushMode,
    /// Journal flush batching (passed as `--flush-every`): every `n`-th
    /// record append flushes; a killed worker loses at most `n - 1`
    /// buffered tail records (plus one torn record), all of which the
    /// coordinator's recovery re-runs anyway. Default 1 (flush per record).
    pub flush_every: usize,
    /// Serialization of the per-shard cache journals (passed as
    /// `--cache-format`): compact binary records or the legacy JSON lines.
    /// Only meaningful in journal flush mode. The *merged* cache this
    /// coordinator persists stays a JSON snapshot either way, so sweep
    /// outputs are bit-identical across formats (the interop guarantee).
    pub cache_format: CacheFormat,
    /// Cross-run profile journal ([`CrossRunProfile`]) to accumulate this
    /// sweep's telemetry into. Each worker appends its shard's delta to its
    /// own `shard-<i>.profile.json` in the workdir (passed as `--profile`;
    /// profile journals are single-writer), and the coordinator appends the
    /// authoritative whole-run delta — computed from the merged report, so
    /// it covers recovered jobs too — to *this* path after the merge.
    pub profile: Option<PathBuf>,
    /// Fault injection for recovery tests: `(shard, k)` passes
    /// `--fail-after k` to that shard's worker, making it exit after `k`
    /// finished jobs with partial output flushed.
    pub fail_shard_after: Option<(usize, usize)>,
    /// Live-shard work stealing (passed as `--steal`): workers that finish
    /// their own share claim pending jobs from slow siblings through
    /// CRC-framed claim journals next to the shard reports. Requires
    /// journal flush mode; see the [module docs](crate::shard) for the
    /// claim protocol and its conflict rules.
    pub steal: bool,
    /// Per-shard stall detection: a worker whose report journal shows no
    /// new heartbeat *and* no new report for this long is presumed hung and
    /// killed early ([`ShardStatus::Stalled`]) instead of holding the sweep
    /// until [`SweepConfig::timeout`]. Its unreported jobs are recovered
    /// like any other dead worker's. `None` disables stall detection.
    pub stall_timeout: Option<Duration>,
    /// Liveness heartbeat period (passed as `--heartbeat-ms`). `None` lets
    /// the coordinator choose: 250ms whenever stealing or stall detection
    /// needs the signal, off otherwise (keeping default journals
    /// byte-stable for tests that pin them).
    pub heartbeat: Option<Duration>,
    /// Fault injection for the stealing tests: `(shard, ms)` passes
    /// `--delay-ms` to that shard's worker, delaying its first claim so
    /// siblings can demonstrably steal its share.
    pub delay_shard: Option<(usize, u64)>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            shards: 2,
            policy: ShardPolicy::HashMod,
            workdir: std::env::temp_dir().join("lv-sweep"),
            timeout: Duration::from_secs(600),
            worker: WorkerSpec::new("lv-sweep"),
            bounds: CacheBounds::unbounded(),
            flush: FlushMode::default(),
            flush_every: 1,
            cache_format: CacheFormat::default(),
            profile: None,
            fail_shard_after: None,
            steal: false,
            stall_timeout: None,
            heartbeat: None,
            delay_shard: None,
        }
    }
}

/// How one shard's worker process ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// The worker process exited zero. Says nothing about coverage — a
    /// worker that exits cleanly without writing results still reads as
    /// `Completed`; compare [`ShardOutcome::reported`] against
    /// [`ShardOutcome::planned`] for that (the coordinator's recovery fills
    /// any gap either way).
    Completed,
    /// The worker exited nonzero (the payload is the exit code when the OS
    /// reported one).
    Failed(Option<i32>),
    /// The worker outlived [`SweepConfig::timeout`] and was killed.
    TimedOut,
    /// The worker showed no fresh heartbeat or report for
    /// [`SweepConfig::stall_timeout`] and was killed early as hung.
    Stalled,
    /// The worker process could not be spawned at all.
    SpawnFailed(String),
}

/// Per-shard outcome in a [`ShardedSweep`].
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// How its worker ended.
    pub status: ShardStatus,
    /// Jobs the shard planned to run.
    pub planned: usize,
    /// Of the shard's *own* share, jobs its report file actually contained.
    pub reported: usize,
    /// Jobs this shard reported from *other* shards' shares — its work
    /// stealing yield. Always zero without [`SweepConfig::steal`].
    pub stolen: usize,
    /// Liveness heartbeats the shard's report journal carried (zero unless
    /// a heartbeat period was in effect).
    pub heartbeats: u64,
}

/// The merged result of a sharded sweep.
#[derive(Debug)]
pub struct ShardedSweep {
    /// The merged batch, in job order — equal to a single-process
    /// [`run_batch`](crate::VerificationEngine::run_batch) over the same
    /// jobs and configuration (modulo wall-clock fields).
    pub report: BatchReport,
    /// The merged verdict cache (already persisted to
    /// [`ShardedSweep::cache_file`], after [`SweepConfig::bounds`]).
    pub cache: Arc<VerdictCache>,
    /// Path of the merged cache file inside the workdir.
    pub cache_file: PathBuf,
    /// Original indices of jobs that had to be re-run in-process because no
    /// healthy shard reported them. Empty on a fully healthy sweep.
    pub recovered: Vec<usize>,
    /// Entries evicted from the merged cache by [`SweepConfig::bounds`].
    pub evicted: usize,
    /// Per-shard worker outcomes.
    pub shards: Vec<ShardOutcome>,
    /// This sweep's telemetry delta, already appended to
    /// [`SweepConfig::profile`] when one was configured. `None` when the
    /// sweep ran without a profile.
    pub profile_delta: Option<CrossRunProfile>,
}

enum Worker {
    Running(Box<dyn WorkerHandle>),
    SpawnFailed(String),
    Done(ShardStatus),
}

/// What the supervision loop last saw in a shard's report journal, for
/// stall detection: the observable progress tuple plus when it last moved.
struct StallWatch {
    last: ShardProgress,
    moved: Instant,
}

/// Runs `jobs` as a multi-process sweep under `config` (whose `cache` and
/// `adaptive` fields are ignored — see [`SweepManifest`]) and merges the
/// results, spawning workers as local child processes. See the
/// [module docs](crate::shard) for the full contract.
pub fn run_sharded_sweep(
    jobs: &[Job],
    config: &EngineConfig,
    sweep: &SweepConfig,
) -> Result<ShardedSweep, ShardError> {
    run_sharded_sweep_with(jobs, config, sweep, &LocalProcessSpawner)
}

/// [`run_sharded_sweep`] with an explicit [`WorkerSpawner`] backend.
pub fn run_sharded_sweep_with(
    jobs: &[Job],
    config: &EngineConfig,
    sweep: &SweepConfig,
    spawner: &dyn WorkerSpawner,
) -> Result<ShardedSweep, ShardError> {
    let manifest = SweepManifest::new(config, jobs, sweep.shards, sweep.policy);
    run_manifest_sweep(jobs, &manifest, sweep, spawner)
}

/// Runs a *generated* sharded sweep: the manifest carries only the spec's
/// kernels plus `(k, seed)`, and every shard materializes — and verifies,
/// overlapped — its own share. The coordinator materializes the same grid
/// deterministically for its recovery and merge paths, so the merged
/// result equals a single-process run over [`GenerationSpec`]'s jobs (the
/// same grid the in-process overlapped driver
/// [`crate::passk::overlapped_pass_at_k`] verifies).
pub fn run_generated_sweep(
    spec: GenerationSpec,
    config: &EngineConfig,
    sweep: &SweepConfig,
) -> Result<ShardedSweep, ShardError> {
    run_generated_sweep_with(spec, config, sweep, &LocalProcessSpawner)
}

/// [`run_generated_sweep`] with an explicit [`WorkerSpawner`] backend.
pub fn run_generated_sweep_with(
    spec: GenerationSpec,
    config: &EngineConfig,
    sweep: &SweepConfig,
    spawner: &dyn WorkerSpawner,
) -> Result<ShardedSweep, ShardError> {
    let manifest = SweepManifest::from_generation(config, spec, sweep.shards, sweep.policy);
    let jobs = manifest.materialize_jobs();
    run_manifest_sweep(&jobs, &manifest, sweep, spawner)
}

/// The shared coordinator loop: writes the manifest, spawns and supervises
/// the workers, recovers, and merges. `jobs` is the full materialized job
/// list in batch order — `manifest.jobs` for an explicit manifest, the
/// deterministically generated grid for a generation manifest.
fn run_manifest_sweep(
    jobs: &[Job],
    manifest: &SweepManifest,
    sweep: &SweepConfig,
    spawner: &dyn WorkerSpawner,
) -> Result<ShardedSweep, ShardError> {
    let start = Instant::now();
    std::fs::create_dir_all(&sweep.workdir)?;
    let manifest_path = sweep.workdir.join("manifest.json");
    manifest.write(&manifest_path)?;
    let plan = manifest.plan();
    let fingerprint = manifest.fingerprint();

    // A reused workdir may hold outputs from a *previous* sweep; a stale
    // report whose fingerprint happens to match (the fingerprint covers the
    // configuration, not the job list) must not be mistaken for this sweep's
    // results, so every per-shard output is removed before any worker runs.
    for shard in 0..manifest.shards {
        let _ = std::fs::remove_file(cache_path(&sweep.workdir, shard));
        let _ = std::fs::remove_file(report_path(&sweep.workdir, shard));
        let _ = std::fs::remove_file(profile_path(&sweep.workdir, shard));
        let _ = std::fs::remove_file(claims_path(&sweep.workdir, shard));
    }

    // Stealing and stall detection both key on the liveness heartbeat; when
    // the caller did not pick a period, turn it on at 250ms exactly when one
    // of them needs it (and leave journals byte-stable otherwise).
    let heartbeat = sweep.heartbeat.or_else(|| {
        (sweep.steal || sweep.stall_timeout.is_some()).then(|| Duration::from_millis(250))
    });

    // Assemble one launch per shard and hand them to the spawner backend.
    let mut workers: Vec<Worker> = (0..manifest.shards)
        .map(|shard| {
            let mut args = sweep.worker.args.clone();
            args.push("--shard".into());
            args.push(format!("{}/{}", shard, manifest.shards));
            args.push("--manifest".into());
            args.push(manifest_path.display().to_string());
            args.push("--out".into());
            args.push(sweep.workdir.display().to_string());
            args.push("--flush".into());
            args.push(sweep.flush.tag().into());
            args.push("--schedule".into());
            args.push(manifest.schedule.spec());
            if let FlushMode::Journal(fsync) = sweep.flush {
                args.push("--fsync".into());
                args.push(fsync.tag().into());
            }
            if sweep.flush_every > 1 {
                args.push("--flush-every".into());
                args.push(sweep.flush_every.to_string());
            }
            if sweep.cache_format != CacheFormat::default() {
                args.push("--cache-format".into());
                args.push(sweep.cache_format.tag().into());
            }
            if sweep.profile.is_some() {
                args.push("--profile".into());
                args.push(profile_path(&sweep.workdir, shard).display().to_string());
            }
            if let Some(period) = heartbeat {
                args.push("--heartbeat-ms".into());
                args.push(period.as_millis().max(1).to_string());
            }
            if sweep.steal {
                args.push("--steal".into());
            }
            if let Some((delay_shard, ms)) = sweep.delay_shard {
                if delay_shard == shard {
                    args.push("--delay-ms".into());
                    args.push(ms.to_string());
                }
            }
            if let Some((fail_shard, after)) = sweep.fail_shard_after {
                if fail_shard == shard {
                    args.push("--fail-after".into());
                    args.push(after.to_string());
                }
            }
            let launch = WorkerLaunch {
                program: sweep.worker.program.clone(),
                args,
                log_path: sweep.workdir.join(format!("shard-{}.log", shard)),
            };
            match spawner.spawn(&launch) {
                Ok(handle) => Worker::Running(handle),
                Err(e) => Worker::SpawnFailed(e),
            }
        })
        .collect();

    // Supervise: poll until every worker exits or the deadline passes. With
    // a stall timeout, each running worker's report journal is also watched
    // — reports and heartbeats both count as progress, so a hung-but-alive
    // worker (heartbeats ticking, no reports) is *not* killed early, while a
    // truly wedged one is killed as Stalled well before the hard deadline.
    let deadline = Instant::now() + sweep.timeout;
    let mut watches: Vec<StallWatch> = (0..manifest.shards)
        .map(|_| StallWatch {
            last: ShardProgress::default(),
            moved: Instant::now(),
        })
        .collect();
    loop {
        let mut running = false;
        for (shard, worker) in workers.iter_mut().enumerate() {
            if let Worker::Running(handle) = worker {
                match handle.try_wait()? {
                    Some(status) => *worker = Worker::Done(status),
                    None => {
                        running = true;
                        if let Some(stall) = sweep.stall_timeout {
                            let seen =
                                read_progress(&report_path(&sweep.workdir, shard), fingerprint)
                                    .unwrap_or_default();
                            let watch = &mut watches[shard];
                            if seen != watch.last {
                                watch.last = seen;
                                watch.moved = Instant::now();
                            } else if watch.moved.elapsed() >= stall {
                                handle.kill();
                                *worker = Worker::Done(ShardStatus::Stalled);
                            }
                        }
                    }
                }
            }
        }
        if !running {
            break;
        }
        if Instant::now() >= deadline {
            for worker in &mut workers {
                if let Worker::Running(handle) = worker {
                    handle.kill();
                    *worker = Worker::Done(ShardStatus::TimedOut);
                }
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Collect shard reports. A missing/corrupt report, one produced under a
    // different configuration fingerprint, or an entry that does not match
    // this sweep's job list (an out-of-range index or a drifted label)
    // contributes nothing — its jobs fall into the recovery set. An entry
    // for *another* shard's job is a steal: verification determinism makes
    // a doubly-claimed job's two reports identical, so first report wins.
    let mut entries: BTreeMap<usize, JobReport> = BTreeMap::new();
    let mut outcomes = Vec::with_capacity(manifest.shards);
    for (shard, worker) in workers.into_iter().enumerate() {
        let status = match worker {
            Worker::Done(status) => status,
            Worker::SpawnFailed(e) => ShardStatus::SpawnFailed(e),
            Worker::Running(_) => unreachable!("supervision loop drains every worker"),
        };
        let mut reported = 0;
        let mut stolen = 0;
        if let Ok(report) = ShardReportFile::load(report_path(&sweep.workdir, shard)) {
            if report.fingerprint == fingerprint {
                for (index, job_report) in report.entries {
                    let valid = jobs
                        .get(index)
                        .is_some_and(|job| job.label == job_report.label);
                    if valid {
                        if plan.shard_of(index) == shard {
                            reported += 1;
                        } else {
                            stolen += 1;
                        }
                        entries.entry(index).or_insert(job_report);
                    }
                }
            }
        }
        let heartbeats = read_progress(&report_path(&sweep.workdir, shard), fingerprint)
            .map_or(0, |progress| progress.heartbeats);
        outcomes.push(ShardOutcome {
            shard,
            status,
            planned: plan.indices_of(shard).len(),
            reported,
            stolen,
            heartbeats,
        });
    }

    // Recovery: re-run everything no shard reported, in-process, under the
    // identical configuration. Determinism makes the re-run verdicts equal
    // the ones the dead workers would have produced.
    let missing: Vec<usize> = (0..jobs.len())
        .filter(|i| !entries.contains_key(i))
        .collect();
    let recovery_cache = Arc::new(VerdictCache::in_memory());
    if !missing.is_empty() {
        let engine =
            VerificationEngine::new(manifest.engine_config().with_cache(recovery_cache.clone()));
        let recovery_jobs: Vec<Job> = missing.iter().map(|&i| jobs[i].clone()).collect();
        let recovered = engine.run_batch(&recovery_jobs);
        for (&index, report) in missing.iter().zip(recovered.jobs) {
            entries.insert(index, report);
        }
    }

    // Merge the shard caches (conflicts are typed errors, never
    // last-write-wins), add the recovery run's verdicts, bound, persist. An
    // *unreadable* shard cache is treated like a missing one — the verdicts
    // are re-derivable from the collected reports below, so a torn cache
    // file must not discard the healthy shards' work — but a readable cache
    // that *disagrees* still aborts.
    let cache_file = sweep.workdir.join("merged.cache.json");
    let _ = std::fs::remove_file(&cache_file);
    let merged = VerdictCache::open(&cache_file)?;
    for shard in 0..manifest.shards {
        if let Ok(shard_cache) = VerdictCache::open(cache_path(&sweep.workdir, shard)) {
            merged.merge_from(&shard_cache)?;
        }
    }
    merged.merge_from(&recovery_cache)?;
    // Every collected verdict is also inserted under its content key, so the
    // merged cache is complete even when a shard's cache file was lost (its
    // report survived an earlier flush, say) — and so a shard cache that
    // contradicts a shard *report* is caught as a conflict too.
    let from_reports = VerdictCache::in_memory();
    for (&index, job_report) in &entries {
        from_reports.insert(
            job_cache_key(&jobs[index], fingerprint),
            CachedVerdict {
                verdict: job_report.verdict,
                stage: job_report.stage,
                detail: job_report.detail.clone(),
                checksum: job_report.checksum,
            },
        );
    }
    merged.merge_from(&from_reports)?;
    let evicted = merged.compact(&sweep.bounds);
    merged.persist()?;

    let reports: Vec<JobReport> = entries.into_values().collect();
    debug_assert_eq!(reports.len(), jobs.len());
    let cache_hits = reports.iter().filter(|r| r.cache_hit).count();
    let report = BatchReport {
        cache_misses: reports.len() - cache_hits,
        cache_hits,
        threads: manifest.shards,
        wall: start.elapsed(),
        jobs: reports,
    };

    // Commit the run's telemetry to the cross-run profile. The delta is
    // computed from the *merged* report — it covers recovered jobs, which no
    // shard's own `--profile` output saw — and appended once, by the only
    // process that outlives every worker.
    let profile_delta = match &sweep.profile {
        None => None,
        Some(path) => {
            let delta = CrossRunProfile::from_batch(jobs, &report.jobs);
            let fsync = match sweep.flush {
                FlushMode::Journal(fsync) => fsync,
                FlushMode::Rewrite => FsyncPolicy::default(),
            };
            // The profile is advisory — it tunes future stage orders and
            // budgets, never verdicts — so an unwritable journal must not
            // fail a sweep whose verification and merge already succeeded.
            if let Err(e) = delta.append_to(path, fsync) {
                eprintln!(
                    "warning: could not append run telemetry to {}: {}",
                    path.display(),
                    e
                );
            }
            Some(delta)
        }
    };

    Ok(ShardedSweep {
        report,
        cache: Arc::new(merged),
        cache_file,
        recovered: missing,
        evicted,
        shards: outcomes,
        profile_delta,
    })
}
