//! Deterministic partitioning of a job list into shards.
//!
//! A [`ShardPlan`] assigns every job of a batch to exactly one of `N`
//! shards. The assignment is a pure function of the job *contents* (and,
//! for the contiguous policy, their positions), so a coordinator and its
//! worker processes — or two coordinators on different hosts — always
//! compute the same plan from the same manifest. Both policies are
//! verdict-order preserving: shards remember the original job indices and
//! the merge step places every result back at its index, so the merged
//! report is in job order no matter which shard ran which job.

use crate::engine::Job;
use lv_cir::hash::{structural_hash, structural_hash_in_env, Fnv64};

/// How jobs are distributed over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Shard `job_key(job) % shards`. Spreads work independent of job order
    /// — appending jobs to the list never moves existing jobs between
    /// shards, which keeps per-shard caches warm across growing sweeps.
    HashMod,
    /// Contiguous index ranges of (up to) `ceil(jobs / shards)` jobs each.
    /// Preserves whatever locality the job list has (e.g. all candidates of
    /// one kernel stay on one shard), at the cost of re-partitioning when
    /// the list grows.
    Contiguous,
}

impl ShardPolicy {
    /// Stable tag used in the manifest exchange format.
    pub fn tag(self) -> &'static str {
        match self {
            ShardPolicy::HashMod => "hash-mod",
            ShardPolicy::Contiguous => "contiguous",
        }
    }

    /// Parses a manifest tag.
    pub fn from_tag(tag: &str) -> Result<ShardPolicy, String> {
        match tag {
            "hash-mod" => Ok(ShardPolicy::HashMod),
            "contiguous" => Ok(ShardPolicy::Contiguous),
            other => Err(format!("unknown shard policy tag `{}`", other)),
        }
    }
}

/// The stable key of one job: a content hash of the scalar, the candidate
/// (in the scalar's parameter-name environment, like the verdict-cache key),
/// and the label.
///
/// Alpha-renaming a kernel's locals does not move it between shards (the
/// structural hashes are rename-insensitive); any semantic edit, or a label
/// change, may.
pub fn job_key(job: &Job) -> u64 {
    let mut fnv = Fnv64::new();
    fnv.write_u64(structural_hash(&job.scalar));
    fnv.write_u64(structural_hash_in_env(
        &job.candidate,
        job.scalar.params.iter().map(|p| p.name.as_str()),
    ));
    fnv.write_str(&job.label);
    fnv.finish()
}

/// A deterministic assignment of every job in a batch to exactly one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    policy: ShardPolicy,
    /// `assignment[job_index] == shard`.
    assignment: Vec<usize>,
}

impl ShardPlan {
    /// Plans `jobs` over `shards` shards (clamped to at least 1) under
    /// `policy`.
    pub fn new(jobs: &[Job], shards: usize, policy: ShardPolicy) -> ShardPlan {
        let keys: Vec<u64> = jobs.iter().map(job_key).collect();
        ShardPlan::from_job_keys(&keys, shards, policy)
    }

    /// Plans jobs identified only by their stable keys — the form a
    /// generation-spec manifest uses, whose candidates do not exist yet
    /// when the plan is derived (the key there covers the scalar and the
    /// generated job's label; see
    /// [`GenerationSpec`](crate::shard::GenerationSpec)). Assignment is a
    /// pure function of the keys, so every participant that derives the
    /// same keys derives the same plan.
    pub fn from_job_keys(keys: &[u64], shards: usize, policy: ShardPolicy) -> ShardPlan {
        let shards = shards.max(1);
        let assignment = match policy {
            ShardPolicy::HashMod => keys
                .iter()
                .map(|key| (key % shards as u64) as usize)
                .collect(),
            ShardPolicy::Contiguous => {
                let chunk = keys.len().div_ceil(shards).max(1);
                (0..keys.len()).map(|index| index / chunk).collect()
            }
        };
        ShardPlan {
            shards,
            policy,
            assignment,
        }
    }

    /// The shard count the plan was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The policy the plan was built under.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Number of jobs planned.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when the plan covers no jobs.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The shard that owns job `index`.
    pub fn shard_of(&self, index: usize) -> usize {
        self.assignment[index]
    }

    /// The original job indices owned by `shard`, in ascending order.
    pub fn indices_of(&self, shard: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(index, &s)| (s == shard).then_some(index))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                let src = format!(
                    "void k{}(int n, int *a, int *b) {{ for (int i = 0; i < n; i++) {{ a[i] = b[i] + {}; }} }}",
                    i, i
                );
                let f = parse_function(&src).unwrap();
                Job::new(format!("k{}", i), f.clone(), f)
            })
            .collect()
    }

    #[test]
    fn every_job_lands_in_exactly_one_shard() {
        let jobs = jobs(23);
        for policy in [ShardPolicy::HashMod, ShardPolicy::Contiguous] {
            for shards in [1, 2, 3, 7, 23, 40] {
                let plan = ShardPlan::new(&jobs, shards, policy);
                let mut seen = vec![0usize; jobs.len()];
                for shard in 0..shards {
                    for index in plan.indices_of(shard) {
                        assert_eq!(plan.shard_of(index), shard);
                        seen[index] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&count| count == 1),
                    "{:?}/{}: {:?}",
                    policy,
                    shards,
                    seen
                );
            }
        }
    }

    #[test]
    fn plans_are_stable_across_runs_and_zero_shards_is_clamped() {
        let jobs = jobs(9);
        let a = ShardPlan::new(&jobs, 4, ShardPolicy::HashMod);
        let b = ShardPlan::new(&jobs, 4, ShardPolicy::HashMod);
        assert_eq!(a, b);
        let clamped = ShardPlan::new(&jobs, 0, ShardPolicy::Contiguous);
        assert_eq!(clamped.shards(), 1);
        assert_eq!(clamped.indices_of(0).len(), 9);
    }

    #[test]
    fn hash_mod_assignment_ignores_list_position() {
        let mut jobs = jobs(8);
        let plan = ShardPlan::new(&jobs, 3, ShardPolicy::HashMod);
        let shard_of_last = plan.shard_of(7);
        let moved = jobs.remove(7);
        jobs.insert(0, moved);
        let replanned = ShardPlan::new(&jobs, 3, ShardPolicy::HashMod);
        assert_eq!(replanned.shard_of(0), shard_of_last);
    }

    #[test]
    fn contiguous_ranges_are_contiguous() {
        let jobs = jobs(10);
        let plan = ShardPlan::new(&jobs, 3, ShardPolicy::Contiguous);
        assert_eq!(plan.indices_of(0), vec![0, 1, 2, 3]);
        assert_eq!(plan.indices_of(1), vec![4, 5, 6, 7]);
        assert_eq!(plan.indices_of(2), vec![8, 9]);
    }
}
