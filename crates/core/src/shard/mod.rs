//! Sharded multi-process sweeps with cache-file exchange and merge.
//!
//! The paper's experiments are embarrassingly parallel sweeps over
//! `(kernel × candidate)` pairs; the [`engine`](crate::engine) already fans a
//! batch over in-process worker threads, and the content-addressed
//! [`VerdictCache`](crate::VerdictCache) makes verdicts bit-identical under
//! replay. This module scales the same batch *across processes* (and, with a
//! shared filesystem, across hosts): a coordinator partitions the job list
//! into shards, worker processes each run one shard through the unchanged
//! [`run_batch_observed`](crate::VerificationEngine::run_batch_observed)
//! path, and the per-shard verdict-cache files are merged — with conflict
//! detection — into a single cache and a single
//! [`BatchReport`](crate::BatchReport) equal to the single-process run.
//!
//! * [`plan`] — the deterministic [`ShardPlan`]: partitions jobs into `N`
//!   shards by stable content-derived job key, under a hash-mod or a
//!   contiguous-range [`ShardPolicy`]. Both policies are verdict-order
//!   preserving: shard results are merged back by original job index, so the
//!   merged report is always in job order regardless of which shard ran
//!   which job.
//! * [`exchange`] — the on-disk exchange formats (see below).
//! * [`runner`] — the worker side: loads the manifest, selects its shard,
//!   runs it on the engine, and incrementally flushes a per-shard cache
//!   file + shard report so a killed worker leaves usable partial output.
//!   [`run_worker_from_args`] is the drop-in `--shard i/N` entry point for
//!   self-executing binaries (the `lv-sweep` CLI and the `shard_sweep`
//!   example both use it).
//! * [`coordinator`] — spawns one worker per shard through a pluggable
//!   [`WorkerSpawner`] backend ([`LocalProcessSpawner`] forks local child
//!   processes; a remote-exec backend only has to implement the same
//!   two-method seam), supervises them (wall-clock timeout, stall
//!   detection, nonzero-exit and spawn-failure detection), recovers
//!   missing results, and merges shard outputs.
//!
//! # Exchange formats
//!
//! All exchange data is JSON in the `serde` shim's [`json`](serde::json)
//! model, streamed through its `Emitter`. `u64` values (hashes, conflict
//! counts, microsecond wall times) are 16-digit lower-case hex strings,
//! exactly like the [verdict cache format](crate::cache). Whole-file
//! *snapshot* documents are written atomically (temp file + rename) so
//! readers never observe torn writes; the per-job outputs default to
//! **append-only journals** ([`crate::journal`]) instead — one
//! checksum-framed record per line, appended through a buffered handle held
//! open for the shard's lifetime, so a flush costs O(record) rather than a
//! whole-file rewrite and a kill can only tear the final record (which
//! readers detect by checksum and truncate). The
//! [`FlushMode`] selects between the two; every reader sniffs the leading
//! `{"journal":` marker and accepts either, and each journal kind reuses
//! its snapshot format's version constant in its header record, so a
//! format bump invalidates both representations together.
//!
//! **Manifest** (`manifest.json`, coordinator → workers, always a
//! snapshot): the full job list (functions as printed C source —
//! [`lv_cir::printer`] round-trips to a structurally equal AST, so content
//! hashes and verdicts are unaffected), the shard count and policy, the
//! engine configuration (cascade, checksum harness, solver budgets,
//! threads), and the configuration's
//! [`semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint).
//! Workers recompute the fingerprint from the parsed configuration and
//! refuse to run on a mismatch, so a coordinator and a worker from
//! semantically different builds can never silently mix verdicts.
//!
//! **Per-shard verdict cache** (`shard-<i>.cache.json`, workers →
//! coordinator): a standard [`VerdictCache`](crate::VerdictCache) file — the
//! natural exchange format for verdicts, since entries are content-addressed
//! and therefore mergeable by key. In journal mode the worker's cache
//! appends one record per fresh verdict at insert time
//! ([`VerdictCache::open_journal`](crate::VerdictCache::open_journal)). The
//! coordinator merges all shard caches (plus any recovery run's entries)
//! with [`VerdictCache::merge_from`](crate::VerdictCache::merge_from): a
//! same-key-different-verdict clash is a typed [`CacheMergeError`], never
//! last-write-wins.
//!
//! **Shard report** (`shard-<i>.report.json`, workers → coordinator): one
//! entry per finished job — original job index, label, verdict, stage,
//! detail, checksum class, cache-hit flag, and the per-stage traces — i.e.
//! everything a [`JobReport`](crate::JobReport) carries, so the merged
//! [`BatchReport`](crate::BatchReport) has full telemetry and its
//! [`funnel`](crate::BatchReport::funnel) works across process boundaries.
//! In journal mode ([`ShardReportJournal`]) the shard metadata rides in the
//! journal header and each finished job is one appended record.
//!
//! **Cross-run profile** (`shard-<i>.profile.json`, one per worker, plus
//! the sweep-level journal named by
//! [`SweepConfig::profile`](crate::shard::SweepConfig::profile)): the
//! [`CrossRunProfile`](crate::profile::CrossRunProfile) journals feeding
//! telemetry-driven stage scheduling. Profile journals are single-writer,
//! so each worker appends its shard's delta to its own file (`--profile`),
//! and the coordinator — the only process that sees recovered jobs —
//! appends the authoritative whole-run delta to the sweep-level journal
//! after the merge. The manifest additionally carries the sweep's
//! [`StageSchedule`](crate::engine::StageSchedule) (its per-category
//! overrides are part of the configuration fingerprint), and the
//! coordinator passes `--schedule <spec>` so a worker pointed at a stale
//! manifest fails fast instead of running the wrong cascade order.
//!
//! Flush batching (`--flush-every N`,
//! [`ShardRunOptions::flush_every`](crate::shard::ShardRunOptions::flush_every))
//! buffers N journal record appends per syscall flush: a killed worker then
//! loses up to N−1 *whole* buffered tail records (plus at most one torn
//! record from a partial write) instead of at most one — still a clean
//! suffix, so replay, recovery, and merge semantics are unchanged.
//!
//! # Compaction
//!
//! A journal replays to exactly the entries it holds, so it never *needs*
//! compaction for correctness — but
//! [`VerdictCache::compact_journal`](crate::VerdictCache::compact_journal)
//! rewrites a journal-mode cache into the deterministic sorted snapshot
//! (and `fsync`s it, the durability point of the default
//! [`FsyncPolicy::OnCompact`](crate::journal::FsyncPolicy) policy),
//! byte-identical to a snapshot-mode persist of the same contents. The
//! coordinator's merged cache is itself written as a snapshot, which is why
//! a journal-mode sweep still produces a merged cache file byte-identical
//! to the single-process run (CI pins this, kill-recovery included).
//!
//! # Liveness heartbeats
//!
//! With a heartbeat period in effect (`--heartbeat-ms`,
//! [`SweepConfig::heartbeat`], or implied by stealing / stall detection), a
//! journal-mode worker appends a heartbeat record —
//! `{"heartbeat": <seq>, "finished": <n>}` — to its *report journal* on a
//! background ticker, each one flushed immediately. Heartbeats are liveness
//! telemetry, not job results: report replay filters them out, so the
//! merged report is unchanged. They give the coordinator (and thieves) the
//! distinction the exit code can't: a worker with ticking heartbeats but no
//! new reports is **hung-but-alive inside a long stage** (or deliberately
//! delayed) — [`read_progress`] surfaces the `(reported, heartbeats)`
//! tuple, stall detection ([`SweepConfig::stall_timeout`]) only kills a
//! worker whose tuple stopped moving entirely, and the heartbeat flush also
//! commits any records buffered by `--flush-every`, shrinking the
//! kill-loss window.
//!
//! # Work stealing
//!
//! With [`SweepConfig::steal`] (worker flag `--steal`, journal mode only),
//! a worker that exhausts its own share turns thief: it scans the sibling
//! report journals for the *stalest* victim (fewest committed reports,
//! then fewest heartbeats) with pending jobs and claims a worker-pool-sized
//! chunk of them. Claims go through per-shard, single-writer **claim
//! journals** (`shard-<i>.claims.json`, [`ClaimsJournal`], header kind
//! `shard-claims`): one CRC-framed `{"index": n}` record per claimed job,
//! flushed per append, written *before* the job runs. Claims are
//! advisory, not locks — the conflict rules are:
//!
//! * A claim race (two shards claim the same job between each other's
//!   scans) is benign: verification is deterministic, so both produce the
//!   identical verdict; the coordinator takes the first report per index
//!   and the cache merge only rejects *disagreeing* duplicates.
//! * Workers skip jobs claimed by a sibling ([`read_claims`]) — including
//!   their *own* share's, so a delayed owner does not re-run what a thief
//!   already took — and re-scan between chunks.
//! * A job claimed but never reported (the thief died) is no one's
//!   responsibility: the coordinator's recovery re-runs every unreported
//!   index regardless of claims, so claims can only deduplicate work,
//!   never lose it.
//! * Stealing refuses to combine with incremental SMT reuse
//!   ([`EngineReuse::incremental`](crate::EngineReuse)): a reused
//!   conclusion's stage/detail depend on same-process query history, so a
//!   claim race could produce *differing* cache entries for one key — the
//!   exact conflict the merge must keep treating as corruption.
//!
//! Stolen reports are appended to the thief's own report journal under the
//! jobs' original indices; [`ShardOutcome::stolen`] counts them.
//!
//! # Recovery semantics
//!
//! Workers flush their cache file and report after every finished job —
//! a whole-file rewrite in [`FlushMode::Rewrite`], a single appended record
//! in [`FlushMode::Journal`] — so the failure unit is one *job*, not one
//! shard, in either mode. The coordinator collects whatever entries each
//! shard managed to write — a worker that was killed mid-sweep (possibly
//! tearing its final journal record, which replay truncates), exited
//! nonzero, timed out (the coordinator kills it), failed to spawn, or wrote
//! a report with a mismatched fingerprint contributes its completed prefix
//! (or nothing) — and then re-runs exactly the missing job indices
//! in-process through the same engine configuration. Because verification
//! is deterministic, re-run verdicts equal the ones the dead worker would
//! have produced, so the merged report and cache file are bit-identical to
//! a fully healthy run (and to a single-process run). Recovery strictly
//! adds the missing keys; the conflict check still guards against corrupt
//! partial files.
//!
//! # Example
//!
//! A self-executing 2-shard sweep (the binary re-invokes itself in worker
//! mode; see `examples/shard_sweep.rs` for the full version CI pins):
//!
//! ```no_run
//! use lv_core::shard::{run_worker_from_args, ShardPolicy, SweepConfig, WorkerSpec};
//! use lv_core::{EngineConfig, Job, PipelineConfig};
//!
//! let args: Vec<String> = std::env::args().skip(1).collect();
//! if let Some(result) = run_worker_from_args(&args) {
//!     result.expect("shard worker failed");
//!     return; // this process was a worker; the coordinator merges
//! }
//! let jobs: Vec<Job> = Vec::new(); // build the sweep's job list
//! let sweep = SweepConfig {
//!     shards: 2,
//!     policy: ShardPolicy::HashMod,
//!     workdir: std::env::temp_dir().join("sweep"),
//!     worker: WorkerSpec::current_exe().unwrap(),
//!     ..SweepConfig::default()
//! };
//! let swept = lv_core::shard::run_sharded_sweep(
//!     &jobs,
//!     &EngineConfig::full(PipelineConfig::default()),
//!     &sweep,
//! )
//! .unwrap();
//! println!("merged {} verdicts, {} recovered in-process",
//!          swept.report.jobs.len(), swept.recovered.len());
//! ```

pub mod coordinator;
pub mod exchange;
pub mod plan;
pub mod runner;

pub use coordinator::{
    run_generated_sweep, run_generated_sweep_with, run_sharded_sweep, run_sharded_sweep_with,
    LocalProcessSpawner, ShardOutcome, ShardStatus, ShardedSweep, SweepConfig, WorkerHandle,
    WorkerLaunch, WorkerSpawner, WorkerSpec,
};
pub use exchange::{
    read_claims, read_progress, ClaimsJournal, GenerationSpec, ShardProgress, ShardReportFile,
    ShardReportJournal, SweepManifest,
};
pub use plan::{job_key, ShardPlan, ShardPolicy};
pub use runner::{
    run_shard, run_shard_with, run_worker_from_args, FlushMode, ShardRunOptions, ShardRunOutput,
    WorkerInvocation,
};

use crate::cache::CacheMergeError;
use std::fmt;
use std::io;

/// Everything that can go wrong in the shard subsystem.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem or process-spawn failure.
    Io(io::Error),
    /// A manifest or shard report file failed to parse.
    Format(String),
    /// A manifest's recorded configuration fingerprint does not match the
    /// fingerprint recomputed from its parsed configuration — the writer and
    /// the reader are semantically different builds.
    FingerprintMismatch {
        /// Fingerprint recorded in the file.
        recorded: u64,
        /// Fingerprint recomputed by this build.
        computed: u64,
    },
    /// Two shard caches (or a shard cache and the recovery run) disagree on
    /// a key.
    MergeConflict(CacheMergeError),
    /// A worker invocation's command line is malformed (`--shard i/N` with
    /// `i >= N`, a missing `--manifest`, …).
    BadInvocation(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard I/O error: {}", e),
            ShardError::Format(e) => write!(f, "malformed shard exchange file: {}", e),
            ShardError::FingerprintMismatch { recorded, computed } => write!(
                f,
                "configuration fingerprint mismatch: file records {:016x}, this build \
                 computes {:016x} (coordinator and worker are different builds?)",
                recorded, computed
            ),
            ShardError::MergeConflict(e) => write!(f, "{}", e),
            ShardError::BadInvocation(e) => write!(f, "bad worker invocation: {}", e),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            ShardError::MergeConflict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> ShardError {
        ShardError::Io(e)
    }
}

impl From<CacheMergeError> for ShardError {
    fn from(e: CacheMergeError) -> ShardError {
        ShardError::MergeConflict(e)
    }
}
