//! The worker side of a sharded sweep.
//!
//! A shard worker loads the [`SweepManifest`], derives the same
//! [`ShardPlan`](crate::shard::ShardPlan) as the coordinator, and runs its
//! shard's jobs through the unchanged
//! [`run_batch_observed`](crate::VerificationEngine::run_batch_observed)
//! path with a per-shard file-backed [`VerdictCache`]. After *every*
//! finished job the worker flushes both its cache file and its shard report
//! atomically, so a worker killed mid-sweep leaves valid partial output and
//! the coordinator only has to re-run the jobs that are actually missing
//! (see the [module docs](crate::shard) for the recovery contract).
//!
//! Each flush rewrites the full report and cache file, so a shard's total
//! flush I/O grows quadratically with its job count — at verification
//! speeds (each job runs checksum trials and usually SMT) that is noise for
//! the sweep sizes the suite reaches today, but million-candidate shards
//! will want an append-only journal or a flush-every-N policy; the ROADMAP
//! tracks that as part of the scale-out item, and the recovery contract
//! only requires *a* bounded loss window, not a one-job one.

use crate::cache::VerdictCache;
use crate::engine::{Job, JobReport, VerificationEngine};
use crate::observer::BatchObserver;
use crate::shard::exchange::{ShardReportFile, SweepManifest};
use crate::shard::ShardError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Where a shard worker writes its outputs inside the sweep's working
/// directory.
pub(crate) fn cache_path(out_dir: &Path, shard: usize) -> PathBuf {
    out_dir.join(format!("shard-{}.cache.json", shard))
}

/// See [`cache_path`].
pub(crate) fn report_path(out_dir: &Path, shard: usize) -> PathBuf {
    out_dir.join(format!("shard-{}.report.json", shard))
}

/// What [`run_shard`] produced.
#[derive(Debug)]
pub struct ShardRunOutput {
    /// The shard that ran.
    pub shard: usize,
    /// Jobs the shard finished (== its share of the plan on a healthy run).
    pub finished: usize,
    /// The per-shard verdict-cache file.
    pub cache_file: PathBuf,
    /// The shard report file.
    pub report_file: PathBuf,
}

/// Streams finished jobs into the shard's report + cache files, flushing
/// after every job so partial output survives a kill. Optionally aborts the
/// process after `fail_after` jobs — the fault-injection hook the recovery
/// tests and the CI example use to simulate a worker dying mid-sweep.
struct ShardFlushObserver {
    /// Local batch index → original job index.
    indices: Vec<usize>,
    shard: usize,
    shards: usize,
    fingerprint: u64,
    cache: Arc<VerdictCache>,
    report_file: PathBuf,
    entries: Mutex<Vec<(usize, JobReport)>>,
    finished: AtomicUsize,
    fail_after: Option<usize>,
}

impl ShardFlushObserver {
    fn flush(&self) {
        // The entries lock is held across the file writes: `job_finished`
        // fires concurrently from engine worker threads, and the atomic
        // write-then-rename in the exchange layer uses one fixed temp path
        // per file — two unserialized flushes could interleave on it and
        // leave a torn final file, which is exactly what the flush protocol
        // exists to prevent.
        let entries = self.entries.lock().unwrap();
        let report = ShardReportFile {
            shard: self.shard,
            shards: self.shards,
            fingerprint: self.fingerprint,
            entries: entries.clone(),
        };
        // Flushes are best-effort: an unwritable report surfaces later as
        // missing output, which the coordinator recovers from anyway.
        let _ = report.write(&self.report_file);
        let _ = self.cache.persist();
    }
}

impl BatchObserver for ShardFlushObserver {
    fn job_finished(&self, index: usize, report: &JobReport) {
        self.entries
            .lock()
            .unwrap()
            .push((self.indices[index], report.clone()));
        self.flush();
        let finished = self.finished.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_after.is_some_and(|limit| finished >= limit) {
            // Simulated crash: die without unwinding, exactly like a kill
            // signal would, leaving the flushed prefix behind.
            std::process::exit(3);
        }
    }
}

/// Runs shard `shard` of `manifest`, writing `shard-<i>.cache.json` and
/// `shard-<i>.report.json` into `out_dir`.
///
/// `fail_after` is the fault-injection hook: `Some(k)` makes the process
/// exit with code 3 after `k` finished jobs (partial output already
/// flushed), which is how tests and the CI example simulate a worker killed
/// mid-sweep.
pub fn run_shard(
    manifest: &SweepManifest,
    shard: usize,
    out_dir: &Path,
    fail_after: Option<usize>,
) -> Result<ShardRunOutput, ShardError> {
    if shard >= manifest.shards {
        return Err(ShardError::BadInvocation(format!(
            "shard index {} out of range for {} shards",
            shard, manifest.shards
        )));
    }
    std::fs::create_dir_all(out_dir)?;
    let plan = manifest.plan();
    let indices = plan.indices_of(shard);
    let jobs: Vec<Job> = indices.iter().map(|&i| manifest.jobs[i].clone()).collect();

    let cache_file = cache_path(out_dir, shard);
    let report_file = report_path(out_dir, shard);
    let cache = Arc::new(VerdictCache::open(&cache_file)?);
    let engine = VerificationEngine::new(manifest.engine_config().with_cache(cache.clone()));

    let observer = ShardFlushObserver {
        indices,
        shard,
        shards: manifest.shards,
        fingerprint: manifest.fingerprint(),
        cache: cache.clone(),
        report_file: report_file.clone(),
        entries: Mutex::new(Vec::new()),
        finished: AtomicUsize::new(0),
        fail_after,
    };
    let batch = engine.run_batch_observed(&jobs, &observer);
    // Final flush: on an empty shard no job ever flushed, and it makes the
    // outputs current even if a mid-sweep flush failed transiently.
    observer.flush();
    cache.persist()?;
    Ok(ShardRunOutput {
        shard,
        finished: batch.jobs.len(),
        cache_file,
        report_file,
    })
}

/// A parsed `--shard` worker command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerInvocation {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard count (cross-checked against the manifest).
    pub shards: usize,
    /// Path to the sweep manifest.
    pub manifest: PathBuf,
    /// Output directory for the shard's cache + report files.
    pub out_dir: PathBuf,
    /// Fault injection: exit after this many finished jobs.
    pub fail_after: Option<usize>,
}

impl WorkerInvocation {
    /// Parses `--shard i/N --manifest <path> --out <dir> [--fail-after k]`
    /// from `args`. Returns `None` when `--shard` is absent (the process is
    /// not a worker); `Some(Err(..))` when it is present but malformed.
    pub fn parse(args: &[String]) -> Option<Result<WorkerInvocation, ShardError>> {
        args.iter().any(|a| a == "--shard").then(|| {
            let mut shard = None;
            let mut manifest = None;
            let mut out_dir = None;
            let mut fail_after = None;
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                let mut value = |what: &str| {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| ShardError::BadInvocation(format!("{} needs a value", what)))
                };
                match arg.as_str() {
                    "--shard" => {
                        let spec = value("--shard")?;
                        let (i, n) = spec.split_once('/').ok_or_else(|| {
                            ShardError::BadInvocation(format!(
                                "--shard expects `i/N`, got `{}`",
                                spec
                            ))
                        })?;
                        let parse = |s: &str| {
                            s.parse::<usize>().map_err(|_| {
                                ShardError::BadInvocation(format!(
                                    "--shard expects integers, got `{}`",
                                    spec
                                ))
                            })
                        };
                        shard = Some((parse(i)?, parse(n)?));
                    }
                    "--manifest" => manifest = Some(PathBuf::from(value("--manifest")?)),
                    "--out" => out_dir = Some(PathBuf::from(value("--out")?)),
                    "--fail-after" => {
                        let spec = value("--fail-after")?;
                        fail_after = Some(spec.parse::<usize>().map_err(|_| {
                            ShardError::BadInvocation(format!(
                                "--fail-after expects an integer, got `{}`",
                                spec
                            ))
                        })?);
                    }
                    _ => {}
                }
            }
            // `--shard` appeared somewhere in `args`, but it may have been
            // swallowed as the *value* of another flag (`--out --shard`), so
            // its absence here is a malformed invocation, not a bug.
            let Some((shard, shards)) = shard else {
                return Err(ShardError::BadInvocation(
                    "worker mode needs --shard i/N".to_string(),
                ));
            };
            if shard >= shards {
                return Err(ShardError::BadInvocation(format!(
                    "--shard {}/{} is out of range",
                    shard, shards
                )));
            }
            Ok(WorkerInvocation {
                shard,
                shards,
                manifest: manifest.ok_or_else(|| {
                    ShardError::BadInvocation("worker mode needs --manifest <path>".to_string())
                })?,
                out_dir: out_dir.ok_or_else(|| {
                    ShardError::BadInvocation("worker mode needs --out <dir>".to_string())
                })?,
                fail_after,
            })
        })
    }
}

/// The drop-in worker entry point for self-executing sweep binaries.
///
/// Returns `None` when `args` has no `--shard` flag — the caller is running
/// in coordinator (or interactive) mode and should proceed normally.
/// Otherwise the process is a shard worker: the manifest is loaded and the
/// shard runs to completion, and the caller should exit with the returned
/// result. The `lv-sweep` CLI and `examples/shard_sweep.rs` both begin with
/// this call, which is what lets the coordinator spawn
/// `current_exe() --shard i/N …` for its workers.
pub fn run_worker_from_args(args: &[String]) -> Option<Result<ShardRunOutput, ShardError>> {
    let invocation = match WorkerInvocation::parse(args)? {
        Ok(invocation) => invocation,
        Err(e) => return Some(Err(e)),
    };
    Some(run_worker(&invocation))
}

/// Runs a parsed worker invocation: loads the manifest, cross-checks the
/// shard count, and executes the shard.
pub fn run_worker(invocation: &WorkerInvocation) -> Result<ShardRunOutput, ShardError> {
    let manifest = SweepManifest::load(&invocation.manifest)?;
    if manifest.shards != invocation.shards {
        return Err(ShardError::BadInvocation(format!(
            "--shard says {} shards but the manifest has {}",
            invocation.shards, manifest.shards
        )));
    }
    run_shard(
        &manifest,
        invocation.shard,
        &invocation.out_dir,
        invocation.fail_after,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn worker_invocation_parses_and_rejects() {
        assert!(WorkerInvocation::parse(&args(&["--threads", "2"])).is_none());
        let parsed = WorkerInvocation::parse(&args(&[
            "--shard",
            "1/4",
            "--manifest",
            "m.json",
            "--out",
            "work",
            "--fail-after",
            "3",
        ]))
        .expect("worker mode")
        .expect("well-formed");
        assert_eq!(parsed.shard, 1);
        assert_eq!(parsed.shards, 4);
        assert_eq!(parsed.manifest, PathBuf::from("m.json"));
        assert_eq!(parsed.out_dir, PathBuf::from("work"));
        assert_eq!(parsed.fail_after, Some(3));

        for bad in [
            vec!["--shard", "2"],
            // `--shard` swallowed as the value of another flag.
            vec!["--out", "--shard"],
            vec!["--manifest", "--shard", "0/2", "--out", "o"],
            vec!["--shard", "4/4", "--manifest", "m", "--out", "o"],
            vec!["--shard", "x/2", "--manifest", "m", "--out", "o"],
            vec!["--shard", "0/2", "--out", "o"],
            vec!["--shard", "0/2", "--manifest", "m"],
        ] {
            let result = WorkerInvocation::parse(&args(&bad)).expect("worker mode");
            assert!(result.is_err(), "{:?} should be rejected", bad);
        }
    }
}
