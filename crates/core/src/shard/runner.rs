//! The worker side of a sharded sweep.
//!
//! A shard worker loads the [`SweepManifest`], derives the same
//! [`ShardPlan`](crate::shard::ShardPlan) as the coordinator, and runs its
//! shard's jobs through the unchanged
//! [`run_batch_observed`](crate::VerificationEngine::run_batch_observed)
//! path with a per-shard file-backed [`VerdictCache`]. A *generation*
//! manifest ([`SweepManifest::generation`]) ships no candidates at all:
//! the shard materializes its own share cell by cell (deterministic
//! per-cell seeds) on a producer thread and verifies it overlapped through
//! the streaming intake
//! ([`run_stream_observed`](crate::VerificationEngine::run_stream_observed)),
//! with verdicts bit-identical to the materialize-then-batch run. After *every*
//! finished job the worker flushes both its cache file and its shard
//! report, so a worker killed mid-sweep leaves valid partial output and the
//! coordinator only has to re-run the jobs that are actually missing (see
//! the [module docs](crate::shard) for the recovery contract).
//!
//! How a flush hits the disk is the [`FlushMode`]:
//!
//! * [`FlushMode::Journal`] (the default) — both outputs are append-only
//!   journals ([`crate::journal`]) behind buffered file handles opened once
//!   for the shard's lifetime: a finished job appends one framed record to
//!   the report journal, and the cache appends its record at insert time,
//!   so per-job flush I/O is O(record) and a shard's total flush I/O is
//!   O(jobs). A kill can only tear the final record, which loaders detect
//!   by checksum and truncate. The [`FsyncPolicy`] decides whether each
//!   record is also `fsync`ed ([`FsyncPolicy::EveryRecord`]) or only a
//!   final compaction is ([`FsyncPolicy::OnCompact`], default).
//! * [`FlushMode::Rewrite`] — the legacy protocol: every flush rewrites the
//!   whole report and cache file atomically (temp file + rename). Total
//!   flush I/O grows quadratically with the shard's job count; it survives
//!   for comparison (the `journal_flush` bench quantifies the gap) and as
//!   the most conservative fallback, since every intermediate state is a
//!   complete snapshot document.

use crate::cache::{CacheFormat, VerdictCache};
use crate::engine::{Job, JobReport, StageSchedule, VerificationEngine};
use crate::journal::FsyncPolicy;
use crate::observer::BatchObserver;
use crate::profile::CrossRunProfile;
use crate::shard::exchange::{
    read_claims, read_progress, ClaimsJournal, ShardReportFile, ShardReportJournal, SweepManifest,
};
use crate::shard::ShardError;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a shard worker flushes its per-job output (see the [module
/// docs](self) for the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// Whole-file atomic rewrite after every job — O(file) per flush.
    Rewrite,
    /// Append-only journals with one framed record per flush — O(record)
    /// per flush; the policy controls per-record `fsync`.
    Journal(FsyncPolicy),
}

impl Default for FlushMode {
    fn default() -> FlushMode {
        FlushMode::Journal(FsyncPolicy::default())
    }
}

impl FlushMode {
    /// Stable CLI tag (`rewrite` / `journal`).
    pub fn tag(&self) -> &'static str {
        match self {
            FlushMode::Rewrite => "rewrite",
            FlushMode::Journal(_) => "journal",
        }
    }

    /// Parses [`FlushMode::tag`] output; a journal mode carries `fsync`.
    pub fn from_tag(tag: &str, fsync: FsyncPolicy) -> Result<FlushMode, String> {
        match tag {
            "rewrite" => Ok(FlushMode::Rewrite),
            "journal" => Ok(FlushMode::Journal(fsync)),
            other => Err(format!("unknown flush mode `{}`", other)),
        }
    }
}

/// Where a shard worker writes its outputs inside the sweep's working
/// directory.
pub(crate) fn cache_path(out_dir: &Path, shard: usize) -> PathBuf {
    out_dir.join(format!("shard-{}.cache.json", shard))
}

/// See [`cache_path`].
pub(crate) fn report_path(out_dir: &Path, shard: usize) -> PathBuf {
    out_dir.join(format!("shard-{}.report.json", shard))
}

/// See [`cache_path`]. The per-worker cross-run profile journal — a
/// diagnostic artifact only: the coordinator computes the authoritative
/// whole-run delta from the merged report, so shard profiles must never be
/// merged into the sweep-level profile (that would double-count the run).
pub(crate) fn profile_path(out_dir: &Path, shard: usize) -> PathBuf {
    out_dir.join(format!("shard-{}.profile.json", shard))
}

/// See [`cache_path`]. The steal-claim journal a stealing-enabled shard
/// appends its claims to.
pub(crate) fn claims_path(out_dir: &Path, shard: usize) -> PathBuf {
    out_dir.join(format!("shard-{}.claims.json", shard))
}

/// What [`run_shard`] produced.
#[derive(Debug)]
pub struct ShardRunOutput {
    /// The shard that ran.
    pub shard: usize,
    /// Jobs the shard finished (== its share of the plan on a healthy
    /// non-stealing run; with stealing, its own jobs it ran plus the ones
    /// it stole).
    pub finished: usize,
    /// Of `finished`, the jobs stolen from other shards' shares (always 0
    /// without [`ShardRunOptions::steal`]).
    pub stolen: usize,
    /// The per-shard verdict-cache file.
    pub cache_file: PathBuf,
    /// The shard report file.
    pub report_file: PathBuf,
    /// The cross-run profile journal this shard's telemetry was appended
    /// to, when one was requested ([`ShardRunOptions::profile`]).
    pub profile_file: Option<PathBuf>,
}

/// Tuning knobs of one shard run, beyond its manifest/shard identity.
#[derive(Debug, Clone)]
pub struct ShardRunOptions {
    /// Fault injection: exit with code 3 after this many finished jobs
    /// (partial output already flushed) — how tests and the CI example
    /// simulate a worker killed mid-sweep.
    pub fail_after: Option<usize>,
    /// How per-job output is flushed (journal by default).
    pub flush: FlushMode,
    /// Journal flush batching (`--flush-every`): every `n`-th record append
    /// flushes to the kernel; the appends in between stay buffered. `1` (the
    /// default) is the flush-per-record contract; `n > 1` trades a loss
    /// window of up to `n - 1` buffered tail records (plus at most one torn
    /// record) for `n`× fewer flush syscalls — recovery semantics are
    /// otherwise unchanged, since everything unflushed is a clean suffix.
    /// Ignored in [`FlushMode::Rewrite`], whose unit of I/O is the whole
    /// file regardless.
    pub flush_every: usize,
    /// Serialization of the shard's cache journal (`--cache-format`):
    /// compact binary records or the legacy JSON lines. Only meaningful in
    /// [`FlushMode::Journal`] — the rewrite path's unit is the whole JSON
    /// snapshot. The coordinator's *merged* cache stays a JSON snapshot
    /// either way (the interop guarantee), so this knob changes per-shard
    /// journal bytes, never sweep outputs.
    pub cache_format: CacheFormat,
    /// Append this shard's observed per-category per-stage telemetry to the
    /// [`CrossRunProfile`] journal at this path after the shard finishes.
    /// The coordinator hands every worker its own per-shard path
    /// (`shard-<i>.profile.json`) — profile journals are single-writer — and
    /// commits the authoritative whole-run delta itself from the merged
    /// report.
    pub profile: Option<PathBuf>,
    /// Append a liveness heartbeat record to the report journal at this
    /// period (`--heartbeat-ms`). `None` (the default) writes no
    /// heartbeats, keeping journal bytes identical to previous builds.
    /// Only meaningful in [`FlushMode::Journal`] — heartbeats are journal
    /// records — and note that each heartbeat flushes, which commits any
    /// job records batched behind it ([`ShardRunOptions::flush_every`]'s
    /// loss window shrinks to one heartbeat period).
    pub heartbeat: Option<Duration>,
    /// Enable live-shard work stealing (`--steal`): claim own jobs through
    /// a [`ClaimsJournal`] chunk by chunk, then steal unclaimed pending
    /// jobs from the stalest sibling shards. Requires
    /// [`FlushMode::Journal`] and is refused (with a warning, falling back
    /// to the plain path) when the manifest enables incremental SMT reuse,
    /// whose concluding stage/detail depends on what else ran in the same
    /// process — two shards racing a claim could then write *different*
    /// (both individually correct) cache entries for one job, which the
    /// coordinator's merge must reject. See the [module
    /// docs](crate::shard) for the conflict rules.
    pub steal: bool,
    /// Fault injection for the stealing tests: sleep this long *once* at
    /// startup, before claiming or running anything (`--delay-ms`) — the
    /// deliberately slowed shard whose share the others steal.
    pub delay: Option<Duration>,
}

impl Default for ShardRunOptions {
    fn default() -> ShardRunOptions {
        ShardRunOptions {
            fail_after: None,
            flush: FlushMode::default(),
            flush_every: 1,
            cache_format: CacheFormat::default(),
            profile: None,
            heartbeat: None,
            steal: false,
            delay: None,
        }
    }
}

/// Where the shard's report output lands per [`FlushMode`]: the legacy
/// accumulate-and-rewrite state, or the open report journal.
enum ReportSink {
    Rewrite {
        shard: usize,
        shards: usize,
        fingerprint: u64,
        report_file: PathBuf,
        entries: Vec<(usize, JobReport)>,
    },
    Journal(ShardReportJournal),
}

/// Streams finished jobs into the shard's report + cache files, flushing
/// after every job so partial output survives a kill. Optionally aborts the
/// process after `fail_after` jobs — the fault-injection hook the recovery
/// tests and the CI example use to simulate a worker dying mid-sweep.
///
/// The appender is shard-lifetime state shared by every engine sub-batch
/// the shard runs (one for a plain run; one per claimed chunk under work
/// stealing) and by the heartbeat ticker; the per-batch index mapping
/// lives in the throwaway [`ChunkObserver`]s layered on top.
struct ShardAppender {
    cache: Arc<VerdictCache>,
    /// The sink lock is held across the file writes: `record` fires
    /// concurrently from engine worker threads, and both sinks need their
    /// writes serialized — the rewrite path's atomic write-then-rename uses
    /// one fixed temp path per file, and the journal path's records must
    /// not interleave mid-frame.
    sink: Mutex<ReportSink>,
    finished: AtomicUsize,
    fail_after: Option<usize>,
}

impl ShardAppender {
    /// Commits one finished job under its *original* job index.
    fn record(&self, original: usize, report: &JobReport) {
        {
            let mut sink = self.sink.lock().unwrap();
            match &mut *sink {
                // Legacy flush: record the entry, rewrite the whole report
                // file, rewrite the whole cache file — O(file) I/O.
                ReportSink::Rewrite {
                    shard,
                    shards,
                    fingerprint,
                    report_file,
                    entries,
                } => {
                    entries.push((original, report.clone()));
                    let full = ShardReportFile {
                        shard: *shard,
                        shards: *shards,
                        fingerprint: *fingerprint,
                        entries: entries.clone(),
                    };
                    // Best-effort, like `flush`.
                    let _ = full.write(report_file);
                    let _ = self.cache.persist();
                }
                // Journal flush: one O(record) append (flushed internally);
                // the cache already appended its record at insert time.
                ReportSink::Journal(journal) => {
                    let _ = journal.append(original, report);
                }
            }
        }
        let finished = self.finished.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_after.is_some_and(|limit| finished >= limit) {
            // Simulated crash: die without unwinding, exactly like a kill
            // signal would, leaving the flushed prefix behind.
            std::process::exit(3);
        }
    }

    /// Appends (journal mode only) a liveness heartbeat; best-effort.
    fn heartbeat(&self, seq: u64) {
        let finished = self.finished.load(Ordering::SeqCst);
        let mut sink = self.sink.lock().unwrap();
        if let ReportSink::Journal(journal) = &mut *sink {
            let _ = journal.append_heartbeat(seq, finished);
        }
    }

    /// Flushes the report sink (and, on the rewrite path, the cache — in
    /// journal mode the cache appended and flushed its own record at insert
    /// time, before this observer ran).
    fn flush(&self) {
        let mut sink = self.sink.lock().unwrap();
        match &mut *sink {
            ReportSink::Rewrite {
                shard,
                shards,
                fingerprint,
                report_file,
                entries,
            } => {
                let report = ShardReportFile {
                    shard: *shard,
                    shards: *shards,
                    fingerprint: *fingerprint,
                    entries: entries.clone(),
                };
                // Flushes are best-effort: an unwritable report surfaces
                // later as missing output, which the coordinator recovers
                // from anyway.
                let _ = report.write(report_file);
                let _ = self.cache.persist();
            }
            ReportSink::Journal(journal) => {
                let _ = journal.flush();
                let _ = self.cache.persist();
            }
        }
    }
}

/// The per-batch observer: maps the engine's local batch indices back to
/// original job indices and forwards to the shard's [`ShardAppender`].
struct ChunkObserver<'a> {
    appender: &'a ShardAppender,
    /// Local batch index → original job index.
    indices: &'a [usize],
}

impl BatchObserver for ChunkObserver<'_> {
    fn job_finished(&self, index: usize, report: &JobReport) {
        self.appender.record(self.indices[index], report);
    }
}

/// The streamed-share observer: on the overlapped generation path the
/// producer pushes jobs under their *original* indices, so the engine's
/// callback index needs no mapping before it reaches the appender.
struct ShareStreamObserver<'a> {
    appender: &'a ShardAppender,
}

impl BatchObserver for ShareStreamObserver<'_> {
    fn job_finished(&self, index: usize, report: &JobReport) {
        self.appender.record(index, report);
    }
}

/// Bound on the generate→verify queue inside a shard running a generation
/// manifest: enough to keep every worker fed, small enough that generation
/// never races far ahead of verification (backpressure, not a job list).
const SHARD_GENERATION_QUEUE_CAPACITY: usize = 32;

/// Runs shard `shard` of `manifest`, writing `shard-<i>.cache.json` and
/// `shard-<i>.report.json` into `out_dir` under the given [`FlushMode`]
/// (both files are journals in journal mode, snapshots in rewrite mode —
/// every reader sniffs and accepts either).
///
/// `fail_after` is the fault-injection hook: `Some(k)` makes the process
/// exit with code 3 after `k` finished jobs (partial output already
/// flushed), which is how tests and the CI example simulate a worker killed
/// mid-sweep.
pub fn run_shard(
    manifest: &SweepManifest,
    shard: usize,
    out_dir: &Path,
    fail_after: Option<usize>,
    flush: FlushMode,
) -> Result<ShardRunOutput, ShardError> {
    run_shard_with(
        manifest,
        shard,
        out_dir,
        &ShardRunOptions {
            fail_after,
            flush,
            ..ShardRunOptions::default()
        },
    )
}

/// [`run_shard`] with the full option set (flush batching, profile output).
pub fn run_shard_with(
    manifest: &SweepManifest,
    shard: usize,
    out_dir: &Path,
    options: &ShardRunOptions,
) -> Result<ShardRunOutput, ShardError> {
    if shard >= manifest.shards {
        return Err(ShardError::BadInvocation(format!(
            "shard index {} out of range for {} shards",
            shard, manifest.shards
        )));
    }
    std::fs::create_dir_all(out_dir)?;
    let plan = manifest.plan();
    let indices = plan.indices_of(shard);

    let cache_file = cache_path(out_dir, shard);
    let report_file = report_path(out_dir, shard);
    let fingerprint = manifest.fingerprint();
    let flush_every = options.flush_every.max(1);
    let (cache, sink) = match options.flush {
        FlushMode::Rewrite => (
            Arc::new(VerdictCache::open(&cache_file)?),
            ReportSink::Rewrite {
                shard,
                shards: manifest.shards,
                fingerprint,
                report_file: report_file.clone(),
                entries: Vec::new(),
            },
        ),
        FlushMode::Journal(fsync) => {
            let cache = Arc::new(VerdictCache::open_journal_with(
                &cache_file,
                fsync,
                options.cache_format,
            )?);
            cache.set_journal_flush_every(flush_every);
            let mut journal = ShardReportJournal::create(
                &report_file,
                shard,
                manifest.shards,
                fingerprint,
                fsync,
            )?;
            journal.set_flush_every(flush_every);
            (cache, ReportSink::Journal(journal))
        }
    };
    let engine = VerificationEngine::new(manifest.engine_config().with_cache(cache.clone()));

    let appender = ShardAppender {
        cache: cache.clone(),
        sink: Mutex::new(sink),
        finished: AtomicUsize::new(0),
        fail_after: options.fail_after,
    };

    // Heartbeats are journal records; in rewrite mode the option is
    // silently meaningless (every rewrite *is* a liveness signal anyway).
    let heartbeat = match options.flush {
        FlushMode::Journal(_) => options.heartbeat,
        FlushMode::Rewrite => None,
    };
    let steal = if !options.steal {
        false
    } else if !matches!(options.flush, FlushMode::Journal(_)) {
        eprintln!(
            "lv-shard: --steal needs journal flush mode (claims are journal records); \
             running shard {} without stealing",
            shard
        );
        false
    } else if manifest.reuse.incremental {
        eprintln!(
            "lv-shard: --steal is incompatible with incremental SMT reuse (a claim race \
             could produce conflicting cache entries); running shard {} without stealing",
            shard
        );
        false
    } else {
        true
    };

    let stop = AtomicBool::new(false);
    let (ran_jobs, ran_reports, stolen) = std::thread::scope(|scope| {
        if let Some(period) = heartbeat {
            let appender = &appender;
            let stop = &stop;
            scope.spawn(move || {
                let mut seq = 0u64;
                loop {
                    // Sleep in short slices so the ticker exits promptly
                    // when the shard finishes.
                    let mut slept = Duration::ZERO;
                    while slept < period {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let slice = Duration::from_millis(10).min(period - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    seq += 1;
                    appender.heartbeat(seq);
                }
            });
        }
        let result = if steal {
            run_shard_stealing(
                manifest, shard, out_dir, options, &engine, &appender, &indices,
            )
        } else if manifest.generation.is_some() {
            // Generation manifest: the shard generates its own share and
            // the engine verifies it *as it appears* — a bounded channel
            // between a producer thread materializing cells and the
            // streaming engine intake, instead of materialize-then-batch.
            // Jobs are pushed under their original indices, so reports and
            // journal records need no index mapping.
            let generated: Mutex<Vec<(usize, Job)>> = Mutex::new(Vec::with_capacity(indices.len()));
            let (producer, source) = crate::engine::job_channel(SHARD_GENERATION_QUEUE_CAPACITY);
            let batch = std::thread::scope(|gen_scope| {
                let generated = &generated;
                let indices = &indices;
                gen_scope.spawn(move || {
                    for &index in indices.iter() {
                        let job = manifest.job(index);
                        generated.lock().unwrap().push((index, job.clone()));
                        producer.push(index, job);
                    }
                });
                engine.run_stream_observed(
                    &source,
                    &ShareStreamObserver {
                        appender: &appender,
                    },
                )
            });
            let mut pairs = generated.into_inner().unwrap();
            pairs.sort_by_key(|(index, _)| *index);
            let ran_jobs: Vec<Job> = pairs.into_iter().map(|(_, job)| job).collect();
            Ok((ran_jobs, batch.jobs, 0))
        } else {
            let jobs: Vec<Job> = indices.iter().map(|&i| manifest.jobs[i].clone()).collect();
            let observer = ChunkObserver {
                appender: &appender,
                indices: &indices,
            };
            let batch = engine.run_batch_observed(&jobs, &observer);
            Ok((jobs, batch.jobs, 0))
        };
        stop.store(true, Ordering::SeqCst);
        result
    })?;

    // Final flush: on an empty shard no job ever flushed, and with batched
    // flushing (or a transiently failed mid-sweep flush) it commits the
    // buffered tail.
    appender.flush();
    cache.persist()?;
    if let Some(profile_path) = &options.profile {
        // The shard's contribution to the cross-run profile. Fsync policy
        // follows the flush mode; the profile is advisory, so a lost append
        // only costs tuning evidence, never correctness.
        let fsync = match options.flush {
            FlushMode::Journal(fsync) => fsync,
            FlushMode::Rewrite => FsyncPolicy::default(),
        };
        CrossRunProfile::from_batch(&ran_jobs, &ran_reports).append_to(profile_path, fsync)?;
    }
    Ok(ShardRunOutput {
        shard,
        finished: ran_reports.len(),
        stolen,
        cache_file,
        report_file,
        profile_file: options.profile.clone(),
    })
}

/// The stealing run loop: claim and run the shard's *own* pending jobs one
/// worker-pool-sized chunk at a time (skipping anything a sibling already
/// claimed), then turn thief — repeatedly pick the stalest sibling with
/// unclaimed pending jobs and claim a chunk of its share. Stolen reports
/// are appended to this shard's own report journal under the jobs'
/// original indices; the coordinator accepts reports from any shard
/// (first report wins) and its recovery path backstops jobs that were
/// claimed but never reported.
#[allow(clippy::too_many_arguments)]
fn run_shard_stealing(
    manifest: &SweepManifest,
    shard: usize,
    out_dir: &Path,
    options: &ShardRunOptions,
    engine: &VerificationEngine,
    appender: &ShardAppender,
    own_indices: &[usize],
) -> Result<(Vec<Job>, Vec<JobReport>, usize), ShardError> {
    if let Some(delay) = options.delay {
        // One-time simulated slow start (fault injection for the stealing
        // tests): heartbeats keep ticking — the shard is alive, just slow —
        // while its pending share sits unclaimed for siblings to take.
        std::thread::sleep(delay);
    }
    let plan = manifest.plan();
    let fingerprint = manifest.fingerprint();
    let mut claims = ClaimsJournal::create(
        &claims_path(out_dir, shard),
        shard,
        manifest.shards,
        fingerprint,
        match options.flush {
            FlushMode::Journal(fsync) => fsync,
            FlushMode::Rewrite => FsyncPolicy::default(),
        },
    )?;
    let mut claimed: BTreeSet<usize> = BTreeSet::new();
    let mut ran_jobs: Vec<Job> = Vec::new();
    let mut ran_reports: Vec<JobReport> = Vec::new();

    // The union of every *sibling's* claims right now (our own are tracked
    // in `claimed` — re-reading our own journal would be redundant).
    let sibling_claims = |out_dir: &Path| -> BTreeSet<usize> {
        (0..manifest.shards)
            .filter(|&s| s != shard)
            .flat_map(|s| read_claims(&claims_path(out_dir, s), fingerprint))
            .collect()
    };

    // Claims a chunk and runs it through the shared appender.
    let run_chunk = |chunk: &[usize],
                     claims: &mut ClaimsJournal,
                     claimed: &mut BTreeSet<usize>,
                     ran_jobs: &mut Vec<Job>,
                     ran_reports: &mut Vec<JobReport>|
     -> Result<(), ShardError> {
        for &index in chunk {
            claims.append(index)?;
            claimed.insert(index);
        }
        let chunk_jobs: Vec<Job> = chunk.iter().map(|&i| manifest.job(i)).collect();
        let observer = ChunkObserver {
            appender,
            indices: chunk,
        };
        let batch = engine.run_batch_observed(&chunk_jobs, &observer);
        ran_jobs.extend(chunk_jobs);
        ran_reports.extend(batch.jobs);
        Ok(())
    };

    // Phase 1 — our own share, chunk by chunk. Re-scanning sibling claims
    // between chunks is what lets a thief relieve *us* too: anything a
    // sibling claimed while we worked is dropped from our pending set.
    loop {
        let foreign = sibling_claims(out_dir);
        let pending: Vec<usize> = own_indices
            .iter()
            .copied()
            .filter(|i| !claimed.contains(i) && !foreign.contains(i))
            .collect();
        if pending.is_empty() {
            break;
        }
        let chunk_len = engine.resolved_threads(pending.len()).min(pending.len());
        run_chunk(
            &pending[..chunk_len],
            &mut claims,
            &mut claimed,
            &mut ran_jobs,
            &mut ran_reports,
        )?;
    }

    // Phase 2 — thief: while some sibling has pending unclaimed jobs, take
    // a chunk from the stalest one (fewest committed reports, then fewest
    // heartbeats — the hung-but-alive signal).
    let mut stolen = 0usize;
    loop {
        let foreign = sibling_claims(out_dir);
        let mut victims: Vec<(usize, Vec<usize>)> = Vec::new();
        for victim in (0..manifest.shards).filter(|&s| s != shard) {
            let progress =
                read_progress(&report_path(out_dir, victim), fingerprint).unwrap_or_default();
            let pending: Vec<usize> = plan
                .indices_of(victim)
                .into_iter()
                .filter(|i| {
                    !progress.reported.contains(i) && !foreign.contains(i) && !claimed.contains(i)
                })
                .collect();
            if !pending.is_empty() {
                victims.push((victim, pending));
            }
        }
        let Some((_, pending)) = victims.into_iter().min_by_key(|(victim, pending)| {
            let progress =
                read_progress(&report_path(out_dir, *victim), fingerprint).unwrap_or_default();
            (progress.reported.len(), progress.heartbeats, pending.len())
        }) else {
            break;
        };
        let chunk_len = engine.resolved_threads(pending.len()).min(pending.len());
        run_chunk(
            &pending[..chunk_len],
            &mut claims,
            &mut claimed,
            &mut ran_jobs,
            &mut ran_reports,
        )?;
        stolen += chunk_len;
    }
    Ok((ran_jobs, ran_reports, stolen))
}

/// A parsed `--shard` worker command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerInvocation {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard count (cross-checked against the manifest).
    pub shards: usize,
    /// Path to the sweep manifest.
    pub manifest: PathBuf,
    /// Output directory for the shard's cache + report files.
    pub out_dir: PathBuf,
    /// Fault injection: exit after this many finished jobs.
    pub fail_after: Option<usize>,
    /// How per-job output is flushed (journal by default).
    pub flush: FlushMode,
    /// Journal flush batching (`--flush-every N`, default 1); see
    /// [`ShardRunOptions::flush_every`].
    pub flush_every: usize,
    /// Cache-journal serialization (`--cache-format json|binary`); see
    /// [`ShardRunOptions::cache_format`].
    pub cache_format: CacheFormat,
    /// Cross-run profile journal to append this shard's telemetry to
    /// (`--profile <path>`).
    pub profile: Option<PathBuf>,
    /// The stage schedule the coordinator intends this sweep to run under
    /// (`--schedule <spec>`). Cross-checked against the loaded manifest's
    /// schedule, so a worker pointed at a stale manifest (written for a
    /// different schedule generation) fails fast instead of producing a
    /// report the coordinator would only reject after the shard burned its
    /// wall-clock.
    pub schedule: Option<StageSchedule>,
    /// Liveness heartbeat period in milliseconds (`--heartbeat-ms N`); see
    /// [`ShardRunOptions::heartbeat`].
    pub heartbeat_ms: Option<u64>,
    /// Live-shard work stealing (`--steal`); see [`ShardRunOptions::steal`].
    pub steal: bool,
    /// One-time startup delay in milliseconds (`--delay-ms N`); see
    /// [`ShardRunOptions::delay`].
    pub delay_ms: Option<u64>,
}

impl WorkerInvocation {
    /// Parses `--shard i/N --manifest <path> --out <dir> [--fail-after k]
    /// [--flush rewrite|journal] [--fsync record|compact] [--flush-every N]
    /// [--cache-format json|binary] [--profile <path>] [--schedule <spec>]
    /// [--heartbeat-ms N] [--steal] [--delay-ms N]` from `args`.
    /// Returns `None` when `--shard` is absent (the process is not a
    /// worker); `Some(Err(..))` when it is present but malformed.
    pub fn parse(args: &[String]) -> Option<Result<WorkerInvocation, ShardError>> {
        args.iter().any(|a| a == "--shard").then(|| {
            let mut shard = None;
            let mut manifest = None;
            let mut out_dir = None;
            let mut fail_after = None;
            let mut flush_tag: Option<String> = None;
            let mut fsync = FsyncPolicy::default();
            let mut flush_every = 1usize;
            let mut cache_format = CacheFormat::default();
            let mut profile = None;
            let mut schedule = None;
            let mut heartbeat_ms = None;
            let mut steal = false;
            let mut delay_ms = None;
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                let mut value = |what: &str| {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| ShardError::BadInvocation(format!("{} needs a value", what)))
                };
                match arg.as_str() {
                    "--shard" => {
                        let spec = value("--shard")?;
                        let (i, n) = spec.split_once('/').ok_or_else(|| {
                            ShardError::BadInvocation(format!(
                                "--shard expects `i/N`, got `{}`",
                                spec
                            ))
                        })?;
                        let parse = |s: &str| {
                            s.parse::<usize>().map_err(|_| {
                                ShardError::BadInvocation(format!(
                                    "--shard expects integers, got `{}`",
                                    spec
                                ))
                            })
                        };
                        shard = Some((parse(i)?, parse(n)?));
                    }
                    "--manifest" => manifest = Some(PathBuf::from(value("--manifest")?)),
                    "--out" => out_dir = Some(PathBuf::from(value("--out")?)),
                    "--flush" => flush_tag = Some(value("--flush")?),
                    "--fsync" => {
                        fsync = FsyncPolicy::from_tag(&value("--fsync")?)
                            .map_err(ShardError::BadInvocation)?
                    }
                    "--flush-every" => {
                        let spec = value("--flush-every")?;
                        flush_every =
                            spec.parse::<usize>()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or_else(|| {
                                    ShardError::BadInvocation(format!(
                                        "--flush-every expects a positive integer, got `{}`",
                                        spec
                                    ))
                                })?;
                    }
                    "--cache-format" => {
                        cache_format = CacheFormat::from_tag(&value("--cache-format")?)
                            .map_err(ShardError::BadInvocation)?
                    }
                    "--profile" => profile = Some(PathBuf::from(value("--profile")?)),
                    "--schedule" => {
                        schedule = Some(
                            StageSchedule::parse_spec(&value("--schedule")?)
                                .map_err(ShardError::BadInvocation)?,
                        )
                    }
                    "--fail-after" => {
                        let spec = value("--fail-after")?;
                        fail_after = Some(spec.parse::<usize>().map_err(|_| {
                            ShardError::BadInvocation(format!(
                                "--fail-after expects an integer, got `{}`",
                                spec
                            ))
                        })?);
                    }
                    "--heartbeat-ms" => {
                        let spec = value("--heartbeat-ms")?;
                        heartbeat_ms =
                            Some(spec.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(
                                || {
                                    ShardError::BadInvocation(format!(
                                        "--heartbeat-ms expects a positive integer, got `{}`",
                                        spec
                                    ))
                                },
                            )?);
                    }
                    "--steal" => steal = true,
                    "--delay-ms" => {
                        let spec = value("--delay-ms")?;
                        delay_ms = Some(spec.parse::<u64>().map_err(|_| {
                            ShardError::BadInvocation(format!(
                                "--delay-ms expects an integer, got `{}`",
                                spec
                            ))
                        })?);
                    }
                    _ => {}
                }
            }
            // `--shard` appeared somewhere in `args`, but it may have been
            // swallowed as the *value* of another flag (`--out --shard`), so
            // its absence here is a malformed invocation, not a bug.
            let Some((shard, shards)) = shard else {
                return Err(ShardError::BadInvocation(
                    "worker mode needs --shard i/N".to_string(),
                ));
            };
            if shard >= shards {
                return Err(ShardError::BadInvocation(format!(
                    "--shard {}/{} is out of range",
                    shard, shards
                )));
            }
            let flush = match flush_tag {
                None => FlushMode::Journal(fsync),
                Some(tag) => FlushMode::from_tag(&tag, fsync).map_err(ShardError::BadInvocation)?,
            };
            Ok(WorkerInvocation {
                shard,
                shards,
                manifest: manifest.ok_or_else(|| {
                    ShardError::BadInvocation("worker mode needs --manifest <path>".to_string())
                })?,
                out_dir: out_dir.ok_or_else(|| {
                    ShardError::BadInvocation("worker mode needs --out <dir>".to_string())
                })?,
                fail_after,
                flush,
                flush_every,
                cache_format,
                profile,
                schedule,
                heartbeat_ms,
                steal,
                delay_ms,
            })
        })
    }
}

/// The drop-in worker entry point for self-executing sweep binaries.
///
/// Returns `None` when `args` has no `--shard` flag — the caller is running
/// in coordinator (or interactive) mode and should proceed normally.
/// Otherwise the process is a shard worker: the manifest is loaded and the
/// shard runs to completion, and the caller should exit with the returned
/// result. The `lv-sweep` CLI and `examples/shard_sweep.rs` both begin with
/// this call, which is what lets the coordinator spawn
/// `current_exe() --shard i/N …` for its workers.
pub fn run_worker_from_args(args: &[String]) -> Option<Result<ShardRunOutput, ShardError>> {
    let invocation = match WorkerInvocation::parse(args)? {
        Ok(invocation) => invocation,
        Err(e) => return Some(Err(e)),
    };
    Some(run_worker(&invocation))
}

/// Runs a parsed worker invocation: loads the manifest, cross-checks the
/// shard count (and, when `--schedule` was passed, the stage schedule), and
/// executes the shard.
pub fn run_worker(invocation: &WorkerInvocation) -> Result<ShardRunOutput, ShardError> {
    let manifest = SweepManifest::load(&invocation.manifest)?;
    if manifest.shards != invocation.shards {
        return Err(ShardError::BadInvocation(format!(
            "--shard says {} shards but the manifest has {}",
            invocation.shards, manifest.shards
        )));
    }
    if let Some(expected) = &invocation.schedule {
        if *expected != manifest.schedule {
            return Err(ShardError::BadInvocation(format!(
                "--schedule says `{}` but the manifest carries `{}` — the manifest is \
                 stale for this sweep",
                expected.spec(),
                manifest.schedule.spec()
            )));
        }
    }
    run_shard_with(
        &manifest,
        invocation.shard,
        &invocation.out_dir,
        &ShardRunOptions {
            fail_after: invocation.fail_after,
            flush: invocation.flush,
            flush_every: invocation.flush_every,
            cache_format: invocation.cache_format,
            profile: invocation.profile.clone(),
            heartbeat: invocation.heartbeat_ms.map(Duration::from_millis),
            steal: invocation.steal,
            delay: invocation.delay_ms.map(Duration::from_millis),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn worker_invocation_parses_and_rejects() {
        assert!(WorkerInvocation::parse(&args(&["--threads", "2"])).is_none());
        let parsed = WorkerInvocation::parse(&args(&[
            "--shard",
            "1/4",
            "--manifest",
            "m.json",
            "--out",
            "work",
            "--fail-after",
            "3",
        ]))
        .expect("worker mode")
        .expect("well-formed");
        assert_eq!(parsed.shard, 1);
        assert_eq!(parsed.shards, 4);
        assert_eq!(parsed.manifest, PathBuf::from("m.json"));
        assert_eq!(parsed.out_dir, PathBuf::from("work"));
        assert_eq!(parsed.fail_after, Some(3));
        assert_eq!(
            parsed.flush,
            FlushMode::Journal(FsyncPolicy::OnCompact),
            "journal is the default flush mode"
        );
        assert_eq!(parsed.flush_every, 1, "flush batching defaults off");
        assert_eq!(parsed.cache_format, CacheFormat::Json, "JSON by default");
        assert_eq!(parsed.profile, None);
        assert_eq!(parsed.schedule, None);
        assert_eq!(parsed.heartbeat_ms, None, "heartbeats default off");
        assert!(!parsed.steal, "stealing defaults off");
        assert_eq!(parsed.delay_ms, None);

        let tuned = WorkerInvocation::parse(&args(&[
            "--shard",
            "0/2",
            "--manifest",
            "m",
            "--out",
            "o",
            "--flush-every",
            "8",
            "--cache-format",
            "binary",
            "--profile",
            "prof.json",
            "--schedule",
            "reduction=cunroll,alive2,splitting",
        ]))
        .expect("worker mode")
        .expect("well-formed");
        assert_eq!(tuned.flush_every, 8);
        assert_eq!(tuned.cache_format, CacheFormat::Binary);
        assert_eq!(tuned.profile, Some(PathBuf::from("prof.json")));
        let schedule = tuned.schedule.expect("schedule parsed");
        assert_eq!(schedule.spec(), "reduction=cunroll,alive2,splitting");

        let stealing = WorkerInvocation::parse(&args(&[
            "--shard",
            "1/2",
            "--manifest",
            "m",
            "--out",
            "o",
            "--steal",
            "--heartbeat-ms",
            "250",
            "--delay-ms",
            "4000",
        ]))
        .expect("worker mode")
        .expect("well-formed");
        assert!(stealing.steal);
        assert_eq!(stealing.heartbeat_ms, Some(250));
        assert_eq!(stealing.delay_ms, Some(4000));

        let legacy = WorkerInvocation::parse(&args(&[
            "--shard",
            "0/2",
            "--manifest",
            "m",
            "--out",
            "o",
            "--flush",
            "rewrite",
        ]))
        .expect("worker mode")
        .expect("well-formed");
        assert_eq!(legacy.flush, FlushMode::Rewrite);
        let synced = WorkerInvocation::parse(&args(&[
            "--shard",
            "0/2",
            "--manifest",
            "m",
            "--out",
            "o",
            "--flush",
            "journal",
            "--fsync",
            "record",
        ]))
        .expect("worker mode")
        .expect("well-formed");
        assert_eq!(synced.flush, FlushMode::Journal(FsyncPolicy::EveryRecord));

        for bad in [
            vec!["--shard", "2"],
            // `--shard` swallowed as the value of another flag.
            vec!["--out", "--shard"],
            vec!["--manifest", "--shard", "0/2", "--out", "o"],
            vec!["--shard", "4/4", "--manifest", "m", "--out", "o"],
            vec!["--shard", "x/2", "--manifest", "m", "--out", "o"],
            vec!["--shard", "0/2", "--out", "o"],
            vec!["--shard", "0/2", "--manifest", "m"],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--flush",
                "parchment",
            ],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--fsync",
                "never",
            ],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--flush-every",
                "0",
            ],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--cache-format",
                "yaml",
            ],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--schedule",
                "reduction=alive2",
            ],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--heartbeat-ms",
                "0",
            ],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--heartbeat-ms",
                "soon",
            ],
            vec![
                "--shard",
                "0/2",
                "--manifest",
                "m",
                "--out",
                "o",
                "--delay-ms",
                "x",
            ],
        ] {
            let result = WorkerInvocation::parse(&args(&bad)).expect("worker mode");
            assert!(result.is_err(), "{:?} should be rejected", bad);
        }
    }
}
