//! Experiment drivers that regenerate every table and figure of the paper.
//!
//! Each driver returns a plain data structure with a `render()` method that
//! prints rows in the same shape as the paper's tables/figures; the Criterion
//! benches in `lv-bench` and the runnable examples call these drivers.
//!
//! Every driver runs its equivalence checks through the parallel
//! [`VerificationEngine`]: candidates are generated sequentially (the
//! synthetic LLM is a seeded, stateful sampler), collected into
//! `(kernel × candidate)` jobs, and fanned out over the engine's worker
//! pool. Verdicts are bit-identical for any [`ExperimentConfig::threads`]
//! setting; the thread count only changes wall-clock time.
//!
//! Every driver also has a `*_with` variant taking a [`BatchObserver`]: the
//! driver forwards its engine events (and, for Figure 6, one synthesized
//! job-finished event per computed row) to the observer as workers finish,
//! so a [`StreamObserver`](crate::StreamObserver) renders the table
//! incrementally while the sweep is still running. The drivers themselves
//! accumulate their rows through the same callbacks instead of
//! post-processing the finished [`BatchReport`](crate::BatchReport), so the
//! streamed view and the returned table can never disagree. A cache and an
//! adaptive-budget policy configured on [`ExperimentConfig`] are honored by
//! every engine run a driver performs.

use crate::cache::VerdictCache;
use crate::engine::{
    parallel_map, EngineConfig, Job, JobReport, StageSchedule, VerificationEngine,
};
use crate::funnel::{AdaptiveBudgetPolicy, FunnelReport};
use crate::observer::{BatchObserver, NoopObserver, TeeObserver};
use crate::passk::pass_at_k_curve;
use crate::pipeline::{Equivalence, PipelineConfig, Stage};
use lv_agents::{fsm_candidate_batch, sample_completion_batch, FsmConfig, LlmConfig, SyntheticLlm};
use lv_autovec::{speedup_over, Compiler, CompilerProfile, CostTable};
use lv_cir::ast::Function;
use lv_interp::{ChecksumClass, ChecksumConfig};
use lv_tsvc::{Category, Kernel, KERNELS, PAPER_SUITE_SIZE};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Common experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Kernels to evaluate (defaults to the whole embedded suite).
    pub kernel_names: Option<Vec<String>>,
    /// RNG seed for the synthetic LLM.
    pub seed: u64,
    /// Sampling temperature.
    pub temperature: f64,
    /// Checksum configuration.
    pub checksum: ChecksumConfig,
    /// Pipeline (verification) configuration.
    pub pipeline: PipelineConfig,
    /// Problem size used for the performance simulations.
    pub performance_n: u64,
    /// Verification-engine worker threads (`0` = one per CPU). Any value
    /// yields identical tables/figures; it only affects wall-clock time.
    pub threads: usize,
    /// Verdict cache shared by every engine a driver builds. `None` (the
    /// default) disables caching.
    pub cache: Option<Arc<VerdictCache>>,
    /// Opt-in adaptive budget tuning for the Table 3 funnel. `None` (the
    /// default) keeps the configured budgets and bit-identical verdicts.
    pub adaptive: Option<AdaptiveBudgetPolicy>,
    /// Per-kernel-category stage schedule applied to every full-cascade
    /// engine a driver builds (usually
    /// [`StageSchedule::from_profile`](crate::engine::StageSchedule::from_profile)
    /// of a persisted [`CrossRunProfile`](crate::profile::CrossRunProfile)).
    /// The default is Algorithm 1's fixed order — bit-identical verdicts,
    /// fingerprints, and cache keys to the pre-schedule drivers.
    pub schedule: StageSchedule,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            kernel_names: None,
            seed: 2024,
            temperature: 1.0,
            checksum: ChecksumConfig::default(),
            pipeline: PipelineConfig::default(),
            performance_n: 32_000,
            threads: 0,
            cache: None,
            adaptive: None,
            schedule: StageSchedule::algorithm1(),
        }
    }
}

impl ExperimentConfig {
    /// The kernels selected by this configuration.
    pub fn kernels(&self) -> Vec<&'static Kernel> {
        match &self.kernel_names {
            None => KERNELS.iter().collect(),
            Some(names) => KERNELS
                .iter()
                .filter(|k| names.iter().any(|n| n == k.name))
                .collect(),
        }
    }

    fn llm(&self) -> SyntheticLlm {
        SyntheticLlm::new(self.llm_config())
    }

    fn llm_config(&self) -> LlmConfig {
        LlmConfig {
            temperature: self.temperature,
            seed: self.seed,
            ..LlmConfig::default()
        }
    }

    /// The engine running Algorithm 1's full cascade under this
    /// configuration and [`ExperimentConfig::schedule`] (Table 3, Figure 1).
    pub fn engine(&self) -> VerificationEngine {
        let mut engine = EngineConfig::full(self.pipeline.clone())
            .with_threads(self.threads)
            .with_schedule(self.schedule.clone());
        engine.cache = self.cache.clone();
        engine.adaptive = self.adaptive.clone();
        VerificationEngine::new(engine)
    }

    /// The engine running the checksum-only cascade under this
    /// configuration (Table 2, Figure 5, the Section 4.4 evaluation).
    /// Shares [`ExperimentConfig::cache`] with the full-cascade engine —
    /// the two cascades have different configuration fingerprints, so their
    /// entries never collide. The schedule is passed through too, though it
    /// can never reorder a checksum-only cascade (and so never perturbs its
    /// fingerprint).
    pub fn checksum_engine(&self) -> VerificationEngine {
        let mut engine = EngineConfig::checksum_only(self.checksum.clone())
            .with_threads(self.threads)
            .with_schedule(self.schedule.clone());
        engine.cache = self.cache.clone();
        VerificationEngine::new(engine)
    }
}

/// Accumulates per-job checksum classifications through observer callbacks,
/// so Table 2 / Figure 5 / Section 4.4 build their counts as jobs finish.
struct ClassAccumulator<'a> {
    /// Job index -> `(kernel index, completion index)`.
    slots: &'a [(usize, usize)],
    /// `outcomes[kernel][completion]` classification code
    /// (0 = plausible, 1 = not equivalent, 2 = cannot compile).
    outcomes: Mutex<Vec<Vec<u8>>>,
}

impl<'a> ClassAccumulator<'a> {
    fn new(slots: &'a [(usize, usize)], kernels: usize) -> ClassAccumulator<'a> {
        let mut sizes = vec![0usize; kernels];
        for &(i, j) in slots {
            sizes[i] = sizes[i].max(j + 1);
        }
        ClassAccumulator {
            slots,
            outcomes: Mutex::new(sizes.into_iter().map(|n| vec![1u8; n]).collect()),
        }
    }

    fn into_outcomes(self) -> Vec<Vec<u8>> {
        self.outcomes.into_inner().unwrap()
    }
}

impl BatchObserver for ClassAccumulator<'_> {
    fn job_finished(&self, index: usize, report: &JobReport) {
        let (i, j) = self.slots[index];
        self.outcomes.lock().unwrap()[i][j] = match report.checksum {
            Some(ChecksumClass::Plausible) => 0,
            Some(ChecksumClass::CannotCompile) => 2,
            _ => 1,
        };
    }
}

/// Flattens a completion batch into engine jobs labeled `kernel#index`, in
/// generation order (shared by Table 2, Figure 5, and the FSM evaluation).
fn completion_jobs(
    batch: &lv_agents::CompletionBatch,
    kernels: &[&'static Kernel],
    scalars: &[Function],
) -> Vec<Job> {
    batch
        .jobs()
        .map(|(i, j, completion)| {
            Job::new(
                format!("{}#{}", kernels[i].name, j),
                scalars[i].clone(),
                completion.candidate.clone(),
            )
        })
        .collect()
}

/// Scales a count from the embedded suite to the paper's 149-test population.
pub fn scale_to_paper(count: usize, suite: usize) -> usize {
    (count * PAPER_SUITE_SIZE + suite / 2)
        .checked_div(suite)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Table 2: checksum-based testing at k completions.
// ---------------------------------------------------------------------------

/// One column of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Column {
    /// Number of completions sampled per kernel.
    pub k: usize,
    /// Kernels with at least one plausible completion.
    pub plausible: usize,
    /// Kernels where every completion compiled but none matched.
    pub not_equivalent: usize,
    /// Kernels where no completion compiled.
    pub cannot_compile: usize,
}

/// The Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Columns for each requested k.
    pub columns: Vec<Table2Column>,
    /// Number of kernels evaluated.
    pub suite: usize,
}

impl Table2 {
    /// Renders rows in the paper's format, with counts scaled to 149 tests.
    pub fn render(&self) -> String {
        let mut out = String::from("Parameters");
        for c in &self.columns {
            out += &format!("\tk={}", c.k);
        }
        out += "\nPlausible";
        for c in &self.columns {
            out += &format!("\t{}", scale_to_paper(c.plausible, self.suite));
        }
        out += "\nNot equivalent";
        for c in &self.columns {
            out += &format!("\t{}", scale_to_paper(c.not_equivalent, self.suite));
        }
        out += "\nCannot compile";
        for c in &self.columns {
            out += &format!("\t{}", scale_to_paper(c.cannot_compile, self.suite));
        }
        out
    }
}

/// Runs the Table 2 experiment: for each kernel, sample `max(k_values)`
/// completions without feedback and classify the best outcome within the
/// first `k` completions for each requested `k`.
pub fn table2(config: &ExperimentConfig, k_values: &[usize]) -> Table2 {
    table2_with(config, k_values, &NoopObserver)
}

/// [`table2`], streaming per-job engine events to `observer`.
pub fn table2_with(
    config: &ExperimentConfig,
    k_values: &[usize],
    observer: &dyn BatchObserver,
) -> Table2 {
    let kernels = config.kernels();
    let max_k = k_values.iter().copied().max().unwrap_or(1);
    let scalars: Vec<Function> = kernels.iter().map(|k| k.function()).collect();
    // Candidate generation is sequential (the sampler is stateful);
    // classification fans out over the engine's checksum-only cascade, and
    // the per-kernel outcomes accumulate as jobs finish.
    let batch = sample_completion_batch(&scalars, &config.llm_config(), max_k);
    let jobs = completion_jobs(&batch, &kernels, &scalars);
    let slots: Vec<(usize, usize)> = batch.jobs().map(|(i, j, _)| (i, j)).collect();
    let accumulator = ClassAccumulator::new(&slots, kernels.len());
    config
        .checksum_engine()
        .run_batch_observed(&jobs, &TeeObserver(&accumulator, observer));
    // outcome per kernel per completion index: 0 = plausible, 1 = not equiv, 2 = cannot compile
    let outcomes = accumulator.into_outcomes();
    let columns = k_values
        .iter()
        .map(|&k| {
            let mut col = Table2Column {
                k,
                plausible: 0,
                not_equivalent: 0,
                cannot_compile: 0,
            };
            for row in &outcomes {
                let window = &row[..k.min(row.len())];
                if window.contains(&0) {
                    col.plausible += 1;
                } else if window.iter().all(|&o| o == 2) {
                    col.cannot_compile += 1;
                } else {
                    col.not_equivalent += 1;
                }
            }
            col
        })
        .collect();
    Table2 {
        columns,
        suite: kernels.len(),
    }
}

// ---------------------------------------------------------------------------
// Figure 5: pass@k.
// ---------------------------------------------------------------------------

/// The Figure 5 reproduction: the averaged pass@k curve.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// `(k, mean pass@k)` points.
    pub points: Vec<(usize, f64)>,
}

impl Figure5 {
    /// Renders the curve as `k<TAB>pass@k` lines.
    pub fn render(&self) -> String {
        self.points
            .iter()
            .map(|(k, p)| format!("{}\t{:.3}", k, p))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Runs the pass@k experiment with `n_samples` completions per kernel.
pub fn figure5(config: &ExperimentConfig, n_samples: usize, ks: &[usize]) -> Figure5 {
    figure5_with(config, n_samples, ks, &NoopObserver)
}

/// [`figure5`], streaming per-job engine events to `observer`.
pub fn figure5_with(
    config: &ExperimentConfig,
    n_samples: usize,
    ks: &[usize],
    observer: &dyn BatchObserver,
) -> Figure5 {
    let kernels = config.kernels();
    let scalars: Vec<Function> = kernels.iter().map(|k| k.function()).collect();
    let batch = sample_completion_batch(&scalars, &config.llm_config(), n_samples);
    let jobs = completion_jobs(&batch, &kernels, &scalars);
    let slots: Vec<(usize, usize)> = batch.jobs().map(|(i, j, _)| (i, j)).collect();
    let accumulator = ClassAccumulator::new(&slots, kernels.len());
    config
        .checksum_engine()
        .run_batch_observed(&jobs, &TeeObserver(&accumulator, observer));
    let per_kernel_correct: Vec<usize> = accumulator
        .into_outcomes()
        .iter()
        .map(|row| row.iter().filter(|&&o| o == 0).count())
        .collect();
    Figure5 {
        points: pass_at_k_curve(&per_kernel_correct, n_samples, ks),
    }
}

// ---------------------------------------------------------------------------
// Table 3: the verification funnel.
// ---------------------------------------------------------------------------

/// One row of Table 3 (one equivalence-checking technique).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// Technique label.
    pub technique: &'static str,
    /// Tests entering this stage.
    pub total: usize,
    /// Tests proven equivalent at this stage.
    pub equivalent: usize,
    /// Tests proven not equivalent at this stage.
    pub not_equivalent: usize,
    /// Tests still inconclusive after this stage.
    pub inconclusive: usize,
}

/// The Table 3 reproduction plus the per-kernel verdicts (used by Figure 6).
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows in the order Checksum, Alive2, C-Unroll, Splitting, All.
    pub rows: Vec<Table3Row>,
    /// Per-kernel final verdict and the candidate that was checked.
    pub verdicts: Vec<KernelVerdict>,
    /// Number of kernels evaluated.
    pub suite: usize,
    /// The engine batch behind the funnel: per-job telemetry, wall time,
    /// and the cache hit/miss counters.
    pub batch: crate::BatchReport,
    /// The telemetry funnel over the batch's stage traces.
    pub funnel: FunnelReport,
    /// The derived budgets the post-pilot jobs ran under, when
    /// [`ExperimentConfig::adaptive`] was set.
    pub tuned_budgets: Option<lv_tv::TvConfig>,
}

/// The final verdict for one kernel.
#[derive(Debug, Clone)]
pub struct KernelVerdict {
    /// Kernel name.
    pub name: &'static str,
    /// Category (for Figure 6 grouping).
    pub category: Category,
    /// Final verdict.
    pub verdict: Equivalence,
    /// Stage that produced it.
    pub stage: Stage,
    /// The plausible candidate, when one was found.
    pub candidate: Option<Function>,
}

impl Table3 {
    /// Renders rows in the paper's format.
    pub fn render(&self) -> String {
        let mut out = String::from("Techniques\tTotal\tEquiv\tNot Equiv\tInconcl\n");
        for row in &self.rows {
            out += &format!(
                "{}\t{}\t{}\t{}\t{}\n",
                row.technique, row.total, row.equivalent, row.not_equivalent, row.inconclusive
            );
        }
        out
    }
}

/// Accumulates Table 3's per-kernel verdicts through observer callbacks.
struct Table3Accumulator<'a> {
    /// Job index -> kernel index.
    job_indices: &'a [usize],
    jobs: &'a [Job],
    kernels: &'a [&'static Kernel],
    verdicts: Mutex<Vec<KernelVerdict>>,
}

impl BatchObserver for Table3Accumulator<'_> {
    fn job_finished(&self, index: usize, report: &JobReport) {
        let i = self.job_indices[index];
        self.verdicts.lock().unwrap()[i] = KernelVerdict {
            name: self.kernels[i].name,
            category: self.kernels[i].category,
            verdict: report.verdict,
            stage: report.stage,
            candidate: Some(self.jobs[index].candidate.clone()),
        };
    }
}

/// Runs the full verification funnel: the FSM produces (at most) one
/// plausible candidate per kernel, which is then pushed through Algorithm 1's
/// symbolic stages.
pub fn table3(config: &ExperimentConfig) -> Table3 {
    table3_with(config, &NoopObserver)
}

/// [`table3`], streaming per-job engine events to `observer`. Honors
/// [`ExperimentConfig::adaptive`]: with a policy set, the funnel batch runs
/// through [`VerificationEngine::run_batch_adaptive`].
pub fn table3_with(config: &ExperimentConfig, observer: &dyn BatchObserver) -> Table3 {
    let kernels = config.kernels();
    let scalars: Vec<Function> = kernels.iter().map(|k| k.function()).collect();
    let mut llm = config.llm();
    let fsm_config = FsmConfig {
        max_attempts: 10,
        checksum: config.checksum.clone(),
        llm: config.llm_config(),
    };

    // The FSM's feedback loop is sequential; the symbolic funnel over the
    // plausible candidates is where the wall-clock goes, and that part runs
    // as one engine batch.
    let fsm_results = fsm_candidate_batch(&scalars, &fsm_config, &mut llm);
    let mut job_indices: Vec<usize> = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();
    for (i, fsm) in fsm_results.into_iter().enumerate() {
        if let Some(candidate) = fsm.candidate {
            job_indices.push(i);
            jobs.push(Job::new(kernels[i].name, scalars[i].clone(), candidate));
        }
    }

    let accumulator = Table3Accumulator {
        job_indices: &job_indices,
        jobs: &jobs,
        kernels: &kernels,
        verdicts: Mutex::new(
            kernels
                .iter()
                .map(|kernel| KernelVerdict {
                    name: kernel.name,
                    category: kernel.category,
                    verdict: Equivalence::NotEquivalent,
                    stage: Stage::Checksum,
                    candidate: None,
                })
                .collect(),
        ),
    };
    let adaptive = config
        .engine()
        .run_batch_adaptive(&jobs, &TeeObserver(&accumulator, observer));
    let verdicts = accumulator.verdicts.into_inner().unwrap();
    let batch = adaptive.report;
    let funnel = batch.funnel();
    let tuned_budgets = config.adaptive.as_ref().map(|_| adaptive.tuned);

    // Funnel accounting in the paper's style.
    let total = kernels.len();
    let refuted_by_checksum = verdicts
        .iter()
        .filter(|v| v.stage == Stage::Checksum && v.verdict == Equivalence::NotEquivalent)
        .count();
    let plausible = total - refuted_by_checksum;
    let mut rows = vec![Table3Row {
        technique: "Checksum",
        total,
        equivalent: 0,
        not_equivalent: refuted_by_checksum,
        inconclusive: plausible,
    }];
    let mut remaining = plausible;
    for (stage, label) in [
        (Stage::Alive2, "Alive2"),
        (Stage::CUnroll, "C-Unroll"),
        (Stage::Splitting, "Splitting"),
    ] {
        let equivalent = verdicts
            .iter()
            .filter(|v| v.stage == stage && v.verdict == Equivalence::Equivalent)
            .count();
        let not_equivalent = verdicts
            .iter()
            .filter(|v| v.stage == stage && v.verdict == Equivalence::NotEquivalent)
            .count();
        let next_remaining = remaining - equivalent - not_equivalent;
        rows.push(Table3Row {
            technique: label,
            total: remaining,
            equivalent,
            not_equivalent,
            inconclusive: next_remaining,
        });
        remaining = next_remaining;
    }
    let all_equiv: usize = rows.iter().map(|r| r.equivalent).sum();
    let all_not: usize = rows.iter().map(|r| r.not_equivalent).sum();
    rows.push(Table3Row {
        technique: "All",
        total,
        equivalent: all_equiv,
        not_equivalent: all_not,
        inconclusive: total - all_equiv - all_not,
    });

    Table3 {
        rows,
        verdicts,
        suite: total,
        batch,
        funnel,
        tuned_budgets,
    }
}

// ---------------------------------------------------------------------------
// Figure 1(c) and Figure 6: run-time speedups.
// ---------------------------------------------------------------------------

/// One bar group of Figure 6 (or Figure 1(c) for s212).
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Kernel name.
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// Speedup of the LLM candidate over (GCC, Clang, ICC).
    pub speedup: HashMap<Compiler, f64>,
}

/// The speedup figure reproduction.
#[derive(Debug, Clone)]
pub struct SpeedupFigure {
    /// One row per verified kernel.
    pub rows: Vec<SpeedupRow>,
}

impl SpeedupFigure {
    /// Renders `kernel<TAB>category<TAB>gcc<TAB>clang<TAB>icc` rows.
    pub fn render(&self) -> String {
        let mut out = String::from("test\tcategory\tvs GCC\tvs Clang\tvs ICC\n");
        for row in &self.rows {
            out += &format!(
                "{}\t{}\t{:.2}\t{:.2}\t{:.2}\n",
                row.name,
                row.category.label(),
                row.speedup[&Compiler::Gcc],
                row.speedup[&Compiler::Clang],
                row.speedup[&Compiler::Icc],
            );
        }
        out
    }

    /// The geometric-mean speedup per compiler, a convenient summary.
    pub fn geomean(&self) -> HashMap<Compiler, f64> {
        let mut out = HashMap::new();
        for compiler in Compiler::all() {
            let logs: f64 = self
                .rows
                .iter()
                .map(|r| r.speedup[&compiler].max(1e-6).ln())
                .sum();
            let count = self.rows.len().max(1) as f64;
            out.insert(compiler, (logs / count).exp());
        }
        out
    }
}

/// Computes Figure 6: speedups of verified candidates over the baselines.
/// `verdicts` normally comes from [`table3`]; only kernels with an
/// `Equivalent` verdict and a candidate are plotted (57 of 149 in the paper).
pub fn figure6(config: &ExperimentConfig, verdicts: &[KernelVerdict]) -> SpeedupFigure {
    figure6_with(config, verdicts, &NoopObserver)
}

/// [`figure6`], streaming one row per kernel to `observer` as the cost model
/// finishes it.
///
/// Figure 6 runs no verification of its own (its inputs are already
/// verified), so each completed row is reported as a synthesized
/// [`BatchObserver::job_finished`] event: the verdict and stage are the
/// kernel's Table 3 result, `detail` carries the rendered speedups, and
/// there are no traces.
pub fn figure6_with(
    config: &ExperimentConfig,
    verdicts: &[KernelVerdict],
    observer: &dyn BatchObserver,
) -> SpeedupFigure {
    let costs = CostTable::default();
    let verified: Vec<&KernelVerdict> = verdicts
        .iter()
        .filter(|v| {
            v.verdict == Equivalence::Equivalent
                && v.candidate.is_some()
                && lv_tsvc::kernel(v.name).is_some()
        })
        .collect();
    let indexed: Vec<(usize, &KernelVerdict)> = verified.into_iter().enumerate().collect();
    // Cost-model evaluations are independent per kernel: reuse the engine's
    // work-queue pattern to compute the rows in parallel.
    let rows = parallel_map(config.threads, &indexed, |&(index, v)| {
        let row_start = Instant::now();
        let candidate = v.candidate.as_ref().expect("filtered above");
        let scalar = lv_tsvc::kernel(v.name).expect("filtered above").function();
        let mut speedup = HashMap::new();
        for compiler in Compiler::all() {
            speedup.insert(
                compiler,
                speedup_over(
                    &CompilerProfile::of(compiler),
                    &scalar,
                    candidate,
                    config.performance_n,
                    &costs,
                ),
            );
        }
        let row = SpeedupRow {
            name: v.name,
            category: v.category,
            speedup,
        };
        observer.job_finished(
            index,
            &JobReport {
                label: v.name.to_string(),
                verdict: v.verdict,
                stage: v.stage,
                detail: format!(
                    "vs GCC {:.2}, vs Clang {:.2}, vs ICC {:.2}",
                    row.speedup[&Compiler::Gcc],
                    row.speedup[&Compiler::Clang],
                    row.speedup[&Compiler::Icc],
                ),
                checksum: None,
                traces: Vec::new(),
                wall: row_start.elapsed(),
                cache_hit: false,
                reuse: Default::default(),
                simplify: Default::default(),
            },
        );
        row
    });
    SpeedupFigure { rows }
}

/// Computes Figure 1(c): the s212 motivating example's speedups.
///
/// The candidate is first verified through the engine's full cascade — the
/// figure only plots formally verified code, so an unverified candidate
/// (possible under severely reduced solver budgets) yields an empty figure
/// rather than a panic.
pub fn figure1(config: &ExperimentConfig) -> SpeedupFigure {
    figure1_with(config, &NoopObserver)
}

/// [`figure1`], streaming the verification of the single s212 job (and its
/// stage-by-stage progress) to `observer`.
pub fn figure1_with(config: &ExperimentConfig, observer: &dyn BatchObserver) -> SpeedupFigure {
    let kernel = lv_tsvc::kernel("s212").expect("s212 is part of the suite");
    let scalar = kernel.function();
    let candidate =
        lv_agents::vectorize_correct(&scalar).expect("s212 is a supported kernel shape");
    let jobs = [Job::new("s212", scalar.clone(), candidate.clone())];
    let batch = config.engine().run_batch_observed(&jobs, observer);
    let report = &batch.jobs[0];
    if report.verdict != Equivalence::Equivalent {
        return SpeedupFigure { rows: Vec::new() };
    }
    let costs = CostTable::default();
    let mut speedup = HashMap::new();
    for compiler in Compiler::all() {
        speedup.insert(
            compiler,
            speedup_over(
                &CompilerProfile::of(compiler),
                &scalar,
                &candidate,
                config.performance_n,
                &costs,
            ),
        );
    }
    SpeedupFigure {
        rows: vec![SpeedupRow {
            name: "s212",
            category: Category::Dependence,
            speedup,
        }],
    }
}

// ---------------------------------------------------------------------------
// Section 4.4: multi-agent FSM evaluation.
// ---------------------------------------------------------------------------

/// The FSM-vs-plain-sampling comparison of Section 4.4.
#[derive(Debug, Clone)]
pub struct FsmEvaluation {
    /// Kernels plausible with one *plain* completion (no feedback).
    pub plain_single_shot: usize,
    /// Kernels plausible with one FSM invocation (dependence feedback).
    pub fsm_single_shot: usize,
    /// Kernels solved by the FSM within its ten-attempt budget.
    pub fsm_ten_attempts: usize,
    /// Kernels that needed more than one FSM attempt.
    pub repaired: usize,
    /// Maximum number of attempts used by any solved kernel.
    pub max_attempts_used: u32,
    /// Number of kernels evaluated.
    pub suite: usize,
}

impl FsmEvaluation {
    /// Renders the summary lines of Section 4.4.
    pub fn render(&self) -> String {
        format!(
            "plain single completion plausible: {} / {}\nFSM single invocation plausible: {} / {}\nFSM (10 attempts) plausible: {} / {}\nrepaired via feedback loop: {}\nmax attempts used: {}",
            self.plain_single_shot,
            self.suite,
            self.fsm_single_shot,
            self.suite,
            self.fsm_ten_attempts,
            self.suite,
            self.repaired,
            self.max_attempts_used
        )
    }
}

/// Runs the FSM evaluation.
pub fn fsm_evaluation(config: &ExperimentConfig) -> FsmEvaluation {
    fsm_evaluation_with(config, &NoopObserver)
}

/// [`fsm_evaluation`], streaming the plain-sampling classification jobs to
/// `observer` (the FSM feedback loop itself is sequential per kernel and
/// produces no engine events).
pub fn fsm_evaluation_with(
    config: &ExperimentConfig,
    observer: &dyn BatchObserver,
) -> FsmEvaluation {
    let kernels = config.kernels();
    let scalars: Vec<Function> = kernels.iter().map(|k| k.function()).collect();

    // Plain single-shot sampling, classified by the engine's checksum stage;
    // the plausible count accumulates as jobs finish.
    let batch = sample_completion_batch(&scalars, &config.llm_config(), 1);
    let jobs = completion_jobs(&batch, &kernels, &scalars);
    let slots: Vec<(usize, usize)> = batch.jobs().map(|(i, j, _)| (i, j)).collect();
    let accumulator = ClassAccumulator::new(&slots, kernels.len());
    config
        .checksum_engine()
        .run_batch_observed(&jobs, &TeeObserver(&accumulator, observer));
    let plain = accumulator
        .into_outcomes()
        .iter()
        .flatten()
        .filter(|&&o| o == 0)
        .count();

    // The FSM's checksum feedback loop is inherently sequential per kernel.
    let mut llm = config.llm();
    let fsm_config = FsmConfig {
        max_attempts: 10,
        checksum: config.checksum.clone(),
        llm: config.llm_config(),
    };
    let mut fsm_single = 0usize;
    let mut fsm_ten = 0usize;
    let mut repaired = 0usize;
    let mut max_attempts = 0u32;
    for result in fsm_candidate_batch(&scalars, &fsm_config, &mut llm) {
        if result.succeeded() {
            fsm_ten += 1;
            if result.attempts == 1 {
                fsm_single += 1;
            } else {
                repaired += 1;
            }
            max_attempts = max_attempts.max(result.attempts);
        }
    }

    FsmEvaluation {
        plain_single_shot: plain,
        fsm_single_shot: fsm_single,
        fsm_ten_attempts: fsm_ten,
        repaired,
        max_attempts_used: max_attempts,
        suite: kernels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(names: &[&str]) -> ExperimentConfig {
        ExperimentConfig {
            kernel_names: Some(names.iter().map(|s| s.to_string()).collect()),
            checksum: ChecksumConfig {
                trials: 1,
                n: 40,
                ..ChecksumConfig::default()
            },
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn table2_counts_are_consistent() {
        let config = small_config(&["s000", "s112", "s212", "s278", "vsumr"]);
        let table = table2(&config, &[1, 3]);
        assert_eq!(table.suite, 5);
        for col in &table.columns {
            assert_eq!(col.plausible + col.not_equivalent + col.cannot_compile, 5);
        }
        // More completions can only help.
        assert!(table.columns[1].plausible >= table.columns[0].plausible);
        assert!(table.render().contains("Plausible"));
    }

    #[test]
    fn figure5_is_monotone_in_k() {
        let config = small_config(&["s000", "s212", "s2711"]);
        let fig = figure5(&config, 6, &[1, 2, 4, 6]);
        for pair in fig.points.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9, "{:?}", fig.points);
        }
        assert!(fig.render().contains('\t'));
    }

    #[test]
    fn table3_funnel_adds_up() {
        let config = small_config(&["s000", "s112", "s212", "vsumr", "s278"]);
        let table = table3(&config);
        let all = table.rows.last().unwrap();
        assert_eq!(all.total, 5);
        assert_eq!(all.equivalent + all.not_equivalent + all.inconclusive, 5);
        assert!(all.equivalent >= 1, "{}", table.render());
        // Verified kernels feed Figure 6.
        let fig = figure6(&config, &table.verdicts);
        assert_eq!(fig.rows.len(), all.equivalent);
    }

    #[test]
    fn figure1_matches_paper_shape() {
        let fig = figure1(&ExperimentConfig::default());
        let row = &fig.rows[0];
        assert!(row.speedup[&Compiler::Gcc] > row.speedup[&Compiler::Icc]);
        assert!(row.speedup[&Compiler::Clang] > row.speedup[&Compiler::Icc]);
        assert!(fig.render().contains("s212"));
        assert!(fig.geomean()[&Compiler::Gcc] > 1.0);
    }

    #[test]
    fn fsm_helps_over_plain_sampling() {
        let config = small_config(&["s000", "s112", "s212", "s2711", "s274", "vsumr"]);
        let eval = fsm_evaluation(&config);
        assert!(eval.fsm_ten_attempts >= eval.fsm_single_shot);
        assert!(eval.fsm_ten_attempts >= eval.plain_single_shot);
        assert!(eval.render().contains("FSM"));
    }

    #[test]
    fn scaling_helper() {
        assert_eq!(scale_to_paper(31, 62), 75);
        assert_eq!(scale_to_paper(0, 62), 0);
        assert_eq!(scale_to_paper(62, 62), 149);
    }
}
