//! Streaming observation of batch runs.
//!
//! A [`BatchObserver`] receives callbacks from
//! [`VerificationEngine::run_batch_observed`](crate::VerificationEngine::run_batch_observed)
//! *as the worker pool makes progress*: when a job is claimed, after each
//! cascade stage, and when a job's verdict is final. This is what lets a
//! long sweep render its table incrementally instead of sitting silent until
//! the whole [`BatchReport`](crate::BatchReport) is assembled — every
//! experiment driver in [`crate::experiments`] has a `*_with` variant that
//! forwards its engine events to a caller-supplied observer.
//!
//! Callbacks are invoked from worker threads (hence `Send + Sync + &self`)
//! and in *completion* order, which is nondeterministic under `threads > 1`;
//! the job `index` parameter identifies the job within its batch. Observers
//! must not block for long — the worker that fired the callback cannot claim
//! its next job until the callback returns.

use crate::engine::{Job, JobReport, StageTrace};
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Callbacks fired by the engine while a batch is running.
///
/// All methods have empty defaults, so an observer only implements the
/// events it cares about.
pub trait BatchObserver: Send + Sync {
    /// A worker claimed job `index` and is about to run its cascade.
    fn job_started(&self, index: usize, job: &Job) {
        let _ = (index, job);
    }

    /// One cascade stage of job `index` finished (conclusive or not). Not
    /// fired for cache hits, which run no stages.
    fn stage_finished(&self, index: usize, job: &Job, trace: &StageTrace) {
        let _ = (index, job, trace);
    }

    /// Job `index` has its final verdict.
    fn job_finished(&self, index: usize, report: &JobReport) {
        let _ = (index, report);
    }
}

/// The do-nothing observer behind the non-observed engine entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl BatchObserver for NoopObserver {}

/// Counts events and cache hits; useful for tests and for asserting that a
/// warmed cache runs zero stages.
#[derive(Debug, Default)]
pub struct CountingObserver {
    /// Jobs started (cache hits are started too).
    pub started: AtomicUsize,
    /// Stage executions observed across all jobs.
    pub stages: AtomicUsize,
    /// Jobs finished.
    pub finished: AtomicUsize,
    /// Jobs answered from the verdict cache.
    pub cache_hits: AtomicUsize,
}

impl CountingObserver {
    /// A fresh counter.
    pub fn new() -> CountingObserver {
        CountingObserver::default()
    }

    /// Stage executions observed so far.
    pub fn stage_count(&self) -> usize {
        self.stages.load(Ordering::Relaxed)
    }

    /// Jobs answered from the verdict cache so far.
    pub fn cache_hit_count(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Jobs finished so far.
    pub fn finished_count(&self) -> usize {
        self.finished.load(Ordering::Relaxed)
    }
}

impl BatchObserver for CountingObserver {
    fn job_started(&self, _index: usize, _job: &Job) {
        self.started.fetch_add(1, Ordering::Relaxed);
    }

    fn stage_finished(&self, _index: usize, _job: &Job, _trace: &StageTrace) {
        self.stages.fetch_add(1, Ordering::Relaxed);
    }

    fn job_finished(&self, _index: usize, report: &JobReport) {
        self.finished.fetch_add(1, Ordering::Relaxed);
        if report.cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Renders one line per finished job to a writer, in completion order — the
/// incremental view of a sweep's table.
///
/// ```text
/// [ 3/62] s112: Equivalent @ C-Unroll (102ms)
/// [ 4/62] s000: Equivalent @ Alive2 (cached)
/// ```
#[derive(Debug)]
pub struct StreamObserver<W: Write + Send> {
    out: Mutex<W>,
    total: usize,
    done: AtomicUsize,
}

impl<W: Write + Send> StreamObserver<W> {
    /// Streams to `out`; `total` is the expected job count (used only for
    /// the `[done/total]` prefix).
    pub fn new(out: W, total: usize) -> StreamObserver<W> {
        StreamObserver {
            out: Mutex::new(out),
            total,
            done: AtomicUsize::new(0),
        }
    }

    /// Consumes the observer and returns the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap()
    }
}

impl<W: Write + Send> BatchObserver for StreamObserver<W> {
    fn job_finished(&self, _index: usize, report: &JobReport) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let suffix = if report.cache_hit {
            "(cached)".to_string()
        } else {
            format!("({}ms)", report.wall.as_millis())
        };
        let mut out = self.out.lock().unwrap();
        // A failed write must not poison the batch; progress output is
        // best-effort.
        let _ = writeln!(
            out,
            "[{:>2}/{}] {}: {:?} @ {} {}",
            done,
            self.total,
            report.label,
            report.verdict,
            report.stage.label(),
            suffix
        );
    }
}

/// Invokes a closure for every finished job — the adapter that lets a
/// caller stream verdicts somewhere custom (the verification service
/// forwards each one onto its client's socket) without writing an observer
/// type.
pub struct CallbackObserver<F: Fn(usize, &JobReport) + Send + Sync> {
    callback: F,
}

impl<F: Fn(usize, &JobReport) + Send + Sync> CallbackObserver<F> {
    /// Wraps `callback`, which receives `(index, report)` for each
    /// finished job, in completion order, from worker threads.
    pub fn new(callback: F) -> CallbackObserver<F> {
        CallbackObserver { callback }
    }
}

impl<F: Fn(usize, &JobReport) + Send + Sync> BatchObserver for CallbackObserver<F> {
    fn job_finished(&self, index: usize, report: &JobReport) {
        (self.callback)(index, report);
    }
}

impl<F: Fn(usize, &JobReport) + Send + Sync> std::fmt::Debug for CallbackObserver<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CallbackObserver")
    }
}

/// Forwards every event to two observers — how the experiment drivers
/// combine their internal accumulators with the caller's observer.
#[derive(Debug, Clone, Copy)]
pub struct TeeObserver<'a>(pub &'a dyn BatchObserver, pub &'a dyn BatchObserver);

impl BatchObserver for TeeObserver<'_> {
    fn job_started(&self, index: usize, job: &Job) {
        self.0.job_started(index, job);
        self.1.job_started(index, job);
    }

    fn stage_finished(&self, index: usize, job: &Job, trace: &StageTrace) {
        self.0.stage_finished(index, job, trace);
        self.1.stage_finished(index, job, trace);
    }

    fn job_finished(&self, index: usize, report: &JobReport) {
        self.0.job_finished(index, report);
        self.1.job_finished(index, report);
    }
}

/// Forwards events with job indices shifted by a fixed offset — used by the
/// adaptive engine path, which runs a batch as two sub-batches but reports
/// indices in the original job order.
#[derive(Debug, Clone, Copy)]
pub struct OffsetObserver<'a> {
    inner: &'a dyn BatchObserver,
    offset: usize,
}

impl<'a> OffsetObserver<'a> {
    /// Wraps `inner`, adding `offset` to every job index.
    pub fn new(inner: &'a dyn BatchObserver, offset: usize) -> OffsetObserver<'a> {
        OffsetObserver { inner, offset }
    }
}

impl BatchObserver for OffsetObserver<'_> {
    fn job_started(&self, index: usize, job: &Job) {
        self.inner.job_started(index + self.offset, job);
    }

    fn stage_finished(&self, index: usize, job: &Job, trace: &StageTrace) {
        self.inner.stage_finished(index + self.offset, job, trace);
    }

    fn job_finished(&self, index: usize, report: &JobReport) {
        self.inner.job_finished(index + self.offset, report);
    }
}

/// Forwards events with each local batch index replaced by
/// `indices[local]` — the generalization of [`OffsetObserver`] used by the
/// engine's streaming fallback and the shard runner, which run a sub-batch
/// whose positions in the original job order are arbitrary.
#[derive(Debug, Clone, Copy)]
pub struct IndexMapObserver<'a> {
    inner: &'a dyn BatchObserver,
    indices: &'a [usize],
}

impl<'a> IndexMapObserver<'a> {
    /// Wraps `inner`, mapping local index `i` to `indices[i]`. Events with
    /// a local index outside `indices` panic — the mapping must cover the
    /// sub-batch.
    pub fn new(inner: &'a dyn BatchObserver, indices: &'a [usize]) -> IndexMapObserver<'a> {
        IndexMapObserver { inner, indices }
    }
}

impl BatchObserver for IndexMapObserver<'_> {
    fn job_started(&self, index: usize, job: &Job) {
        self.inner.job_started(self.indices[index], job);
    }

    fn stage_finished(&self, index: usize, job: &Job, trace: &StageTrace) {
        self.inner.stage_finished(self.indices[index], job, trace);
    }

    fn job_finished(&self, index: usize, report: &JobReport) {
        self.inner.job_finished(self.indices[index], report);
    }
}

impl std::fmt::Debug for dyn BatchObserver + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn BatchObserver")
    }
}
