//! The client side: connects, submits jobs as printed C source, and
//! collects the streamed verdicts with strict cross-checking — a verdict
//! that is out of range, duplicated, or mislabeled, or a batch that closes
//! short, is a typed error, never silently wrong data.

use crate::engine::Job;
use crate::service::wire::{
    check_magic, read_message, write_message, Message, ServiceStatus, VerdictFrame, WIRE_MAGIC,
    WIRE_VERSION,
};
use crate::service::ServiceError;
use lv_cir::ast::Function;
use lv_cir::print_function;
use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One server-side generation request: the daemon samples `k` completions
/// for `scalar` with per-cell seeds derived from `seed` and verifies them
/// overlapped, streaming back `k` verdicts labeled `label#0` … `label#k-1`.
#[derive(Debug, Clone)]
pub struct GenerationRequest {
    /// Label prefix for the generated jobs.
    pub label: String,
    /// The scalar kernel to generate candidates for.
    pub scalar: Function,
    /// Completions to sample.
    pub k: u32,
    /// Base RNG seed the per-cell seeds derive from.
    pub seed: u64,
}

/// A connection to a [`VerificationService`](crate::VerificationService).
#[derive(Debug)]
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    fingerprint: u64,
}

impl ServiceClient {
    /// Connects and performs the magic + hello handshake, failing with a
    /// typed error on a protocol or version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceClient, ServiceError> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut out = writer.try_clone()?;
        out.write_all(&WIRE_MAGIC)?;
        write_message(
            &mut out,
            &Message::Hello {
                version: WIRE_VERSION,
            },
        )?;
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        check_magic(&magic)?;
        let fingerprint = match read_message(&mut reader)? {
            Some(Message::ServerHello {
                version: WIRE_VERSION,
                fingerprint,
            }) => fingerprint,
            Some(Message::ServerHello { version, .. }) => {
                return Err(crate::service::WireError::VersionMismatch {
                    theirs: version,
                    ours: WIRE_VERSION,
                }
                .into())
            }
            Some(Message::Error { detail }) => return Err(ServiceError::Remote(detail)),
            Some(other) => {
                return Err(ServiceError::Protocol(format!(
                    "expected server hello, got {:?}",
                    other
                )))
            }
            None => {
                return Err(ServiceError::Protocol(
                    "server closed during handshake".into(),
                ))
            }
        };
        Ok(ServiceClient {
            reader,
            writer,
            fingerprint,
        })
    }

    /// The server engine configuration's semantic fingerprint, from the
    /// handshake.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Submits `jobs` and blocks until every verdict arrived, returning
    /// them in submission order. The stream is cross-checked frame by
    /// frame: an out-of-range index, a duplicate slot, a label that does
    /// not match the submitted job, a short batch, or a mid-batch close
    /// each fail with a typed error.
    pub fn submit(&mut self, jobs: &[Job]) -> Result<Vec<VerdictFrame>, ServiceError> {
        for job in jobs {
            write_message(
                &mut self.writer,
                &Message::Submit {
                    label: job.label.clone(),
                    scalar: print_function(&job.scalar),
                    candidate: print_function(&job.candidate),
                },
            )?;
        }
        let expected: Vec<String> = jobs.iter().map(|job| job.label.clone()).collect();
        self.run_and_collect(&expected)
    }

    /// Submits generation requests and blocks until every generated
    /// candidate's verdict arrived, in slot order (request order, `k`
    /// slots per request labeled `label#j`). Generation and verification
    /// overlap on the daemon; the stream is cross-checked like
    /// [`submit`](Self::submit).
    pub fn submit_generation(
        &mut self,
        requests: &[GenerationRequest],
    ) -> Result<Vec<VerdictFrame>, ServiceError> {
        let mut expected = Vec::new();
        for request in requests {
            write_message(
                &mut self.writer,
                &Message::SubmitGenerate {
                    label: request.label.clone(),
                    scalar: print_function(&request.scalar),
                    k: request.k,
                    seed: request.seed,
                },
            )?;
            for j in 0..request.k {
                expected.push(format!("{}#{}", request.label, j));
            }
        }
        self.run_and_collect(&expected)
    }

    /// Sends [`Message::Run`] over `expected.len()` slots and collects the
    /// streamed verdicts, strictly cross-checked frame by frame: an
    /// out-of-range index, a duplicate slot, a label that does not match
    /// the expected slot label, a short batch, or a mid-batch close each
    /// fail with a typed error.
    fn run_and_collect(&mut self, expected: &[String]) -> Result<Vec<VerdictFrame>, ServiceError> {
        write_message(
            &mut self.writer,
            &Message::Run {
                count: expected.len() as u32,
            },
        )?;
        self.writer.flush()?;

        let mut slots: Vec<Option<VerdictFrame>> = vec![None; expected.len()];
        loop {
            match read_message(&mut self.reader)? {
                Some(Message::Verdict(frame)) => {
                    let index = frame.index as usize;
                    let label = expected.get(index).ok_or_else(|| {
                        ServiceError::Protocol(format!(
                            "verdict index {} out of range for a {}-job batch",
                            index,
                            expected.len()
                        ))
                    })?;
                    if frame.label != *label {
                        return Err(ServiceError::Protocol(format!(
                            "verdict {} labeled '{}' but job {} is '{}'",
                            index, frame.label, index, label
                        )));
                    }
                    if slots[index].is_some() {
                        return Err(ServiceError::Protocol(format!(
                            "duplicate verdict for job {} ('{}')",
                            index, frame.label
                        )));
                    }
                    slots[index] = Some(frame);
                }
                Some(Message::Done { count }) => {
                    if count as usize != expected.len() {
                        return Err(ServiceError::Protocol(format!(
                            "batch closed with {} verdict(s), {} submitted",
                            count,
                            expected.len()
                        )));
                    }
                    break;
                }
                Some(Message::Error { detail }) => return Err(ServiceError::Remote(detail)),
                Some(other) => {
                    return Err(ServiceError::Protocol(format!(
                        "unexpected server message {:?}",
                        other
                    )))
                }
                None => {
                    return Err(ServiceError::Protocol(
                        "server closed the connection mid-batch".into(),
                    ))
                }
            }
        }
        let mut verdicts = Vec::with_capacity(expected.len());
        for (index, slot) in slots.into_iter().enumerate() {
            verdicts.push(slot.ok_or_else(|| {
                ServiceError::Protocol(format!("no verdict arrived for job {}", index))
            })?);
        }
        Ok(verdicts)
    }

    /// Fetches the daemon's live counters.
    pub fn status(&mut self) -> Result<ServiceStatus, ServiceError> {
        write_message(&mut self.writer, &Message::Status)?;
        self.writer.flush()?;
        match read_message(&mut self.reader)? {
            Some(Message::StatusReport(status)) => Ok(status),
            Some(Message::Error { detail }) => Err(ServiceError::Remote(detail)),
            Some(other) => Err(ServiceError::Protocol(format!(
                "expected status report, got {:?}",
                other
            ))),
            None => Err(ServiceError::Protocol(
                "server closed before the status report".into(),
            )),
        }
    }

    /// Asks the daemon to shut down and waits for the acknowledgement,
    /// consuming the connection.
    pub fn shutdown(mut self) -> Result<(), ServiceError> {
        write_message(&mut self.writer, &Message::Shutdown)?;
        self.writer.flush()?;
        match read_message(&mut self.reader)? {
            Some(Message::ShutdownAck) => Ok(()),
            Some(Message::Error { detail }) => Err(ServiceError::Remote(detail)),
            Some(other) => Err(ServiceError::Protocol(format!(
                "expected shutdown ack, got {:?}",
                other
            ))),
            None => Err(ServiceError::Protocol(
                "server closed before acknowledging shutdown".into(),
            )),
        }
    }
}
