//! The framed binary wire protocol of the verification service.
//!
//! Every message travels in one **CRC32 frame** — the binary journal's
//! (`LVBJ`) framing idiom lifted onto a socket:
//!
//! ```text
//! [payload length u32 LE][payload bytes][crc32(payload) u32 LE]
//! ```
//!
//! and each side opens its half of the connection by sending the raw
//! 4-byte [`WIRE_MAGIC`] before its first frame, so a stray client that
//! dials the port with a different protocol is rejected on byte one. Frame
//! payloads are tagged messages (byte 0 is the [`Message`] variant tag,
//! client tags in `0x01..`, server tags in `0x81..`); verdict payloads
//! reuse the verdict cache's binary record codec, so a verdict travels in
//! exactly the bytes it is cached in.
//!
//! Decoding is strict, mirroring the cache snapshot and journal loaders: a
//! truncated frame, a CRC mismatch, an unknown tag, an out-of-range enum
//! byte, or trailing payload bytes are all typed [`WireError`]s — never a
//! guessed or silently dropped message. `crates/core/tests/service_wire.rs`
//! pins this exhaustively (truncation and a flip at every byte offset).

use crate::cache::binary::{decode_verdict, encode_verdict};
use crate::cache::CachedVerdict;
use crate::journal::crc32;
use crate::service::ServiceError;
use serde::bin::{self, Reader};
use std::io::{Read, Write};

/// The 4-byte connection preamble each side sends before its first frame.
pub const WIRE_MAGIC: [u8; 4] = *b"LVSV";

/// The wire-protocol version, exchanged in [`Message::Hello`] /
/// [`Message::ServerHello`]; both sides reject a mismatch. Version 2 added
/// the simplification counters to [`Message::StatusReport`].
pub const WIRE_VERSION: u32 = 2;

/// Upper bound on a frame's payload length. A length prefix beyond this is
/// rejected before any allocation — a corrupt or hostile length field must
/// not make the daemon try to buffer gigabytes.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Everything that can be wrong with wire bytes, typed. Mirrors
/// [`SnapshotError`](crate::cache::SnapshotError) for the cache forms: a
/// corrupt frame is always one of these, never a wrong message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The connection preamble was not [`WIRE_MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different [`WIRE_VERSION`].
    VersionMismatch {
        /// The version the peer announced.
        theirs: u32,
        /// The version this build speaks.
        ours: u32,
    },
    /// The bytes end before the frame does (mid-length, mid-payload, or
    /// mid-CRC).
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The frame's recorded CRC32 does not match the payload.
    FrameCrc {
        /// CRC recorded in the frame.
        recorded: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The payload's leading message tag is not one this build knows.
    UnknownTag(u8),
    /// The payload has bytes left over after its message decoded.
    TrailingBytes(usize),
    /// A field inside the payload failed to decode (truncated string,
    /// out-of-range enum byte, non-UTF-8 text, …).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(magic) => {
                write!(f, "bad connection magic {:02x?} (expected \"LVSV\")", magic)
            }
            WireError::VersionMismatch { theirs, ours } => write!(
                f,
                "wire protocol version mismatch: peer speaks {}, this build speaks {}",
                theirs, ours
            ),
            WireError::Truncated { needed, have } => write!(
                f,
                "truncated frame: {} byte(s) present, {} needed",
                have, needed
            ),
            WireError::Oversized { len, max } => write!(
                f,
                "oversized frame: length prefix says {} bytes, limit is {}",
                len, max
            ),
            WireError::FrameCrc { recorded, computed } => write!(
                f,
                "frame checksum mismatch: recorded {:08x}, computed {:08x}",
                recorded, computed
            ),
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {:#04x}", tag),
            WireError::TrailingBytes(extra) => {
                write!(f, "{} trailing byte(s) after the message payload", extra)
            }
            WireError::Malformed(e) => write!(f, "malformed message payload: {}", e),
        }
    }
}

impl std::error::Error for WireError {}

/// Live daemon counters, as reported by [`Message::StatusReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStatus {
    /// Connections accepted since the daemon started.
    pub connections: u64,
    /// Jobs received over all connections.
    pub received: u64,
    /// Jobs answered (from the cache or by running stages).
    pub completed: u64,
    /// Jobs answered by the dedupe/admission pre-pass or the engine's own
    /// cache consultation — no stage ran for these.
    pub dedupe_hits: u64,
    /// Cascade stage executions across all admitted jobs.
    pub stages: u64,
    /// Generation-queue depth: completions accepted via
    /// [`Message::SubmitGenerate`] but not yet sampled. Nonzero while a
    /// generation batch is in flight — the observable sign that generation
    /// and verification are overlapping.
    pub generation_queued: u64,
    /// Completions sampled by the daemon's seeded generator since start.
    pub generated: u64,
    /// Variables eliminated by clause-database preprocessing across all
    /// admitted jobs (zero unless the daemon runs with
    /// [`EngineReuse::simplify`](crate::EngineReuse) enabled).
    pub vars_eliminated: u64,
    /// Clauses deleted by subsumption / inprocessing DB reduction.
    pub clauses_subsumed: u64,
    /// Clauses shortened by self-subsuming resolution / clause
    /// minimization.
    pub clauses_strengthened: u64,
}

/// One streamed verdict: the submission index and label it answers, whether
/// the dedupe path answered it, and the cached-verdict payload (the same
/// bytes the verdict cache stores).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictFrame {
    /// Index of the job within its submission batch.
    pub index: u32,
    /// The job's label, echoed back so the client can cross-check that no
    /// verdict was reordered or dropped.
    pub label: String,
    /// Whether the verdict came from the cache (dedupe) rather than a
    /// fresh cascade run.
    pub cache_hit: bool,
    /// The verdict payload.
    pub verdict: CachedVerdict,
}

/// The service's message vocabulary. Client → server tags live in `0x01..`,
/// server → client tags in `0x81..`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client hello: announces the client's wire version.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u32,
    },
    /// One verification job: a label plus the scalar and candidate
    /// functions as printed C source (the manifest's function exchange
    /// form — re-parsing yields a structurally equal AST, so content
    /// hashes and cache keys are unaffected).
    Submit {
        /// The job label.
        label: String,
        /// The scalar function, printed.
        scalar: String,
        /// The candidate function, printed.
        candidate: String,
    },
    /// One generation request: the daemon samples `k` seeded completions
    /// for the scalar kernel (per-cell seeds derived from `seed`, see
    /// [`lv_agents::derive_cell_seed`]) and verifies them, overlapped —
    /// candidates stream into the engine as they are sampled. Occupies `k`
    /// verdict slots labeled `label#0` … `label#k-1` in the current batch.
    SubmitGenerate {
        /// Label prefix for the generated jobs.
        label: String,
        /// The scalar function, printed.
        scalar: String,
        /// Completions to sample for this kernel.
        k: u32,
        /// Base RNG seed the per-cell seeds derive from.
        seed: u64,
    },
    /// Runs the pending submissions; `count` is the client's view of how
    /// many verdict slots it submitted (one per [`Message::Submit`], `k`
    /// per [`Message::SubmitGenerate`]), cross-checked server-side.
    Run {
        /// Expected pending verdict-slot count.
        count: u32,
    },
    /// Requests a [`Message::StatusReport`].
    Status,
    /// Asks the daemon to stop serving after acknowledging.
    Shutdown,
    /// Server hello: the server's wire version plus the engine
    /// configuration's semantic fingerprint, so a client can tell which
    /// cache-key space its verdicts live in.
    ServerHello {
        /// The server's [`WIRE_VERSION`].
        version: u32,
        /// [`EngineConfig::semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint)
        /// of the serving engine.
        fingerprint: u64,
    },
    /// One verdict, streamed as soon as it is known.
    Verdict(VerdictFrame),
    /// The batch is complete; `count` verdict frames were sent.
    Done {
        /// Verdicts streamed for this batch.
        count: u32,
    },
    /// The daemon's live counters.
    StatusReport(ServiceStatus),
    /// A server-side error for this connection (the daemon keeps serving
    /// other connections).
    Error {
        /// Human-readable cause.
        detail: String,
    },
    /// Acknowledges [`Message::Shutdown`]; the daemon exits its accept
    /// loop after sending this.
    ShutdownAck,
}

const TAG_HELLO: u8 = 0x01;
const TAG_SUBMIT: u8 = 0x02;
const TAG_RUN: u8 = 0x03;
const TAG_STATUS: u8 = 0x04;
const TAG_SHUTDOWN: u8 = 0x05;
const TAG_SUBMIT_GENERATE: u8 = 0x06;
const TAG_SERVER_HELLO: u8 = 0x81;
const TAG_VERDICT: u8 = 0x82;
const TAG_DONE: u8 = 0x83;
const TAG_STATUS_REPORT: u8 = 0x84;
const TAG_ERROR: u8 = 0x85;
const TAG_SHUTDOWN_ACK: u8 = 0x86;

impl Message {
    /// Appends the tagged payload bytes (no frame) to `buf`.
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Hello { version } => {
                bin::put_u8(buf, TAG_HELLO);
                bin::put_u32(buf, *version);
            }
            Message::Submit {
                label,
                scalar,
                candidate,
            } => {
                bin::put_u8(buf, TAG_SUBMIT);
                bin::put_str(buf, label);
                bin::put_str(buf, scalar);
                bin::put_str(buf, candidate);
            }
            Message::SubmitGenerate {
                label,
                scalar,
                k,
                seed,
            } => {
                bin::put_u8(buf, TAG_SUBMIT_GENERATE);
                bin::put_str(buf, label);
                bin::put_str(buf, scalar);
                bin::put_u32(buf, *k);
                bin::put_u64(buf, *seed);
            }
            Message::Run { count } => {
                bin::put_u8(buf, TAG_RUN);
                bin::put_u32(buf, *count);
            }
            Message::Status => bin::put_u8(buf, TAG_STATUS),
            Message::Shutdown => bin::put_u8(buf, TAG_SHUTDOWN),
            Message::ServerHello {
                version,
                fingerprint,
            } => {
                bin::put_u8(buf, TAG_SERVER_HELLO);
                bin::put_u32(buf, *version);
                bin::put_u64(buf, *fingerprint);
            }
            Message::Verdict(frame) => {
                bin::put_u8(buf, TAG_VERDICT);
                bin::put_u32(buf, frame.index);
                bin::put_str(buf, &frame.label);
                bin::put_u8(buf, u8::from(frame.cache_hit));
                encode_verdict(buf, &frame.verdict);
            }
            Message::Done { count } => {
                bin::put_u8(buf, TAG_DONE);
                bin::put_u32(buf, *count);
            }
            Message::StatusReport(status) => {
                bin::put_u8(buf, TAG_STATUS_REPORT);
                bin::put_u64(buf, status.connections);
                bin::put_u64(buf, status.received);
                bin::put_u64(buf, status.completed);
                bin::put_u64(buf, status.dedupe_hits);
                bin::put_u64(buf, status.stages);
                bin::put_u64(buf, status.generation_queued);
                bin::put_u64(buf, status.generated);
                bin::put_u64(buf, status.vars_eliminated);
                bin::put_u64(buf, status.clauses_subsumed);
                bin::put_u64(buf, status.clauses_strengthened);
            }
            Message::Error { detail } => {
                bin::put_u8(buf, TAG_ERROR);
                bin::put_str(buf, detail);
            }
            Message::ShutdownAck => bin::put_u8(buf, TAG_SHUTDOWN_ACK),
        }
    }

    /// Decodes a tagged payload, strictly: an unknown tag, a short field,
    /// an out-of-range enum byte, and trailing bytes are all typed errors.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(payload);
        let field = WireError::Malformed;
        let tag = r.u8().map_err(field)?;
        let message = match tag {
            TAG_HELLO => Message::Hello {
                version: r.u32().map_err(field)?,
            },
            TAG_SUBMIT => Message::Submit {
                label: r.str().map_err(field)?.to_string(),
                scalar: r.str().map_err(field)?.to_string(),
                candidate: r.str().map_err(field)?.to_string(),
            },
            TAG_SUBMIT_GENERATE => Message::SubmitGenerate {
                label: r.str().map_err(field)?.to_string(),
                scalar: r.str().map_err(field)?.to_string(),
                k: r.u32().map_err(field)?,
                seed: r.u64().map_err(field)?,
            },
            TAG_RUN => Message::Run {
                count: r.u32().map_err(field)?,
            },
            TAG_STATUS => Message::Status,
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_SERVER_HELLO => Message::ServerHello {
                version: r.u32().map_err(field)?,
                fingerprint: r.u64().map_err(field)?,
            },
            TAG_VERDICT => {
                let index = r.u32().map_err(field)?;
                let label = r.str().map_err(field)?.to_string();
                let cache_hit = match r.u8().map_err(field)? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "cache-hit flag must be 0 or 1, got {}",
                            other
                        )))
                    }
                };
                let verdict = decode_verdict(&mut r).map_err(field)?;
                Message::Verdict(VerdictFrame {
                    index,
                    label,
                    cache_hit,
                    verdict,
                })
            }
            TAG_DONE => Message::Done {
                count: r.u32().map_err(field)?,
            },
            TAG_STATUS_REPORT => Message::StatusReport(ServiceStatus {
                connections: r.u64().map_err(field)?,
                received: r.u64().map_err(field)?,
                completed: r.u64().map_err(field)?,
                dedupe_hits: r.u64().map_err(field)?,
                stages: r.u64().map_err(field)?,
                generation_queued: r.u64().map_err(field)?,
                generated: r.u64().map_err(field)?,
                vars_eliminated: r.u64().map_err(field)?,
                clauses_subsumed: r.u64().map_err(field)?,
                clauses_strengthened: r.u64().map_err(field)?,
            }),
            TAG_ERROR => Message::Error {
                detail: r.str().map_err(field)?.to_string(),
            },
            TAG_SHUTDOWN_ACK => Message::ShutdownAck,
            other => return Err(WireError::UnknownTag(other)),
        };
        if !r.is_empty() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(message)
    }
}

/// Validates a connection preamble.
pub fn check_magic(magic: &[u8; 4]) -> Result<(), WireError> {
    if *magic == WIRE_MAGIC {
        Ok(())
    } else {
        Err(WireError::BadMagic(*magic))
    }
}

/// Appends one complete frame (`[len][payload][crc]`) for `payload`.
pub fn encode_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    bin::put_u32(buf, payload.len() as u32);
    buf.extend_from_slice(payload);
    bin::put_u32(buf, crc32(payload));
}

/// Encodes `message` as one complete frame.
pub fn encode_message(message: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    message.encode_payload(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    encode_frame(&mut frame, &payload);
    frame
}

/// Decodes one frame from the front of `bytes`, verifying its CRC. Returns
/// the payload slice and the total bytes the frame consumed.
pub fn decode_frame(bytes: &[u8]) -> Result<(&[u8], usize), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            have: bytes.len(),
        });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let total = 4 + len + 4;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let payload = &bytes[4..4 + len];
    let recorded = u32::from_le_bytes(bytes[4 + len..total].try_into().expect("4 bytes"));
    let computed = crc32(payload);
    if recorded != computed {
        return Err(WireError::FrameCrc { recorded, computed });
    }
    Ok((payload, total))
}

/// Decodes `bytes` as exactly one whole message frame: the frame must
/// consume every byte, its CRC must verify, and the payload must decode
/// strictly. This is the pure form the corruption tests drive offline; the
/// stream readers below produce the same payloads from a socket.
pub fn decode_message_frame(bytes: &[u8]) -> Result<Message, WireError> {
    let (payload, consumed) = decode_frame(bytes)?;
    if consumed != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - consumed));
    }
    Message::decode(payload)
}

/// Writes one frame for `payload` as a single `write_all`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    encode_frame(&mut frame, payload);
    w.write_all(&frame)
}

/// Writes `message` as one frame.
pub fn write_message<W: Write>(w: &mut W, message: &Message) -> std::io::Result<()> {
    w.write_all(&encode_message(message))
}

/// Reads exactly `buf.len()` bytes, returning how many arrived before EOF.
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// Reads one frame's payload from a stream. `Ok(None)` is a clean EOF *at a
/// frame boundary* (the peer closed after its last complete frame); EOF
/// anywhere inside a frame is a typed [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ServiceError> {
    let mut len_bytes = [0u8; 4];
    let have = read_fully(r, &mut len_bytes)?;
    if have == 0 {
        return Ok(None);
    }
    if have < 4 {
        return Err(WireError::Truncated { needed: 4, have }.into());
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME_BYTES,
        }
        .into());
    }
    let mut rest = vec![0u8; len + 4];
    let have = read_fully(r, &mut rest)?;
    if have < rest.len() {
        return Err(WireError::Truncated {
            needed: 4 + len + 4,
            have: 4 + have,
        }
        .into());
    }
    let payload = rest[..len].to_vec();
    let recorded = u32::from_le_bytes(rest[len..].try_into().expect("4 bytes"));
    let computed = crc32(&payload);
    if recorded != computed {
        return Err(WireError::FrameCrc { recorded, computed }.into());
    }
    Ok(Some(payload))
}

/// Reads one message from a stream (`Ok(None)` on clean EOF, see
/// [`read_frame`]).
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, ServiceError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Message::decode(&payload)?)),
    }
}
