//! The long-running verification service: a loopback-first TCP daemon plus
//! client, surfaced on the CLI as `lv-sweep serve` / `submit` / `status`.
//!
//! The batch engine, verdict cache, profile-derived schedule, and observer
//! plumbing were all built batch-shaped; this module puts a socket in front
//! of them so verification traffic can arrive continuously instead of as
//! one offline sweep.
//!
//! # Wire framing
//!
//! The protocol is binary and CRC-framed, reusing the journal/snapshot
//! idioms (see [`wire`]): each side opens with the 4-byte [`WIRE_MAGIC`]
//! preamble, then exchanges frames of
//! `[payload length u32 LE][payload][crc32(payload) u32 LE]`. Frame
//! payloads are tagged [`Message`]s; verdicts travel as the verdict
//! cache's own binary record payload, so the byte the cache stores is the
//! byte the wire carries. Corruption anywhere — truncation, a flipped bit,
//! an unknown tag, trailing bytes — decodes to a typed [`WireError`],
//! never to a wrong or silently dropped verdict.
//!
//! # Dedupe / admission semantics
//!
//! A connection submits `(label, scalar, candidate)` jobs and then asks for
//! them to run. Before *any* stage runs, the daemon dedupes every submitted
//! job through the tiered content-addressed
//! [`VerdictCache`](crate::VerdictCache) under the serving engine's
//! [`semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint):
//! jobs already answered (by an earlier connection, an offline sweep that
//! produced the cache file, or a duplicate in the same batch) are answered
//! immediately from the cache with `cache_hit = true` and are never
//! admitted to the engine. Admitted jobs run on the existing scalar-affinity
//! worker pool with the configured [`StageSchedule`](crate::StageSchedule),
//! and their verdicts stream back incrementally through the
//! [`BatchObserver`](crate::BatchObserver) path as each job finishes —
//! the client does not wait for the batch. A warm resubmission of a whole
//! workload therefore answers entirely from the dedupe path with zero
//! stage executions, which `examples/service_sweep.rs` pins in CI.
//!
//! # Server-side generation
//!
//! A connection can also submit a [`GenerationRequest`] (`SubmitGenerate`:
//! a scalar kernel, a completion count `k`, and a base seed) instead of
//! finished candidates. The daemon expands it into `k` per-cell seeded
//! completions ([`lv_agents::derive_cell_seed`]) on a generator thread that
//! streams each job into the engine's bounded job channel as it is
//! produced — generation overlaps verification, and the verdicts are
//! bit-identical to submitting the precomputed candidate list. Queued and
//! completed generation counts surface in [`ServiceStatus`]
//! (`lv-sweep status` prints them as `gen queued` / `generated`).
//!
//! # Fault containment
//!
//! Connections are isolated: a client that sends garbage, speaks the wrong
//! version, or dies mid-frame terminates *its own* connection with a typed
//! error while the daemon keeps accepting (pinned by the client-kill test
//! in `tests/service_e2e.rs`). The daemon exits its accept loop only on an
//! explicit [`Message::Shutdown`].
//!
//! # Relation to shard work stealing
//!
//! The service answers *online* traffic on one host; the steal-claim
//! protocol in [`crate::shard`] (claim journals appended next to the shard
//! report journals, keyed on the same heartbeat liveness signal) covers the
//! *offline* multi-process sweep. See the shard module docs for the claim
//! format and its conflict rules.

pub mod client;
pub mod daemon;
pub mod wire;

pub use client::{GenerationRequest, ServiceClient};
pub use daemon::VerificationService;
pub use wire::{
    Message, ServiceStatus, VerdictFrame, WireError, MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION,
};

use std::io;

/// Everything that can go wrong on a service connection, typed.
#[derive(Debug)]
pub enum ServiceError {
    /// A socket-level failure (bind, accept, read, write).
    Io(io::Error),
    /// The peer's bytes violated the wire protocol.
    Wire(WireError),
    /// The peer's bytes framed correctly but violated the conversation
    /// protocol (message out of sequence, count mismatch, unparsable job
    /// source, …).
    Protocol(String),
    /// The server reported an error frame for this connection.
    Remote(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service i/o error: {}", e),
            ServiceError::Wire(e) => write!(f, "wire protocol error: {}", e),
            ServiceError::Protocol(e) => write!(f, "protocol violation: {}", e),
            ServiceError::Remote(e) => write!(f, "server reported: {}", e),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> ServiceError {
        ServiceError::Wire(e)
    }
}
