//! The serving side: a TCP listener that dedupes submissions through the
//! verdict cache, runs admitted jobs on the engine's worker pool, and
//! streams verdicts back as they finish.

use crate::cache::{CachedVerdict, VerdictCache};
use crate::engine::{job_cache_key, job_channel, EngineConfig, Job, VerificationEngine};
use crate::observer::{CallbackObserver, CountingObserver, TeeObserver};
use crate::service::wire::{
    check_magic, read_message, write_message, Message, ServiceStatus, VerdictFrame, WireError,
    WIRE_MAGIC, WIRE_VERSION,
};
use crate::service::ServiceError;
use lv_agents::{sample_completion_cell, LlmConfig};
use lv_cir::parse_function;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The verification daemon: owns the listener, the engine, and the shared
/// verdict cache every connection dedupes through.
///
/// [`serve_forever`](VerificationService::serve_forever) serves each
/// connection on its own thread and isolates their failures — a slow or
/// idle client never blocks a sibling connection — while the engine's
/// worker pool provides the parallelism *within* each submitted batch.
/// See the [module docs](crate::service) for the protocol.
pub struct VerificationService {
    listener: TcpListener,
    addr: SocketAddr,
    engine: VerificationEngine,
    cache: Arc<VerdictCache>,
    fingerprint: u64,
    connections: AtomicU64,
    received: AtomicU64,
    completed: AtomicU64,
    dedupe_hits: AtomicU64,
    stages: AtomicU64,
    generation_queued: AtomicU64,
    generated: AtomicU64,
    vars_eliminated: AtomicU64,
    clauses_subsumed: AtomicU64,
    clauses_strengthened: AtomicU64,
}

/// How many generated-but-unverified candidates a connection's streaming
/// run may hold in flight before generation blocks (backpressure).
const GENERATION_QUEUE_CAPACITY: usize = 32;

/// One unit of pending work on a connection: a fully specified job, or a
/// generation request still to be expanded into `k` seeded jobs.
enum Pending {
    Job(Job),
    Generate {
        label: String,
        scalar: lv_cir::ast::Function,
        k: u32,
        seed: u64,
    },
}

impl Pending {
    /// Verdict slots this entry occupies in its batch.
    fn slots(&self) -> usize {
        match self {
            Pending::Job(_) => 1,
            Pending::Generate { k, .. } => *k as usize,
        }
    }
}

impl std::fmt::Debug for VerificationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerificationService")
            .field("addr", &self.addr)
            .field("fingerprint", &self.fingerprint)
            .finish_non_exhaustive()
    }
}

impl VerificationService {
    /// Binds a daemon to `addr` (use `127.0.0.1:0` for an ephemeral
    /// loopback port) serving `config` with `cache` as the shared dedupe
    /// store. The cache is attached to the engine too, so admitted jobs
    /// persist their verdicts for later connections.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: EngineConfig,
        cache: Arc<VerdictCache>,
    ) -> Result<VerificationService, ServiceError> {
        let fingerprint = config.semantic_fingerprint();
        let engine = VerificationEngine::new(config.with_cache(cache.clone()));
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(VerificationService {
            listener,
            addr,
            engine,
            cache,
            fingerprint,
            connections: AtomicU64::new(0),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            dedupe_hits: AtomicU64::new(0),
            stages: AtomicU64::new(0),
            generation_queued: AtomicU64::new(0),
            generated: AtomicU64::new(0),
            vars_eliminated: AtomicU64::new(0),
            clauses_subsumed: AtomicU64::new(0),
            clauses_strengthened: AtomicU64::new(0),
        })
    }

    /// The address the daemon is actually listening on (resolves the
    /// ephemeral port of a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving engine configuration's semantic fingerprint — the
    /// cache-key space this daemon's verdicts live in.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The daemon's live counters.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            connections: self.connections.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            dedupe_hits: self.dedupe_hits.load(Ordering::Relaxed),
            stages: self.stages.load(Ordering::Relaxed),
            generation_queued: self.generation_queued.load(Ordering::Relaxed),
            generated: self.generated.load(Ordering::Relaxed),
            vars_eliminated: self.vars_eliminated.load(Ordering::Relaxed),
            clauses_subsumed: self.clauses_subsumed.load(Ordering::Relaxed),
            clauses_strengthened: self.clauses_strengthened.load(Ordering::Relaxed),
        }
    }

    /// Accepts and serves connections — each on its own thread — until a
    /// client sends [`Message::Shutdown`]. A connection that fails —
    /// garbage bytes, a version mismatch, a client killed mid-frame — is
    /// reported to stderr and dropped; the daemon keeps serving, and an
    /// idle or slow connection never blocks a new one.
    ///
    /// On shutdown every live connection's socket is closed so blocked
    /// handler threads unwind before this returns.
    pub fn serve_forever(&self) -> Result<(), ServiceError> {
        self.listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        // Half-open clones of every live connection, so shutdown can yank
        // handler threads out of blocking reads.
        let active: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            while !stop.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        if let Ok(clone) = stream.try_clone() {
                            active.lock().unwrap().push(clone);
                        }
                        let stop = &stop;
                        scope.spawn(move || {
                            let _ = stream.set_nonblocking(false);
                            match self.handle_connection(stream) {
                                Ok(true) => stop.store(true, Ordering::Relaxed),
                                Ok(false) => {}
                                // A connection torn down by shutdown is not
                                // worth reporting.
                                Err(_) if stop.load(Ordering::Relaxed) => {}
                                Err(e) => {
                                    eprintln!("lv-service: connection from {} failed: {}", peer, e)
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(e) => return Err(ServiceError::Io(e)),
                }
            }
            for stream in active.lock().unwrap().iter() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Ok(())
        })
    }

    /// Serves one connection to completion. `Ok(true)` means the client
    /// requested shutdown.
    fn handle_connection(&self, stream: TcpStream) -> Result<bool, ServiceError> {
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone()?);

        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        check_magic(&magic)?;
        let hello = read_message(&mut reader)?
            .ok_or_else(|| ServiceError::Protocol("connection closed before hello".into()))?;
        let writer = Mutex::new(stream);
        match hello {
            Message::Hello {
                version: WIRE_VERSION,
            } => {}
            Message::Hello { version } => {
                let err = WireError::VersionMismatch {
                    theirs: version,
                    ours: WIRE_VERSION,
                };
                self.send_error(&writer, &err.to_string())?;
                return Err(err.into());
            }
            other => {
                let detail = format!("expected hello, got {:?}", other);
                self.send_error(&writer, &detail)?;
                return Err(ServiceError::Protocol(detail));
            }
        }
        {
            let mut out = writer.lock().unwrap();
            out.write_all(&WIRE_MAGIC)?;
            write_message(
                &mut *out,
                &Message::ServerHello {
                    version: WIRE_VERSION,
                    fingerprint: self.fingerprint,
                },
            )?;
        }

        let mut pending: Vec<Pending> = Vec::new();
        loop {
            let message = match read_message(&mut reader)? {
                None => return Ok(false),
                Some(message) => message,
            };
            match message {
                Message::Submit {
                    label,
                    scalar,
                    candidate,
                } => {
                    let scalar = match parse_function(&scalar) {
                        Ok(f) => f,
                        Err(e) => {
                            let detail = format!("job '{}': unparsable scalar: {}", label, e);
                            self.send_error(&writer, &detail)?;
                            return Err(ServiceError::Protocol(detail));
                        }
                    };
                    let candidate = match parse_function(&candidate) {
                        Ok(f) => f,
                        Err(e) => {
                            let detail = format!("job '{}': unparsable candidate: {}", label, e);
                            self.send_error(&writer, &detail)?;
                            return Err(ServiceError::Protocol(detail));
                        }
                    };
                    pending.push(Pending::Job(Job::new(label, scalar, candidate)));
                    self.received.fetch_add(1, Ordering::Relaxed);
                }
                Message::SubmitGenerate {
                    label,
                    scalar,
                    k,
                    seed,
                } => {
                    let scalar = match parse_function(&scalar) {
                        Ok(f) => f,
                        Err(e) => {
                            let detail =
                                format!("generation '{}': unparsable scalar: {}", label, e);
                            self.send_error(&writer, &detail)?;
                            return Err(ServiceError::Protocol(detail));
                        }
                    };
                    self.received.fetch_add(u64::from(k), Ordering::Relaxed);
                    self.generation_queued
                        .fetch_add(u64::from(k), Ordering::Relaxed);
                    pending.push(Pending::Generate {
                        label,
                        scalar,
                        k,
                        seed,
                    });
                }
                Message::Run { count } => {
                    let slots: usize = pending.iter().map(Pending::slots).sum();
                    if count as usize != slots {
                        let detail = format!(
                            "run count mismatch: client says {}, server holds {}",
                            count, slots
                        );
                        self.send_error(&writer, &detail)?;
                        return Err(ServiceError::Protocol(detail));
                    }
                    let entries = std::mem::take(&mut pending);
                    self.run_pending(entries, &writer)?;
                }
                Message::Status => {
                    let mut out = writer.lock().unwrap();
                    write_message(&mut *out, &Message::StatusReport(self.status()))?;
                }
                Message::Shutdown => {
                    let mut out = writer.lock().unwrap();
                    write_message(&mut *out, &Message::ShutdownAck)?;
                    return Ok(true);
                }
                other => {
                    let detail = format!("unexpected client message {:?}", other);
                    self.send_error(&writer, &detail)?;
                    return Err(ServiceError::Protocol(detail));
                }
            }
        }
    }

    /// Runs a batch of pending entries *overlapped*: a producer thread
    /// walks the entries in slot order — deduping explicit jobs through
    /// the cache and expanding generation requests into per-cell-seeded
    /// jobs as it goes — while the engine's streaming intake verifies
    /// admitted jobs as they appear. Dedupe answers are streamed the
    /// moment the producer sees them, engine answers in completion order;
    /// the batch closes with [`Message::Done`] over all slots.
    fn run_pending(
        &self,
        entries: Vec<Pending>,
        out: &Mutex<TcpStream>,
    ) -> Result<(), ServiceError> {
        let total_slots: usize = entries.iter().map(Pending::slots).sum();
        let write_failure: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let record_failure = |e: std::io::Error| {
            let mut slot = write_failure.lock().unwrap();
            if slot.is_none() {
                *slot = Some(e);
            }
        };

        // Streams one verdict frame; failures are recorded, not fatal, so
        // the batch still drains deterministically.
        let stream_verdict = |frame: VerdictFrame| {
            let mut locked = out.lock().unwrap();
            if let Err(e) = write_message(&mut *locked, &Message::Verdict(frame)) {
                record_failure(e);
            }
        };

        // Dedupe check: answered from the cache → streamed immediately,
        // never admitted to the engine.
        let try_dedupe = |slot: usize, job: &Job| -> bool {
            let key = job_cache_key(job, self.fingerprint);
            if let Some(verdict) = self.cache.get(&key) {
                self.dedupe_hits.fetch_add(1, Ordering::Relaxed);
                self.completed.fetch_add(1, Ordering::Relaxed);
                stream_verdict(VerdictFrame {
                    index: slot as u32,
                    label: job.label.clone(),
                    cache_hit: true,
                    verdict,
                });
                true
            } else {
                false
            }
        };

        let counting = CountingObserver::new();
        let streaming = CallbackObserver::new(|slot: usize, report: &crate::JobReport| {
            stream_verdict(VerdictFrame {
                index: slot as u32,
                label: report.label.clone(),
                cache_hit: report.cache_hit,
                verdict: CachedVerdict {
                    verdict: report.verdict,
                    stage: report.stage,
                    detail: report.detail.clone(),
                    checksum: report.checksum,
                },
            });
        });
        let tee = TeeObserver(&counting, &streaming);

        let (producer, source) = job_channel(GENERATION_QUEUE_CAPACITY);
        let batch = std::thread::scope(|scope| {
            scope.spawn(move || {
                // The producer owns the only channel handle: the stream
                // closes when this thread finishes (or panics).
                let mut slot = 0usize;
                for (ordinal, entry) in entries.into_iter().enumerate() {
                    match entry {
                        Pending::Job(job) => {
                            if !try_dedupe(slot, &job) {
                                producer.push(slot, job);
                            }
                            slot += 1;
                        }
                        Pending::Generate {
                            label,
                            scalar,
                            k,
                            seed,
                        } => {
                            let config = LlmConfig {
                                seed,
                                ..LlmConfig::default()
                            };
                            for j in 0..k as usize {
                                // The entry's ordinal is the "kernel index"
                                // of the seed-derivation cell, so two
                                // generation requests with the same base
                                // seed still sample distinct cells.
                                let completion =
                                    sample_completion_cell(&scalar, &config, ordinal, j);
                                self.generation_queued.fetch_sub(1, Ordering::Relaxed);
                                self.generated.fetch_add(1, Ordering::Relaxed);
                                let job = Job::new(
                                    format!("{}#{}", label, j),
                                    scalar.clone(),
                                    completion.candidate,
                                );
                                if !try_dedupe(slot, &job) {
                                    producer.push(slot, job);
                                }
                                slot += 1;
                            }
                        }
                    }
                }
            });
            self.engine.run_stream_observed(&source, &tee)
        });

        self.stages
            .fetch_add(counting.stage_count() as u64, Ordering::Relaxed);
        // In-batch duplicates of an admitted job hit the cache entry the
        // first copy stored — they count as dedupe answers too.
        self.dedupe_hits
            .fetch_add(batch.cache_hits as u64, Ordering::Relaxed);
        self.completed
            .fetch_add(batch.jobs.len() as u64, Ordering::Relaxed);
        let simplify = batch.simplify_totals();
        self.vars_eliminated
            .fetch_add(simplify.vars_eliminated, Ordering::Relaxed);
        self.clauses_subsumed
            .fetch_add(simplify.clauses_subsumed, Ordering::Relaxed);
        self.clauses_strengthened
            .fetch_add(simplify.clauses_strengthened, Ordering::Relaxed);
        if let Some(e) = write_failure.into_inner().unwrap() {
            return Err(e.into());
        }

        let mut locked = out.lock().unwrap();
        write_message(
            &mut *locked,
            &Message::Done {
                count: total_slots as u32,
            },
        )?;
        locked.flush()?;
        Ok(())
    }

    /// Best-effort error frame before tearing the connection down.
    fn send_error(&self, out: &Mutex<TcpStream>, detail: &str) -> Result<(), ServiceError> {
        let mut locked = out.lock().unwrap();
        write_message(
            &mut *locked,
            &Message::Error {
                detail: detail.to_string(),
            },
        )?;
        Ok(())
    }
}
