//! The persistent, content-addressed verdict cache.
//!
//! Verification is a pure function of `(scalar, candidate, configuration)`:
//! the checksum harness is seeded, the SMT solver is deterministic, and
//! budgets are part of the configuration. The engine therefore memoizes
//! verdicts across batches — and, through the file backing, across
//! *processes* — keyed by content hashes rather than source text:
//!
//! * `scalar` — [`lv_cir::structural_hash`] of the scalar kernel, so
//!   renaming its variables, labels, or the kernel itself still hits;
//! * `candidate` — [`lv_cir::hash::structural_hash_in_env`] of the
//!   candidate in the scalar's parameter-name environment: renaming the
//!   candidate's locals or labels still hits, but renaming its *parameters*
//!   away from the scalar's misses — the harnesses bind arrays by parameter
//!   name, so that rename genuinely changes the verification problem. Any
//!   semantic edit (a constant, an operator, a type, the statement shape)
//!   misses;
//! * `config` — [`EngineConfig::semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint),
//!   covering the cascade stage list, the checksum harness configuration,
//!   and every solver budget. Anything that could change a verdict — or an
//!   `Inconclusive` outcome — invalidates the entry by changing its key.
//!
//! # File formats
//!
//! The cache persists in one of two interchangeable formats, and
//! [`VerdictCache::open`] sniffs which one it is reading.
//!
//! **Snapshot** — a single JSON document (via the `serde` shim's [`json`]
//! module):
//!
//! ```json
//! {"version":1,"entries":[
//!   {"scalar":"0f3a…16 hex…","candidate":"…","config":"…",
//!    "verdict":"equivalent","stage":"cunroll","detail":"",
//!    "checksum":"plausible"}
//! ]}
//! ```
//!
//! Hashes are 16-digit lower-case hex strings (JSON numbers cannot hold a
//! `u64`). Entries are written in sorted key order, so persisting the same
//! contents twice produces byte-identical files. `checksum` is `null` for
//! verdicts produced by cascades without a checksum stage.
//!
//! **Journal** — the append-only form ([`crate::journal`] documents the
//! framing): a `{"journal":"verdict-cache","version":1}` header record
//! followed by one record per entry (the same object shape as a snapshot
//! `entries` element), each CRC-framed so a torn tail is detected and
//! truncated, never mis-parsed. A cache opened with
//! [`VerdictCache::open_journal`] keeps one buffered append handle for its
//! whole lifetime: every [`VerdictCache::insert`] appends and flushes just
//! that record — O(record) flush I/O instead of the snapshot's O(file)
//! rewrite — which is what lets shard workers flush after every job without
//! quadratic total I/O. [`VerdictCache::compact_journal`] rewrites a
//! journal into the snapshot form (sorted, deterministic, byte-identical to
//! a snapshot-mode [`VerdictCache::persist`] of the same contents) and
//! `fsync`s it; [`crate::journal::FsyncPolicy`] controls per-record sync
//! before that point.
//!
//! # Invalidation rules
//!
//! There is no explicit invalidation: a key embeds everything a verdict
//! depends on, so stale entries are simply never looked up again. The
//! `version` field guards the *format and hash scheme* in both snapshot and
//! journal form: bump it when [`lv_cir::structural_hash`]'s protocol or
//! this file layout changes, and readers reject files from other versions
//! (a rejected file is reported as an error, not silently discarded, so an
//! operator can delete it deliberately).

use crate::journal::{self, FsyncPolicy, JournalWriter};
use crate::pipeline::{Equivalence, Stage};
use lv_interp::ChecksumClass;
use serde::json::{self, CountingWriter, Emitter, Value};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The on-disk format version; readers reject any other value.
pub const CACHE_FORMAT_VERSION: i64 = 1;

/// The content-addressed key of one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`lv_cir::structural_hash`] of the scalar kernel.
    pub scalar: u64,
    /// [`lv_cir::hash::structural_hash_in_env`] of the candidate in the
    /// scalar's parameter-name environment (see the module docs for why the
    /// pairing is semantic).
    pub candidate: u64,
    /// [`crate::EngineConfig::semantic_fingerprint`] of the engine
    /// configuration the verdict was produced under.
    pub config: u64,
}

/// A memoized verdict: everything a [`JobReport`](crate::JobReport) needs to
/// be bit-identical to a fresh run, minus the telemetry (a cache hit runs no
/// stages, so it has no traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// The final verdict.
    pub verdict: Equivalence,
    /// The stage that produced it.
    pub stage: Stage,
    /// Counterexample, mismatch, or inconclusive reason.
    pub detail: String,
    /// Checksum classification, when the cascade included the checksum stage.
    pub checksum: Option<ChecksumClass>,
}

/// Why merging two verdict caches failed.
///
/// Verification is deterministic, so two caches built under the same format
/// version can only disagree on a key if one of them is corrupt, was produced
/// by a build with different semantics under the same
/// [`CACHE_FORMAT_VERSION`], or was tampered with. Last-write-wins would
/// silently propagate the corruption into every future sweep, so a merge
/// refuses instead: the conflict is a typed, actionable error naming the key
/// and both verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMergeError {
    /// Both caches hold the key with different verdict payloads.
    Conflict {
        /// The disputed key.
        key: CacheKey,
        /// What the destination cache holds.
        existing: Box<CachedVerdict>,
        /// What the source cache holds.
        incoming: Box<CachedVerdict>,
    },
}

impl std::fmt::Display for CacheMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheMergeError::Conflict {
                key,
                existing,
                incoming,
            } => write!(
                f,
                "verdict cache merge conflict on key (scalar {:016x}, candidate {:016x}, \
                 config {:016x}): existing verdict `{}` @ {} vs incoming `{}` @ {} — \
                 one of the caches is corrupt or was produced by a semantically \
                 different build under the same format version",
                key.scalar,
                key.candidate,
                key.config,
                verdict_tag(existing.verdict),
                stage_tag(existing.stage),
                verdict_tag(incoming.verdict),
                stage_tag(incoming.stage),
            ),
        }
    }
}

impl std::error::Error for CacheMergeError {}

/// What a successful [`VerdictCache::merge_from`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Keys added to the destination.
    pub added: usize,
    /// Keys present in both caches with identical verdicts (no-ops).
    pub agreed: usize,
}

/// Size bounds applied by [`VerdictCache::compact`], so million-candidate
/// sweeps do not grow the cache file without limit.
///
/// Eviction is deterministic: entries are dropped from the *end* of the
/// sorted key order (the same order [`VerdictCache::persist`] writes), so
/// compacting identical contents always keeps identical survivors —
/// bit-identical files again. The cache is content-addressed, so an evicted
/// entry costs only a re-verification on its next lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBounds {
    /// Maximum number of entries to keep; `None` means unbounded.
    pub max_entries: Option<usize>,
    /// Maximum size of the rendered cache file in bytes; `None` means
    /// unbounded. Enforced on the serialized form, so it bounds the file a
    /// [`VerdictCache::persist`] would write.
    pub max_bytes: Option<usize>,
}

impl CacheBounds {
    /// Bounds that never evict.
    pub fn unbounded() -> CacheBounds {
        CacheBounds::default()
    }

    /// Returns `true` when neither bound is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// A thread-safe verdict store, optionally backed by a JSON file.
///
/// Workers on the engine's pool share one cache through an `Arc`; `get`
/// takes a short mutex, never I/O. In the default snapshot mode, file I/O
/// happens only in [`VerdictCache::open`] and [`VerdictCache::persist`]; in
/// journal mode ([`VerdictCache::open_journal`]) each `insert` additionally
/// appends one framed record through the cache's long-lived buffered
/// journal handle (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct VerdictCache {
    entries: Mutex<HashMap<CacheKey, CachedVerdict>>,
    path: Option<PathBuf>,
    /// The open append handle when the cache is in journal mode. Lock
    /// order: `journal` before `entries` wherever both are held.
    journal: Mutex<Option<JournalWriter>>,
    /// Cumulative bytes this cache has written to its backing file
    /// (snapshot rewrites + journal appends) — the flush-I/O metric the
    /// `journal_flush` bench compares across persistence modes.
    io_bytes: AtomicU64,
}

impl VerdictCache {
    /// An empty cache with no file backing.
    pub fn in_memory() -> VerdictCache {
        VerdictCache::default()
    }

    /// A cache backed by `path`, in snapshot mode. A missing file yields an
    /// empty cache; an unreadable or malformed file is an error (never
    /// silently discarded). Both persisted formats are accepted: a journal
    /// is replayed (tolerating a torn final record), a snapshot is parsed.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<VerdictCache> {
        let path = path.into();
        let entries = match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(e),
            Ok(text) => parse_text(&text)
                .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))?,
        };
        Ok(VerdictCache {
            entries: Mutex::new(entries),
            path: Some(path),
            ..VerdictCache::default()
        })
    }

    /// A cache backed by `path` in **journal mode**: one buffered append
    /// handle is opened now and kept for the cache's lifetime, and every
    /// [`VerdictCache::insert`] appends (and flushes) one framed record —
    /// O(record) flush I/O per new verdict.
    ///
    /// A missing file starts a fresh journal; an existing journal is
    /// replayed, its torn final record (if any) truncated, and appends
    /// continue where it left off; an existing *snapshot* is converted —
    /// rewritten as a journal (atomically, via a temp file) so appends can
    /// continue incrementally. `fsync` selects the durability policy.
    pub fn open_journal(path: impl Into<PathBuf>, fsync: FsyncPolicy) -> io::Result<VerdictCache> {
        let path = path.into();
        let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
        let (entries, writer) = match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let writer = JournalWriter::create(&path, fsync, emit_cache_header)?;
                (HashMap::new(), writer)
            }
            Err(e) => return Err(e),
            Ok(text) if journal::is_journal(&text) => {
                let replayed = journal::replay(&text).map_err(invalid)?;
                journal::check_header(&replayed, CACHE_JOURNAL_KIND, CACHE_FORMAT_VERSION)
                    .map_err(invalid)?;
                let entries = entries_from_records(&replayed.records).map_err(invalid)?;
                let writer = if replayed.valid_len == 0 {
                    // Torn header (crash at creation): start the journal over.
                    JournalWriter::create(&path, fsync, emit_cache_header)?
                } else {
                    JournalWriter::open_append(&path, fsync, replayed.valid_len)?
                };
                (entries, writer)
            }
            Ok(text) => {
                // Snapshot → journal conversion, atomically: the snapshot
                // stays intact until the fully-written journal renames over
                // it.
                let entries = parse_entries(&text).map_err(invalid)?;
                let tmp = path.with_extension("tmp");
                let mut writer = JournalWriter::create(&tmp, fsync, emit_cache_header)?;
                let mut sorted: Vec<(&CacheKey, &CachedVerdict)> = entries.iter().collect();
                sorted.sort_by_key(|(key, _)| **key);
                for (key, verdict) in sorted {
                    writer.append(|e| emit_entry(e, key, verdict))?;
                }
                writer.sync()?;
                let len = writer.bytes_written();
                drop(writer);
                std::fs::rename(&tmp, &path)?;
                (entries, JournalWriter::open_append(&path, fsync, len)?)
            }
        };
        let cache = VerdictCache {
            entries: Mutex::new(entries),
            path: Some(path),
            journal: Mutex::new(Some(writer)),
            io_bytes: AtomicU64::new(0),
        };
        Ok(cache)
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Whether the cache is in journal mode (appends per insert).
    pub fn is_journaling(&self) -> bool {
        self.journal.lock().unwrap().is_some()
    }

    /// Sets the journal's flush batching (see
    /// [`JournalWriter::set_flush_every`]): every `n`-th appended record
    /// flushes; a crash loses at most `n - 1` buffered tail entries. No-op
    /// in snapshot mode.
    pub fn set_journal_flush_every(&self, n: usize) {
        if let Some(writer) = self.journal.lock().unwrap().as_mut() {
            writer.set_flush_every(n);
        }
    }

    /// Cumulative bytes written to the backing file over this cache's
    /// lifetime — snapshot rewrites plus journal appends. The flush-cost
    /// metric: rewrite-per-job grows it quadratically, a journal linearly.
    pub fn io_bytes_written(&self) -> u64 {
        self.io_bytes.load(Ordering::Relaxed)
    }

    /// Looks up a verdict.
    pub fn get(&self, key: &CacheKey) -> Option<CachedVerdict> {
        self.entries.lock().unwrap().get(key).cloned()
    }

    /// Stores a verdict. In journal mode the record is also appended to the
    /// backing file and flushed (best-effort, like the shard flush protocol:
    /// an unwritable journal surfaces later as missing persisted output, and
    /// the in-memory entry is stored regardless).
    pub fn insert(&self, key: CacheKey, verdict: CachedVerdict) {
        let mut journal = self.journal.lock().unwrap();
        if let Some(writer) = journal.as_mut() {
            let stale = self.entries.lock().unwrap().get(&key) == Some(&verdict);
            if !stale {
                let before = writer.bytes_written();
                let _ = writer.append(|e| emit_entry(e, &key, &verdict));
                self.io_bytes
                    .fetch_add(writer.bytes_written() - before, Ordering::Relaxed);
            }
        }
        drop(journal);
        self.entries.lock().unwrap().insert(key, verdict);
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Returns `true` if the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges every entry of `other` into this cache.
    ///
    /// A key present in both caches with the *same* verdict is a no-op; a
    /// key present with *different* verdicts aborts the merge with
    /// [`CacheMergeError::Conflict`] — never last-write-wins (see the error
    /// type for why). On error the destination may already contain some of
    /// `other`'s non-conflicting entries; since those entries agree with
    /// `other` by construction, the destination is still internally
    /// consistent.
    pub fn merge_from(&self, other: &VerdictCache) -> Result<MergeStats, CacheMergeError> {
        let incoming = other.entries.lock().unwrap().clone();
        let mut entries = self.entries.lock().unwrap();
        let mut stats = MergeStats::default();
        for (key, verdict) in incoming {
            match entries.get(&key) {
                None => {
                    entries.insert(key, verdict);
                    stats.added += 1;
                }
                Some(existing) if *existing == verdict => stats.agreed += 1,
                Some(existing) => {
                    return Err(CacheMergeError::Conflict {
                        key,
                        existing: Box::new(existing.clone()),
                        incoming: Box::new(verdict),
                    })
                }
            }
        }
        Ok(stats)
    }

    /// [`VerdictCache::merge_from`] over a cache *file*: loads `path` and
    /// merges its entries into this cache. Unreadable or malformed files and
    /// merge conflicts are all reported as [`io::Error`]s (a conflict uses
    /// [`io::ErrorKind::InvalidData`] and carries the rendered
    /// [`CacheMergeError`] message).
    pub fn merge_file(&self, path: impl Into<PathBuf>) -> io::Result<MergeStats> {
        let other = VerdictCache::open(path)?;
        self.merge_from(&other)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Evicts entries until the cache fits `bounds`; returns how many were
    /// dropped. Eviction order is the tail of the sorted key order, so it is
    /// deterministic (see [`CacheBounds`]).
    pub fn compact(&self, bounds: &CacheBounds) -> usize {
        if bounds.is_unbounded() {
            return 0;
        }
        let mut entries = self.entries.lock().unwrap();
        let before = entries.len();
        if let Some(max) = bounds.max_entries {
            if entries.len() > max {
                let mut keys: Vec<CacheKey> = entries.keys().copied().collect();
                keys.sort();
                for key in keys.drain(max..) {
                    entries.remove(&key);
                }
            }
        }
        if let Some(max_bytes) = bounds.max_bytes {
            // One full size measurement establishes the total; each eviction
            // then shrinks it by exactly the entry's serialized bytes plus
            // its separating comma (none once the array is empty), so the
            // bound is enforced without re-measuring per entry.
            let mut size = snapshot_len(&entries);
            if size > max_bytes {
                let mut keys: Vec<CacheKey> = entries.keys().copied().collect();
                keys.sort();
                while size > max_bytes {
                    let Some(key) = keys.pop() else { break };
                    let verdict = entries.remove(&key).expect("key came from the map");
                    let serialized = entry_len(&key, &verdict);
                    size = size.saturating_sub(serialized + usize::from(!entries.is_empty()));
                }
            }
        }
        before - entries.len()
    }

    /// Writes the cache to its backing file. No-op for an in-memory cache.
    ///
    /// In snapshot mode this rewrites the whole file (atomically: temp
    /// file, then rename), streaming entries in sorted key order so
    /// persisting the same contents always produces byte-identical files.
    /// In journal mode every insert already appended and flushed its own
    /// record, so this only flushes the buffered writer.
    pub fn persist(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        {
            let mut journal = self.journal.lock().unwrap();
            if let Some(writer) = journal.as_mut() {
                return writer.flush();
            }
        }
        let entries = self.entries.lock().unwrap();
        let bytes = write_snapshot_atomic(path, &entries, false)?;
        self.io_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Compacts the cache file into the **snapshot** format: the journal
    /// (if the cache is in journal mode) is closed and atomically replaced
    /// by the deterministic sorted snapshot — byte-identical to what a
    /// snapshot-mode [`VerdictCache::persist`] of the same contents writes
    /// — and the result is `fsync`ed (the durability point of
    /// [`FsyncPolicy::OnCompact`]). Afterwards the cache is in snapshot
    /// mode; further inserts no longer append. Idempotent, and callable on
    /// a snapshot-mode cache (where it is a synced persist).
    pub fn compact_journal(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut journal = self.journal.lock().unwrap();
        let bytes = {
            let entries = self.entries.lock().unwrap();
            write_snapshot_atomic(path, &entries, true)?
        };
        *journal = None;
        self.io_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }
}

pub(crate) fn hex(value: u64) -> Value {
    Value::Str(format!("{:016x}", value))
}

pub(crate) fn parse_hex(value: Option<&Value>, field: &str) -> Result<u64, String> {
    let s = value
        .and_then(Value::as_str)
        .ok_or_else(|| format!("entry is missing the `{}` hash", field))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("`{}` is not a hex hash: `{}`", field, s))
}

pub(crate) fn verdict_tag(verdict: Equivalence) -> &'static str {
    match verdict {
        Equivalence::Equivalent => "equivalent",
        Equivalence::NotEquivalent => "not-equivalent",
        Equivalence::Inconclusive => "inconclusive",
    }
}

pub(crate) fn parse_verdict(tag: &str) -> Result<Equivalence, String> {
    match tag {
        "equivalent" => Ok(Equivalence::Equivalent),
        "not-equivalent" => Ok(Equivalence::NotEquivalent),
        "inconclusive" => Ok(Equivalence::Inconclusive),
        other => Err(format!("unknown verdict tag `{}`", other)),
    }
}

pub(crate) fn stage_tag(stage: Stage) -> &'static str {
    match stage {
        Stage::Checksum => "checksum",
        Stage::Alive2 => "alive2",
        Stage::CUnroll => "cunroll",
        Stage::Splitting => "splitting",
    }
}

pub(crate) fn parse_stage(tag: &str) -> Result<Stage, String> {
    match tag {
        "checksum" => Ok(Stage::Checksum),
        "alive2" => Ok(Stage::Alive2),
        "cunroll" => Ok(Stage::CUnroll),
        "splitting" => Ok(Stage::Splitting),
        other => Err(format!("unknown stage tag `{}`", other)),
    }
}

pub(crate) fn checksum_tag(class: ChecksumClass) -> &'static str {
    match class {
        ChecksumClass::Plausible => "plausible",
        ChecksumClass::NotEquivalent => "not-equivalent",
        ChecksumClass::CannotCompile => "cannot-compile",
        ChecksumClass::ScalarFailed => "scalar-failed",
    }
}

/// Emits `checksum`'s value position: the stable tag, or `null` for
/// verdicts produced by cascades without a checksum stage.
pub(crate) fn emit_checksum<W: io::Write>(
    e: &mut Emitter<W>,
    class: Option<ChecksumClass>,
) -> io::Result<()> {
    match class {
        None => e.null(),
        Some(class) => e.str(checksum_tag(class)),
    }
}

pub(crate) fn parse_checksum(value: Option<&Value>) -> Result<Option<ChecksumClass>, String> {
    match value {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => match s.as_str() {
            "plausible" => Ok(Some(ChecksumClass::Plausible)),
            "not-equivalent" => Ok(Some(ChecksumClass::NotEquivalent)),
            "cannot-compile" => Ok(Some(ChecksumClass::CannotCompile)),
            "scalar-failed" => Ok(Some(ChecksumClass::ScalarFailed)),
            other => Err(format!("unknown checksum tag `{}`", other)),
        },
        Some(other) => Err(format!("checksum field has the wrong type: {}", other)),
    }
}

/// The journal-header kind tag for cache journals.
const CACHE_JOURNAL_KIND: &str = "verdict-cache";

/// Emits the cache journal's header record payload.
fn emit_cache_header(e: &mut Emitter<&mut Vec<u8>>) -> io::Result<()> {
    e.begin_object()?;
    e.field_str("journal", CACHE_JOURNAL_KIND)?;
    e.field_int("version", CACHE_FORMAT_VERSION)?;
    e.end_object()
}

/// Streams one entry object — the shape shared by snapshot `entries`
/// elements and journal records.
fn emit_entry<W: io::Write>(
    e: &mut Emitter<W>,
    key: &CacheKey,
    verdict: &CachedVerdict,
) -> io::Result<()> {
    e.begin_object()?;
    e.field_hex("scalar", key.scalar)?;
    e.field_hex("candidate", key.candidate)?;
    e.field_hex("config", key.config)?;
    e.field_str("verdict", verdict_tag(verdict.verdict))?;
    e.field_str("stage", stage_tag(verdict.stage))?;
    e.field_str("detail", &verdict.detail)?;
    e.key("checksum")?;
    emit_checksum(e, verdict.checksum)?;
    e.end_object()
}

/// Streams the whole snapshot document (sorted key order, trailing newline)
/// into `w` — byte-identical for identical contents.
fn write_snapshot<W: io::Write>(
    w: W,
    entries: &HashMap<CacheKey, CachedVerdict>,
) -> io::Result<()> {
    let mut sorted: Vec<(&CacheKey, &CachedVerdict)> = entries.iter().collect();
    sorted.sort_by_key(|(key, _)| **key);
    let mut e = Emitter::new(w);
    e.begin_object()?;
    e.field_int("version", CACHE_FORMAT_VERSION)?;
    e.key("entries")?;
    e.begin_array()?;
    for (key, verdict) in sorted {
        emit_entry(&mut e, key, verdict)?;
    }
    e.end_array()?;
    e.end_object()?;
    let mut w = e.into_inner();
    w.write_all(b"\n")
}

/// Streams a document to `path` atomically (temp file, then rename),
/// creating parent directories as needed and optionally `fsync`ing before
/// the rename; returns the document's size in bytes. The one atomic-write
/// protocol shared by every snapshot surface (cache and shard exchange).
pub(crate) fn write_atomic_stream<F>(path: &Path, sync: bool, emit: F) -> io::Result<u64>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    let mut writer = BufWriter::new(File::create(&tmp)?);
    emit(&mut writer)?;
    let file = writer
        .into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let len = file.metadata()?.len();
    if sync {
        file.sync_all()?;
    }
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(len)
}

/// Atomic snapshot rewrite via [`write_atomic_stream`].
fn write_snapshot_atomic(
    path: &Path,
    entries: &HashMap<CacheKey, CachedVerdict>,
    sync: bool,
) -> io::Result<u64> {
    write_atomic_stream(path, sync, |w| write_snapshot(w, entries))
}

/// Serialized size of the snapshot document for `entries`, measured by
/// streaming into a counting sink (no intermediate `String`).
fn snapshot_len(entries: &HashMap<CacheKey, CachedVerdict>) -> usize {
    let mut counter = CountingWriter::default();
    write_snapshot(&mut counter, entries).expect("counting never fails");
    counter.bytes as usize
}

/// Serialized size of one entry object.
fn entry_len(key: &CacheKey, verdict: &CachedVerdict) -> usize {
    let mut counter = CountingWriter::default();
    let mut e = Emitter::new(&mut counter);
    emit_entry(&mut e, key, verdict).expect("counting never fails");
    counter.bytes as usize
}

/// Parses either persisted format, sniffing the journal marker.
fn parse_text(text: &str) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    if journal::is_journal(text) {
        let replayed = journal::replay(text)?;
        journal::check_header(&replayed, CACHE_JOURNAL_KIND, CACHE_FORMAT_VERSION)?;
        entries_from_records(&replayed.records)
    } else {
        parse_entries(text)
    }
}

/// Builds the entry map from replayed journal records. A key recorded twice
/// with the same verdict is a no-op (a concurrent duplicate append);
/// recorded with *different* verdicts it is corruption, reported like a
/// merge conflict would be — never last-write-wins.
fn entries_from_records(records: &[Value]) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    let mut entries = HashMap::with_capacity(records.len());
    for item in records {
        let (key, verdict) = parse_entry(item)?;
        match entries.get(&key) {
            None => {
                entries.insert(key, verdict);
            }
            Some(existing) if *existing == verdict => {}
            Some(_) => {
                return Err(format!(
                    "journal records disagree on key (scalar {:016x}, candidate {:016x}, \
                     config {:016x})",
                    key.scalar, key.candidate, key.config
                ))
            }
        }
    }
    Ok(entries)
}

/// Parses one entry object (shared by snapshot elements and journal
/// records).
fn parse_entry(item: &Value) -> Result<(CacheKey, CachedVerdict), String> {
    let key = CacheKey {
        scalar: parse_hex(item.get("scalar"), "scalar")?,
        candidate: parse_hex(item.get("candidate"), "candidate")?,
        config: parse_hex(item.get("config"), "config")?,
    };
    let verdict = CachedVerdict {
        verdict: parse_verdict(
            item.get("verdict")
                .and_then(Value::as_str)
                .ok_or("entry is missing `verdict`")?,
        )?,
        stage: parse_stage(
            item.get("stage")
                .and_then(Value::as_str)
                .ok_or("entry is missing `stage`")?,
        )?,
        detail: item
            .get("detail")
            .and_then(Value::as_str)
            .ok_or("entry is missing `detail`")?
            .to_string(),
        checksum: parse_checksum(item.get("checksum"))?,
    };
    Ok((key, verdict))
}

fn parse_entries(text: &str) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("version").and_then(Value::as_int) {
        Some(CACHE_FORMAT_VERSION) => {}
        Some(other) => {
            return Err(format!(
                "cache file has format version {}, this build reads version {}; \
                 delete the file to rebuild it",
                other, CACHE_FORMAT_VERSION
            ))
        }
        None => return Err("cache file has no `version` field".to_string()),
    }
    let items = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| "cache file has no `entries` array".to_string())?;
    let mut entries = HashMap::with_capacity(items.len());
    for item in items {
        let (key, verdict) = parse_entry(item)?;
        entries.insert(key, verdict);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(CacheKey, CachedVerdict)> {
        vec![
            (
                CacheKey {
                    scalar: 1,
                    candidate: 2,
                    config: 3,
                },
                CachedVerdict {
                    verdict: Equivalence::Equivalent,
                    stage: Stage::CUnroll,
                    detail: String::new(),
                    checksum: Some(ChecksumClass::Plausible),
                },
            ),
            (
                CacheKey {
                    scalar: u64::MAX,
                    candidate: 0xdead_beef,
                    config: 42,
                },
                CachedVerdict {
                    verdict: Equivalence::NotEquivalent,
                    stage: Stage::Checksum,
                    detail: "a[0]: expected 1 but \"the\" code\nproduced 2 \\ lane".to_string(),
                    checksum: Some(ChecksumClass::NotEquivalent),
                },
            ),
            (
                CacheKey {
                    scalar: 7,
                    candidate: 8,
                    config: 9,
                },
                CachedVerdict {
                    verdict: Equivalence::Inconclusive,
                    stage: Stage::Splitting,
                    detail: "solver exhausted its budget".to_string(),
                    checksum: None,
                },
            ),
        ]
    }

    #[test]
    fn file_round_trip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("lv-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.json");
        let _ = std::fs::remove_file(&path);

        let cache = VerdictCache::open(&path).unwrap();
        assert!(cache.is_empty(), "missing file starts empty");
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        cache.persist().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        cache.persist().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "persist is deterministic");

        let reloaded = VerdictCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 3);
        for (key, verdict) in sample_entries() {
            assert_eq!(reloaded.get(&key), Some(verdict));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_files_are_errors() {
        assert!(parse_entries("not json").is_err());
        assert!(parse_entries("{\"entries\":[]}").is_err(), "no version");
        let future = "{\"version\":999,\"entries\":[]}";
        let err = parse_entries(future).unwrap_err();
        assert!(err.contains("999"), "{}", err);
        let bad_hash =
            "{\"version\":1,\"entries\":[{\"scalar\":\"zz\",\"candidate\":\"0\",\"config\":\"0\",\
             \"verdict\":\"equivalent\",\"stage\":\"alive2\",\"detail\":\"\",\"checksum\":null}]}";
        assert!(parse_entries(bad_hash).is_err());
    }

    #[test]
    fn merge_accepts_agreement_and_disjoint_keys() {
        let dest = VerdictCache::in_memory();
        let source = VerdictCache::in_memory();
        let entries = sample_entries();
        // Destination holds entries 0 and 1; source holds 1 (identical) and 2.
        dest.insert(entries[0].0, entries[0].1.clone());
        dest.insert(entries[1].0, entries[1].1.clone());
        source.insert(entries[1].0, entries[1].1.clone());
        source.insert(entries[2].0, entries[2].1.clone());

        let stats = dest.merge_from(&source).expect("agreeing merge succeeds");
        assert_eq!(
            stats,
            MergeStats {
                added: 1,
                agreed: 1
            }
        );
        assert_eq!(dest.len(), 3);
        for (key, verdict) in entries {
            assert_eq!(dest.get(&key), Some(verdict));
        }
    }

    #[test]
    fn merge_conflict_is_a_typed_error_not_last_write_wins() {
        let dest = VerdictCache::in_memory();
        let source = VerdictCache::in_memory();
        let (key, verdict) = sample_entries().remove(0);
        assert_eq!(verdict.verdict, Equivalence::Equivalent);
        let flipped = CachedVerdict {
            verdict: Equivalence::NotEquivalent,
            ..verdict.clone()
        };
        dest.insert(key, verdict.clone());
        source.insert(key, flipped.clone());

        let err = dest.merge_from(&source).expect_err("conflict must error");
        let CacheMergeError::Conflict {
            key: conflict_key,
            existing,
            incoming,
        } = &err;
        assert_eq!(*conflict_key, key);
        assert_eq!(**existing, verdict);
        assert_eq!(**incoming, flipped);
        assert!(err.to_string().contains("merge conflict"), "{}", err);
        // The destination kept its own verdict — no last-write-wins.
        assert_eq!(dest.get(&key), Some(verdict));
    }

    #[test]
    fn merge_file_round_trip_and_conflict() {
        let dir = std::env::temp_dir().join(format!("lv-cache-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.json");
        let _ = std::fs::remove_file(&path);

        let source = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            source.insert(key, verdict);
        }
        source.persist().unwrap();

        let dest = VerdictCache::in_memory();
        let stats = dest.merge_file(&path).unwrap();
        assert_eq!(stats.added, 3);
        // Merging the same file again is pure agreement.
        let stats = dest.merge_file(&path).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                added: 0,
                agreed: 3
            }
        );

        // A flipped verdict is a conflict surfaced as InvalidData.
        let (key, _) = sample_entries().remove(0);
        let err = {
            let conflicted = VerdictCache::in_memory();
            conflicted.insert(
                key,
                CachedVerdict {
                    verdict: Equivalence::Inconclusive,
                    stage: Stage::Alive2,
                    detail: String::new(),
                    checksum: None,
                },
            );
            conflicted.merge_file(&path).expect_err("conflict")
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_is_deterministic_and_bounded() {
        let cache = VerdictCache::in_memory();
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        assert_eq!(cache.compact(&CacheBounds::unbounded()), 0);
        assert_eq!(cache.len(), 3);

        // Entry bound: the survivors are the smallest keys in sorted order.
        let evicted = cache.compact(&CacheBounds {
            max_entries: Some(2),
            max_bytes: None,
        });
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        let mut keys = sample_entries();
        keys.sort_by_key(|(k, _)| *k);
        assert!(cache.get(&keys[0].0).is_some());
        assert!(cache.get(&keys[1].0).is_some());
        assert!(cache.get(&keys[2].0).is_none(), "largest key evicted");

        // Byte bound: shrink until the rendered file fits. The incremental
        // size accounting must agree with an actual render.
        let tiny = cache.compact(&CacheBounds {
            max_entries: None,
            max_bytes: Some(120),
        });
        assert!(tiny >= 1, "at least one entry must go");
        assert!(cache.len() <= 1);

        let dir = std::env::temp_dir().join(format!("lv-cache-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bounded.json");
        let _ = std::fs::remove_file(&path);
        let bounded = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            bounded.insert(key, verdict);
        }
        let max_bytes = 260;
        bounded.compact(&CacheBounds {
            max_entries: None,
            max_bytes: Some(max_bytes),
        });
        bounded.persist().unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(
            written.len() <= max_bytes,
            "persisted {} bytes > bound {}",
            written.len(),
            max_bytes
        );
        assert!(!bounded.is_empty(), "the bound leaves room for an entry");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_cache_round_trips_values() {
        let cache = VerdictCache::in_memory();
        let (key, verdict) = sample_entries().remove(0);
        assert_eq!(cache.get(&key), None);
        cache.insert(key, verdict.clone());
        assert_eq!(cache.get(&key), Some(verdict));
        assert_eq!(cache.len(), 1);
        cache.persist().unwrap(); // no-op without a backing file
        assert!(cache.path().is_none());
    }
}
