//! The persistent, content-addressed verdict cache.
//!
//! Verification is a pure function of `(scalar, candidate, configuration)`:
//! the checksum harness is seeded, the SMT solver is deterministic, and
//! budgets are part of the configuration. The engine therefore memoizes
//! verdicts across batches — and, through the file backing, across
//! *processes* — keyed by content hashes rather than source text:
//!
//! * `scalar` — [`lv_cir::structural_hash`] of the scalar kernel, so
//!   renaming its variables, labels, or the kernel itself still hits;
//! * `candidate` — [`lv_cir::hash::structural_hash_in_env`] of the
//!   candidate in the scalar's parameter-name environment: renaming the
//!   candidate's locals or labels still hits, but renaming its *parameters*
//!   away from the scalar's misses — the harnesses bind arrays by parameter
//!   name, so that rename genuinely changes the verification problem. Any
//!   semantic edit (a constant, an operator, a type, the statement shape)
//!   misses;
//! * `config` — [`EngineConfig::semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint),
//!   covering the cascade stage list, the checksum harness configuration,
//!   and every solver budget. Anything that could change a verdict — or an
//!   `Inconclusive` outcome — invalidates the entry by changing its key.
//!
//! # File format
//!
//! The backing file is a single JSON document (via the `serde` shim's
//! [`json`] module):
//!
//! ```json
//! {"version":1,"entries":[
//!   {"scalar":"0f3a…16 hex…","candidate":"…","config":"…",
//!    "verdict":"equivalent","stage":"cunroll","detail":"",
//!    "checksum":"plausible"}
//! ]}
//! ```
//!
//! Hashes are 16-digit lower-case hex strings (JSON numbers cannot hold a
//! `u64`). Entries are written in sorted key order, so persisting the same
//! contents twice produces byte-identical files. `checksum` is `null` for
//! verdicts produced by cascades without a checksum stage.
//!
//! # Invalidation rules
//!
//! There is no explicit invalidation: a key embeds everything a verdict
//! depends on, so stale entries are simply never looked up again. The
//! `version` field guards the *format and hash scheme*: bump it when
//! [`lv_cir::structural_hash`]'s protocol or this file layout changes, and
//! readers reject files from other versions (a rejected file is reported as
//! an error, not silently discarded, so an operator can delete it
//! deliberately).

use crate::pipeline::{Equivalence, Stage};
use lv_interp::ChecksumClass;
use serde::json::{self, Value};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The on-disk format version; readers reject any other value.
pub const CACHE_FORMAT_VERSION: i64 = 1;

/// The content-addressed key of one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`lv_cir::structural_hash`] of the scalar kernel.
    pub scalar: u64,
    /// [`lv_cir::hash::structural_hash_in_env`] of the candidate in the
    /// scalar's parameter-name environment (see the module docs for why the
    /// pairing is semantic).
    pub candidate: u64,
    /// [`crate::EngineConfig::semantic_fingerprint`] of the engine
    /// configuration the verdict was produced under.
    pub config: u64,
}

/// A memoized verdict: everything a [`JobReport`](crate::JobReport) needs to
/// be bit-identical to a fresh run, minus the telemetry (a cache hit runs no
/// stages, so it has no traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// The final verdict.
    pub verdict: Equivalence,
    /// The stage that produced it.
    pub stage: Stage,
    /// Counterexample, mismatch, or inconclusive reason.
    pub detail: String,
    /// Checksum classification, when the cascade included the checksum stage.
    pub checksum: Option<ChecksumClass>,
}

/// A thread-safe verdict store, optionally backed by a JSON file.
///
/// Workers on the engine's pool share one cache through an `Arc`; `get` and
/// `insert` take a short mutex, never I/O. File I/O happens only in
/// [`VerdictCache::open`] and [`VerdictCache::persist`].
#[derive(Debug, Default)]
pub struct VerdictCache {
    entries: Mutex<HashMap<CacheKey, CachedVerdict>>,
    path: Option<PathBuf>,
}

impl VerdictCache {
    /// An empty cache with no file backing.
    pub fn in_memory() -> VerdictCache {
        VerdictCache::default()
    }

    /// A cache backed by `path`. A missing file yields an empty cache; an
    /// unreadable or malformed file is an error (never silently discarded).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<VerdictCache> {
        let path = path.into();
        let entries = match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(e),
            Ok(text) => parse_entries(&text)
                .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))?,
        };
        Ok(VerdictCache {
            entries: Mutex::new(entries),
            path: Some(path),
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a verdict.
    pub fn get(&self, key: &CacheKey) -> Option<CachedVerdict> {
        self.entries.lock().unwrap().get(key).cloned()
    }

    /// Stores a verdict.
    pub fn insert(&self, key: CacheKey, verdict: CachedVerdict) {
        self.entries.lock().unwrap().insert(key, verdict);
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Returns `true` if the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the cache to its backing file (atomically: temp file, then
    /// rename). No-op for an in-memory cache.
    ///
    /// Entries are emitted in sorted key order, so persisting the same
    /// contents always produces byte-identical files.
    pub fn persist(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let text = {
            let entries = self.entries.lock().unwrap();
            render_entries(&entries)
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

fn hex(value: u64) -> Value {
    Value::Str(format!("{:016x}", value))
}

fn parse_hex(value: Option<&Value>, field: &str) -> Result<u64, String> {
    let s = value
        .and_then(Value::as_str)
        .ok_or_else(|| format!("entry is missing the `{}` hash", field))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("`{}` is not a hex hash: `{}`", field, s))
}

fn verdict_tag(verdict: Equivalence) -> &'static str {
    match verdict {
        Equivalence::Equivalent => "equivalent",
        Equivalence::NotEquivalent => "not-equivalent",
        Equivalence::Inconclusive => "inconclusive",
    }
}

fn parse_verdict(tag: &str) -> Result<Equivalence, String> {
    match tag {
        "equivalent" => Ok(Equivalence::Equivalent),
        "not-equivalent" => Ok(Equivalence::NotEquivalent),
        "inconclusive" => Ok(Equivalence::Inconclusive),
        other => Err(format!("unknown verdict tag `{}`", other)),
    }
}

fn stage_tag(stage: Stage) -> &'static str {
    match stage {
        Stage::Checksum => "checksum",
        Stage::Alive2 => "alive2",
        Stage::CUnroll => "cunroll",
        Stage::Splitting => "splitting",
    }
}

fn parse_stage(tag: &str) -> Result<Stage, String> {
    match tag {
        "checksum" => Ok(Stage::Checksum),
        "alive2" => Ok(Stage::Alive2),
        "cunroll" => Ok(Stage::CUnroll),
        "splitting" => Ok(Stage::Splitting),
        other => Err(format!("unknown stage tag `{}`", other)),
    }
}

fn checksum_value(class: Option<ChecksumClass>) -> Value {
    match class {
        None => Value::Null,
        Some(ChecksumClass::Plausible) => Value::Str("plausible".to_string()),
        Some(ChecksumClass::NotEquivalent) => Value::Str("not-equivalent".to_string()),
        Some(ChecksumClass::CannotCompile) => Value::Str("cannot-compile".to_string()),
        Some(ChecksumClass::ScalarFailed) => Value::Str("scalar-failed".to_string()),
    }
}

fn parse_checksum(value: Option<&Value>) -> Result<Option<ChecksumClass>, String> {
    match value {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => match s.as_str() {
            "plausible" => Ok(Some(ChecksumClass::Plausible)),
            "not-equivalent" => Ok(Some(ChecksumClass::NotEquivalent)),
            "cannot-compile" => Ok(Some(ChecksumClass::CannotCompile)),
            "scalar-failed" => Ok(Some(ChecksumClass::ScalarFailed)),
            other => Err(format!("unknown checksum tag `{}`", other)),
        },
        Some(other) => Err(format!("checksum field has the wrong type: {}", other)),
    }
}

fn render_entries(entries: &HashMap<CacheKey, CachedVerdict>) -> String {
    let mut sorted: Vec<(&CacheKey, &CachedVerdict)> = entries.iter().collect();
    sorted.sort_by_key(|(key, _)| **key);
    let items: Vec<Value> = sorted
        .into_iter()
        .map(|(key, verdict)| {
            Value::Object(vec![
                ("scalar".to_string(), hex(key.scalar)),
                ("candidate".to_string(), hex(key.candidate)),
                ("config".to_string(), hex(key.config)),
                (
                    "verdict".to_string(),
                    Value::Str(verdict_tag(verdict.verdict).to_string()),
                ),
                (
                    "stage".to_string(),
                    Value::Str(stage_tag(verdict.stage).to_string()),
                ),
                ("detail".to_string(), Value::Str(verdict.detail.clone())),
                ("checksum".to_string(), checksum_value(verdict.checksum)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("version".to_string(), Value::Int(CACHE_FORMAT_VERSION)),
        ("entries".to_string(), Value::Array(items)),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

fn parse_entries(text: &str) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("version").and_then(Value::as_int) {
        Some(CACHE_FORMAT_VERSION) => {}
        Some(other) => {
            return Err(format!(
                "cache file has format version {}, this build reads version {}; \
                 delete the file to rebuild it",
                other, CACHE_FORMAT_VERSION
            ))
        }
        None => return Err("cache file has no `version` field".to_string()),
    }
    let items = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| "cache file has no `entries` array".to_string())?;
    let mut entries = HashMap::with_capacity(items.len());
    for item in items {
        let key = CacheKey {
            scalar: parse_hex(item.get("scalar"), "scalar")?,
            candidate: parse_hex(item.get("candidate"), "candidate")?,
            config: parse_hex(item.get("config"), "config")?,
        };
        let verdict = CachedVerdict {
            verdict: parse_verdict(
                item.get("verdict")
                    .and_then(Value::as_str)
                    .ok_or("entry is missing `verdict`")?,
            )?,
            stage: parse_stage(
                item.get("stage")
                    .and_then(Value::as_str)
                    .ok_or("entry is missing `stage`")?,
            )?,
            detail: item
                .get("detail")
                .and_then(Value::as_str)
                .ok_or("entry is missing `detail`")?
                .to_string(),
            checksum: parse_checksum(item.get("checksum"))?,
        };
        entries.insert(key, verdict);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(CacheKey, CachedVerdict)> {
        vec![
            (
                CacheKey {
                    scalar: 1,
                    candidate: 2,
                    config: 3,
                },
                CachedVerdict {
                    verdict: Equivalence::Equivalent,
                    stage: Stage::CUnroll,
                    detail: String::new(),
                    checksum: Some(ChecksumClass::Plausible),
                },
            ),
            (
                CacheKey {
                    scalar: u64::MAX,
                    candidate: 0xdead_beef,
                    config: 42,
                },
                CachedVerdict {
                    verdict: Equivalence::NotEquivalent,
                    stage: Stage::Checksum,
                    detail: "a[0]: expected 1 but \"the\" code\nproduced 2 \\ lane".to_string(),
                    checksum: Some(ChecksumClass::NotEquivalent),
                },
            ),
            (
                CacheKey {
                    scalar: 7,
                    candidate: 8,
                    config: 9,
                },
                CachedVerdict {
                    verdict: Equivalence::Inconclusive,
                    stage: Stage::Splitting,
                    detail: "solver exhausted its budget".to_string(),
                    checksum: None,
                },
            ),
        ]
    }

    #[test]
    fn file_round_trip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("lv-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.json");
        let _ = std::fs::remove_file(&path);

        let cache = VerdictCache::open(&path).unwrap();
        assert!(cache.is_empty(), "missing file starts empty");
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        cache.persist().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        cache.persist().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "persist is deterministic");

        let reloaded = VerdictCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 3);
        for (key, verdict) in sample_entries() {
            assert_eq!(reloaded.get(&key), Some(verdict));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_files_are_errors() {
        assert!(parse_entries("not json").is_err());
        assert!(parse_entries("{\"entries\":[]}").is_err(), "no version");
        let future = "{\"version\":999,\"entries\":[]}";
        let err = parse_entries(future).unwrap_err();
        assert!(err.contains("999"), "{}", err);
        let bad_hash =
            "{\"version\":1,\"entries\":[{\"scalar\":\"zz\",\"candidate\":\"0\",\"config\":\"0\",\
             \"verdict\":\"equivalent\",\"stage\":\"alive2\",\"detail\":\"\",\"checksum\":null}]}";
        assert!(parse_entries(bad_hash).is_err());
    }

    #[test]
    fn in_memory_cache_round_trips_values() {
        let cache = VerdictCache::in_memory();
        let (key, verdict) = sample_entries().remove(0);
        assert_eq!(cache.get(&key), None);
        cache.insert(key, verdict.clone());
        assert_eq!(cache.get(&key), Some(verdict));
        assert_eq!(cache.len(), 1);
        cache.persist().unwrap(); // no-op without a backing file
        assert!(cache.path().is_none());
    }
}
