//! The persistent, content-addressed verdict cache.
//!
//! Verification is a pure function of `(scalar, candidate, configuration)`:
//! the checksum harness is seeded, the SMT solver is deterministic, and
//! budgets are part of the configuration. The engine therefore memoizes
//! verdicts across batches — and, through the file backing, across
//! *processes* — keyed by content hashes rather than source text:
//!
//! * `scalar` — [`lv_cir::structural_hash`] of the scalar kernel, so
//!   renaming its variables, labels, or the kernel itself still hits;
//! * `candidate` — [`lv_cir::hash::structural_hash_in_env`] of the
//!   candidate in the scalar's parameter-name environment: renaming the
//!   candidate's locals or labels still hits, but renaming its *parameters*
//!   away from the scalar's misses — the harnesses bind arrays by parameter
//!   name, so that rename genuinely changes the verification problem. Any
//!   semantic edit (a constant, an operator, a type, the statement shape)
//!   misses;
//! * `config` — [`EngineConfig::semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint),
//!   covering the cascade stage list, the checksum harness configuration,
//!   and every solver budget. Anything that could change a verdict — or an
//!   `Inconclusive` outcome — invalidates the entry by changing its key.
//!
//! # File format
//!
//! The backing file is a single JSON document (via the `serde` shim's
//! [`json`] module):
//!
//! ```json
//! {"version":1,"entries":[
//!   {"scalar":"0f3a…16 hex…","candidate":"…","config":"…",
//!    "verdict":"equivalent","stage":"cunroll","detail":"",
//!    "checksum":"plausible"}
//! ]}
//! ```
//!
//! Hashes are 16-digit lower-case hex strings (JSON numbers cannot hold a
//! `u64`). Entries are written in sorted key order, so persisting the same
//! contents twice produces byte-identical files. `checksum` is `null` for
//! verdicts produced by cascades without a checksum stage.
//!
//! # Invalidation rules
//!
//! There is no explicit invalidation: a key embeds everything a verdict
//! depends on, so stale entries are simply never looked up again. The
//! `version` field guards the *format and hash scheme*: bump it when
//! [`lv_cir::structural_hash`]'s protocol or this file layout changes, and
//! readers reject files from other versions (a rejected file is reported as
//! an error, not silently discarded, so an operator can delete it
//! deliberately).

use crate::pipeline::{Equivalence, Stage};
use lv_interp::ChecksumClass;
use serde::json::{self, Value};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The on-disk format version; readers reject any other value.
pub const CACHE_FORMAT_VERSION: i64 = 1;

/// The content-addressed key of one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`lv_cir::structural_hash`] of the scalar kernel.
    pub scalar: u64,
    /// [`lv_cir::hash::structural_hash_in_env`] of the candidate in the
    /// scalar's parameter-name environment (see the module docs for why the
    /// pairing is semantic).
    pub candidate: u64,
    /// [`crate::EngineConfig::semantic_fingerprint`] of the engine
    /// configuration the verdict was produced under.
    pub config: u64,
}

/// A memoized verdict: everything a [`JobReport`](crate::JobReport) needs to
/// be bit-identical to a fresh run, minus the telemetry (a cache hit runs no
/// stages, so it has no traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// The final verdict.
    pub verdict: Equivalence,
    /// The stage that produced it.
    pub stage: Stage,
    /// Counterexample, mismatch, or inconclusive reason.
    pub detail: String,
    /// Checksum classification, when the cascade included the checksum stage.
    pub checksum: Option<ChecksumClass>,
}

/// Why merging two verdict caches failed.
///
/// Verification is deterministic, so two caches built under the same format
/// version can only disagree on a key if one of them is corrupt, was produced
/// by a build with different semantics under the same
/// [`CACHE_FORMAT_VERSION`], or was tampered with. Last-write-wins would
/// silently propagate the corruption into every future sweep, so a merge
/// refuses instead: the conflict is a typed, actionable error naming the key
/// and both verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMergeError {
    /// Both caches hold the key with different verdict payloads.
    Conflict {
        /// The disputed key.
        key: CacheKey,
        /// What the destination cache holds.
        existing: Box<CachedVerdict>,
        /// What the source cache holds.
        incoming: Box<CachedVerdict>,
    },
}

impl std::fmt::Display for CacheMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheMergeError::Conflict {
                key,
                existing,
                incoming,
            } => write!(
                f,
                "verdict cache merge conflict on key (scalar {:016x}, candidate {:016x}, \
                 config {:016x}): existing verdict `{}` @ {} vs incoming `{}` @ {} — \
                 one of the caches is corrupt or was produced by a semantically \
                 different build under the same format version",
                key.scalar,
                key.candidate,
                key.config,
                verdict_tag(existing.verdict),
                stage_tag(existing.stage),
                verdict_tag(incoming.verdict),
                stage_tag(incoming.stage),
            ),
        }
    }
}

impl std::error::Error for CacheMergeError {}

/// What a successful [`VerdictCache::merge_from`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Keys added to the destination.
    pub added: usize,
    /// Keys present in both caches with identical verdicts (no-ops).
    pub agreed: usize,
}

/// Size bounds applied by [`VerdictCache::compact`], so million-candidate
/// sweeps do not grow the cache file without limit.
///
/// Eviction is deterministic: entries are dropped from the *end* of the
/// sorted key order (the same order [`VerdictCache::persist`] writes), so
/// compacting identical contents always keeps identical survivors —
/// bit-identical files again. The cache is content-addressed, so an evicted
/// entry costs only a re-verification on its next lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBounds {
    /// Maximum number of entries to keep; `None` means unbounded.
    pub max_entries: Option<usize>,
    /// Maximum size of the rendered cache file in bytes; `None` means
    /// unbounded. Enforced on the serialized form, so it bounds the file a
    /// [`VerdictCache::persist`] would write.
    pub max_bytes: Option<usize>,
}

impl CacheBounds {
    /// Bounds that never evict.
    pub fn unbounded() -> CacheBounds {
        CacheBounds::default()
    }

    /// Returns `true` when neither bound is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// A thread-safe verdict store, optionally backed by a JSON file.
///
/// Workers on the engine's pool share one cache through an `Arc`; `get` and
/// `insert` take a short mutex, never I/O. File I/O happens only in
/// [`VerdictCache::open`] and [`VerdictCache::persist`].
#[derive(Debug, Default)]
pub struct VerdictCache {
    entries: Mutex<HashMap<CacheKey, CachedVerdict>>,
    path: Option<PathBuf>,
}

impl VerdictCache {
    /// An empty cache with no file backing.
    pub fn in_memory() -> VerdictCache {
        VerdictCache::default()
    }

    /// A cache backed by `path`. A missing file yields an empty cache; an
    /// unreadable or malformed file is an error (never silently discarded).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<VerdictCache> {
        let path = path.into();
        let entries = match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(e),
            Ok(text) => parse_entries(&text)
                .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))?,
        };
        Ok(VerdictCache {
            entries: Mutex::new(entries),
            path: Some(path),
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a verdict.
    pub fn get(&self, key: &CacheKey) -> Option<CachedVerdict> {
        self.entries.lock().unwrap().get(key).cloned()
    }

    /// Stores a verdict.
    pub fn insert(&self, key: CacheKey, verdict: CachedVerdict) {
        self.entries.lock().unwrap().insert(key, verdict);
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Returns `true` if the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges every entry of `other` into this cache.
    ///
    /// A key present in both caches with the *same* verdict is a no-op; a
    /// key present with *different* verdicts aborts the merge with
    /// [`CacheMergeError::Conflict`] — never last-write-wins (see the error
    /// type for why). On error the destination may already contain some of
    /// `other`'s non-conflicting entries; since those entries agree with
    /// `other` by construction, the destination is still internally
    /// consistent.
    pub fn merge_from(&self, other: &VerdictCache) -> Result<MergeStats, CacheMergeError> {
        let incoming = other.entries.lock().unwrap().clone();
        let mut entries = self.entries.lock().unwrap();
        let mut stats = MergeStats::default();
        for (key, verdict) in incoming {
            match entries.get(&key) {
                None => {
                    entries.insert(key, verdict);
                    stats.added += 1;
                }
                Some(existing) if *existing == verdict => stats.agreed += 1,
                Some(existing) => {
                    return Err(CacheMergeError::Conflict {
                        key,
                        existing: Box::new(existing.clone()),
                        incoming: Box::new(verdict),
                    })
                }
            }
        }
        Ok(stats)
    }

    /// [`VerdictCache::merge_from`] over a cache *file*: loads `path` and
    /// merges its entries into this cache. Unreadable or malformed files and
    /// merge conflicts are all reported as [`io::Error`]s (a conflict uses
    /// [`io::ErrorKind::InvalidData`] and carries the rendered
    /// [`CacheMergeError`] message).
    pub fn merge_file(&self, path: impl Into<PathBuf>) -> io::Result<MergeStats> {
        let other = VerdictCache::open(path)?;
        self.merge_from(&other)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Evicts entries until the cache fits `bounds`; returns how many were
    /// dropped. Eviction order is the tail of the sorted key order, so it is
    /// deterministic (see [`CacheBounds`]).
    pub fn compact(&self, bounds: &CacheBounds) -> usize {
        if bounds.is_unbounded() {
            return 0;
        }
        let mut entries = self.entries.lock().unwrap();
        let before = entries.len();
        if let Some(max) = bounds.max_entries {
            if entries.len() > max {
                let mut keys: Vec<CacheKey> = entries.keys().copied().collect();
                keys.sort();
                for key in keys.drain(max..) {
                    entries.remove(&key);
                }
            }
        }
        if let Some(max_bytes) = bounds.max_bytes {
            // One full render establishes the size; each eviction then
            // shrinks it by exactly the entry's rendered bytes plus its
            // separating comma (none once the array is empty), so the bound
            // is enforced without re-rendering per entry.
            let mut size = render_entries(&entries).len();
            if size > max_bytes {
                let mut keys: Vec<CacheKey> = entries.keys().copied().collect();
                keys.sort();
                while size > max_bytes {
                    let Some(key) = keys.pop() else { break };
                    let verdict = entries.remove(&key).expect("key came from the map");
                    let rendered = entry_value(&key, &verdict).to_string().len();
                    size = size.saturating_sub(rendered + usize::from(!entries.is_empty()));
                }
            }
        }
        before - entries.len()
    }

    /// Writes the cache to its backing file (atomically: temp file, then
    /// rename). No-op for an in-memory cache.
    ///
    /// Entries are emitted in sorted key order, so persisting the same
    /// contents always produces byte-identical files.
    pub fn persist(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let text = {
            let entries = self.entries.lock().unwrap();
            render_entries(&entries)
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

pub(crate) fn hex(value: u64) -> Value {
    Value::Str(format!("{:016x}", value))
}

pub(crate) fn parse_hex(value: Option<&Value>, field: &str) -> Result<u64, String> {
    let s = value
        .and_then(Value::as_str)
        .ok_or_else(|| format!("entry is missing the `{}` hash", field))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("`{}` is not a hex hash: `{}`", field, s))
}

pub(crate) fn verdict_tag(verdict: Equivalence) -> &'static str {
    match verdict {
        Equivalence::Equivalent => "equivalent",
        Equivalence::NotEquivalent => "not-equivalent",
        Equivalence::Inconclusive => "inconclusive",
    }
}

pub(crate) fn parse_verdict(tag: &str) -> Result<Equivalence, String> {
    match tag {
        "equivalent" => Ok(Equivalence::Equivalent),
        "not-equivalent" => Ok(Equivalence::NotEquivalent),
        "inconclusive" => Ok(Equivalence::Inconclusive),
        other => Err(format!("unknown verdict tag `{}`", other)),
    }
}

pub(crate) fn stage_tag(stage: Stage) -> &'static str {
    match stage {
        Stage::Checksum => "checksum",
        Stage::Alive2 => "alive2",
        Stage::CUnroll => "cunroll",
        Stage::Splitting => "splitting",
    }
}

pub(crate) fn parse_stage(tag: &str) -> Result<Stage, String> {
    match tag {
        "checksum" => Ok(Stage::Checksum),
        "alive2" => Ok(Stage::Alive2),
        "cunroll" => Ok(Stage::CUnroll),
        "splitting" => Ok(Stage::Splitting),
        other => Err(format!("unknown stage tag `{}`", other)),
    }
}

pub(crate) fn checksum_value(class: Option<ChecksumClass>) -> Value {
    match class {
        None => Value::Null,
        Some(ChecksumClass::Plausible) => Value::Str("plausible".to_string()),
        Some(ChecksumClass::NotEquivalent) => Value::Str("not-equivalent".to_string()),
        Some(ChecksumClass::CannotCompile) => Value::Str("cannot-compile".to_string()),
        Some(ChecksumClass::ScalarFailed) => Value::Str("scalar-failed".to_string()),
    }
}

pub(crate) fn parse_checksum(value: Option<&Value>) -> Result<Option<ChecksumClass>, String> {
    match value {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => match s.as_str() {
            "plausible" => Ok(Some(ChecksumClass::Plausible)),
            "not-equivalent" => Ok(Some(ChecksumClass::NotEquivalent)),
            "cannot-compile" => Ok(Some(ChecksumClass::CannotCompile)),
            "scalar-failed" => Ok(Some(ChecksumClass::ScalarFailed)),
            other => Err(format!("unknown checksum tag `{}`", other)),
        },
        Some(other) => Err(format!("checksum field has the wrong type: {}", other)),
    }
}

fn entry_value(key: &CacheKey, verdict: &CachedVerdict) -> Value {
    Value::Object(vec![
        ("scalar".to_string(), hex(key.scalar)),
        ("candidate".to_string(), hex(key.candidate)),
        ("config".to_string(), hex(key.config)),
        (
            "verdict".to_string(),
            Value::Str(verdict_tag(verdict.verdict).to_string()),
        ),
        (
            "stage".to_string(),
            Value::Str(stage_tag(verdict.stage).to_string()),
        ),
        ("detail".to_string(), Value::Str(verdict.detail.clone())),
        ("checksum".to_string(), checksum_value(verdict.checksum)),
    ])
}

fn render_entries(entries: &HashMap<CacheKey, CachedVerdict>) -> String {
    let mut sorted: Vec<(&CacheKey, &CachedVerdict)> = entries.iter().collect();
    sorted.sort_by_key(|(key, _)| **key);
    let items: Vec<Value> = sorted
        .into_iter()
        .map(|(key, verdict)| entry_value(key, verdict))
        .collect();
    let doc = Value::Object(vec![
        ("version".to_string(), Value::Int(CACHE_FORMAT_VERSION)),
        ("entries".to_string(), Value::Array(items)),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

fn parse_entries(text: &str) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("version").and_then(Value::as_int) {
        Some(CACHE_FORMAT_VERSION) => {}
        Some(other) => {
            return Err(format!(
                "cache file has format version {}, this build reads version {}; \
                 delete the file to rebuild it",
                other, CACHE_FORMAT_VERSION
            ))
        }
        None => return Err("cache file has no `version` field".to_string()),
    }
    let items = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| "cache file has no `entries` array".to_string())?;
    let mut entries = HashMap::with_capacity(items.len());
    for item in items {
        let key = CacheKey {
            scalar: parse_hex(item.get("scalar"), "scalar")?,
            candidate: parse_hex(item.get("candidate"), "candidate")?,
            config: parse_hex(item.get("config"), "config")?,
        };
        let verdict = CachedVerdict {
            verdict: parse_verdict(
                item.get("verdict")
                    .and_then(Value::as_str)
                    .ok_or("entry is missing `verdict`")?,
            )?,
            stage: parse_stage(
                item.get("stage")
                    .and_then(Value::as_str)
                    .ok_or("entry is missing `stage`")?,
            )?,
            detail: item
                .get("detail")
                .and_then(Value::as_str)
                .ok_or("entry is missing `detail`")?
                .to_string(),
            checksum: parse_checksum(item.get("checksum"))?,
        };
        entries.insert(key, verdict);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(CacheKey, CachedVerdict)> {
        vec![
            (
                CacheKey {
                    scalar: 1,
                    candidate: 2,
                    config: 3,
                },
                CachedVerdict {
                    verdict: Equivalence::Equivalent,
                    stage: Stage::CUnroll,
                    detail: String::new(),
                    checksum: Some(ChecksumClass::Plausible),
                },
            ),
            (
                CacheKey {
                    scalar: u64::MAX,
                    candidate: 0xdead_beef,
                    config: 42,
                },
                CachedVerdict {
                    verdict: Equivalence::NotEquivalent,
                    stage: Stage::Checksum,
                    detail: "a[0]: expected 1 but \"the\" code\nproduced 2 \\ lane".to_string(),
                    checksum: Some(ChecksumClass::NotEquivalent),
                },
            ),
            (
                CacheKey {
                    scalar: 7,
                    candidate: 8,
                    config: 9,
                },
                CachedVerdict {
                    verdict: Equivalence::Inconclusive,
                    stage: Stage::Splitting,
                    detail: "solver exhausted its budget".to_string(),
                    checksum: None,
                },
            ),
        ]
    }

    #[test]
    fn file_round_trip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("lv-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.json");
        let _ = std::fs::remove_file(&path);

        let cache = VerdictCache::open(&path).unwrap();
        assert!(cache.is_empty(), "missing file starts empty");
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        cache.persist().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        cache.persist().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "persist is deterministic");

        let reloaded = VerdictCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 3);
        for (key, verdict) in sample_entries() {
            assert_eq!(reloaded.get(&key), Some(verdict));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_files_are_errors() {
        assert!(parse_entries("not json").is_err());
        assert!(parse_entries("{\"entries\":[]}").is_err(), "no version");
        let future = "{\"version\":999,\"entries\":[]}";
        let err = parse_entries(future).unwrap_err();
        assert!(err.contains("999"), "{}", err);
        let bad_hash =
            "{\"version\":1,\"entries\":[{\"scalar\":\"zz\",\"candidate\":\"0\",\"config\":\"0\",\
             \"verdict\":\"equivalent\",\"stage\":\"alive2\",\"detail\":\"\",\"checksum\":null}]}";
        assert!(parse_entries(bad_hash).is_err());
    }

    #[test]
    fn merge_accepts_agreement_and_disjoint_keys() {
        let dest = VerdictCache::in_memory();
        let source = VerdictCache::in_memory();
        let entries = sample_entries();
        // Destination holds entries 0 and 1; source holds 1 (identical) and 2.
        dest.insert(entries[0].0, entries[0].1.clone());
        dest.insert(entries[1].0, entries[1].1.clone());
        source.insert(entries[1].0, entries[1].1.clone());
        source.insert(entries[2].0, entries[2].1.clone());

        let stats = dest.merge_from(&source).expect("agreeing merge succeeds");
        assert_eq!(
            stats,
            MergeStats {
                added: 1,
                agreed: 1
            }
        );
        assert_eq!(dest.len(), 3);
        for (key, verdict) in entries {
            assert_eq!(dest.get(&key), Some(verdict));
        }
    }

    #[test]
    fn merge_conflict_is_a_typed_error_not_last_write_wins() {
        let dest = VerdictCache::in_memory();
        let source = VerdictCache::in_memory();
        let (key, verdict) = sample_entries().remove(0);
        assert_eq!(verdict.verdict, Equivalence::Equivalent);
        let flipped = CachedVerdict {
            verdict: Equivalence::NotEquivalent,
            ..verdict.clone()
        };
        dest.insert(key, verdict.clone());
        source.insert(key, flipped.clone());

        let err = dest.merge_from(&source).expect_err("conflict must error");
        let CacheMergeError::Conflict {
            key: conflict_key,
            existing,
            incoming,
        } = &err;
        assert_eq!(*conflict_key, key);
        assert_eq!(**existing, verdict);
        assert_eq!(**incoming, flipped);
        assert!(err.to_string().contains("merge conflict"), "{}", err);
        // The destination kept its own verdict — no last-write-wins.
        assert_eq!(dest.get(&key), Some(verdict));
    }

    #[test]
    fn merge_file_round_trip_and_conflict() {
        let dir = std::env::temp_dir().join(format!("lv-cache-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.json");
        let _ = std::fs::remove_file(&path);

        let source = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            source.insert(key, verdict);
        }
        source.persist().unwrap();

        let dest = VerdictCache::in_memory();
        let stats = dest.merge_file(&path).unwrap();
        assert_eq!(stats.added, 3);
        // Merging the same file again is pure agreement.
        let stats = dest.merge_file(&path).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                added: 0,
                agreed: 3
            }
        );

        // A flipped verdict is a conflict surfaced as InvalidData.
        let (key, _) = sample_entries().remove(0);
        let err = {
            let conflicted = VerdictCache::in_memory();
            conflicted.insert(
                key,
                CachedVerdict {
                    verdict: Equivalence::Inconclusive,
                    stage: Stage::Alive2,
                    detail: String::new(),
                    checksum: None,
                },
            );
            conflicted.merge_file(&path).expect_err("conflict")
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_is_deterministic_and_bounded() {
        let cache = VerdictCache::in_memory();
        for (key, verdict) in sample_entries() {
            cache.insert(key, verdict);
        }
        assert_eq!(cache.compact(&CacheBounds::unbounded()), 0);
        assert_eq!(cache.len(), 3);

        // Entry bound: the survivors are the smallest keys in sorted order.
        let evicted = cache.compact(&CacheBounds {
            max_entries: Some(2),
            max_bytes: None,
        });
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        let mut keys = sample_entries();
        keys.sort_by_key(|(k, _)| *k);
        assert!(cache.get(&keys[0].0).is_some());
        assert!(cache.get(&keys[1].0).is_some());
        assert!(cache.get(&keys[2].0).is_none(), "largest key evicted");

        // Byte bound: shrink until the rendered file fits. The incremental
        // size accounting must agree with an actual render.
        let tiny = cache.compact(&CacheBounds {
            max_entries: None,
            max_bytes: Some(120),
        });
        assert!(tiny >= 1, "at least one entry must go");
        assert!(cache.len() <= 1);

        let dir = std::env::temp_dir().join(format!("lv-cache-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bounded.json");
        let _ = std::fs::remove_file(&path);
        let bounded = VerdictCache::open(&path).unwrap();
        for (key, verdict) in sample_entries() {
            bounded.insert(key, verdict);
        }
        let max_bytes = 260;
        bounded.compact(&CacheBounds {
            max_entries: None,
            max_bytes: Some(max_bytes),
        });
        bounded.persist().unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(
            written.len() <= max_bytes,
            "persisted {} bytes > bound {}",
            written.len(),
            max_bytes
        );
        assert!(!bounded.is_empty(), "the bound leaves room for an entry");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_cache_round_trips_values() {
        let cache = VerdictCache::in_memory();
        let (key, verdict) = sample_entries().remove(0);
        assert_eq!(cache.get(&key), None);
        cache.insert(key, verdict.clone());
        assert_eq!(cache.get(&key), Some(verdict));
        assert_eq!(cache.len(), 1);
        cache.persist().unwrap(); // no-op without a backing file
        assert!(cache.path().is_none());
    }
}
