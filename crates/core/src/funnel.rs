//! The telemetry funnel and the adaptive budget policy built on it.
//!
//! Every job the engine runs records a [`StageTrace`](crate::StageTrace)
//! per cascade stage; PR 1
//! added the telemetry, this module is its first consumer. A
//! [`FunnelReport`] aggregates a batch's traces per stage — how many jobs
//! reached the stage, how many it killed (and with which verdict), and the
//! distribution of SAT conflicts it spent — and renders the result as a
//! funnel table with log₂ conflict histograms.
//!
//! The [`AdaptiveBudgetPolicy`] turns that distribution into tuned
//! [`SolverBudget`]s: conclusive queries tell us how much effort proofs
//! *actually* need at each stage, so the policy caps each stage's budget at
//! the maximum conclusive effort observed plus a safety margin. Inconclusive
//! queries at a stage — the ones that burn the whole budget and fall
//! through anyway — then give up earlier and fall through to the next
//! (cheaper-per-verdict) strategy sooner. Derived budgets only ever
//! *tighten* the configured base and never drop below the policy floor.
//! Tuning is opt-in ([`EngineConfig::adaptive`](crate::EngineConfig)): with
//! it off, budgets are exactly the configured ones and verdicts stay
//! bit-identical.

use crate::engine::JobReport;
use crate::pipeline::{Equivalence, Stage};
use lv_tv::{SolverBudget, TvConfig};
use std::time::Duration;

/// Number of log₂ buckets in a conflict histogram: bucket 0 counts
/// zero-conflict stage runs, bucket `i ≥ 1` counts runs spending
/// `[2^(i-1), 2^i)` conflicts, and the last bucket absorbs everything above.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Aggregated telemetry for one cascade stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFunnel {
    /// The stage.
    pub stage: Stage,
    /// Jobs whose cascade reached this stage.
    pub entered: usize,
    /// Jobs this stage concluded `Equivalent`.
    pub equivalent: usize,
    /// Jobs this stage concluded `NotEquivalent`.
    pub not_equivalent: usize,
    /// Jobs whose cascade ended here without a usable answer: a conclusive
    /// `Inconclusive` (e.g. the scalar itself failed to execute) or an
    /// exhausted cascade whose last stage this was.
    pub gave_up: usize,
    /// Jobs that fell through to a later stage.
    pub passed: usize,
    /// SAT conflicts spent by this stage across all jobs.
    pub total_conflicts: u64,
    /// Largest conflict count any single run of this stage spent.
    pub max_conflicts: u64,
    /// Largest conflict count among *conclusive* runs — what the adaptive
    /// policy budgets for.
    pub conclusive_max_conflicts: u64,
    /// CNF clauses built by this stage across all jobs.
    pub total_clauses: u64,
    /// Largest clause count among conclusive runs.
    pub conclusive_max_clauses: u64,
    /// Wall time spent in this stage across all jobs.
    pub wall: Duration,
    /// Histogram of per-run conflict counts (see [`HISTOGRAM_BUCKETS`]).
    pub conflict_histogram: [usize; HISTOGRAM_BUCKETS],
    /// Runs whose candidate renamed its array parameters away from the
    /// scalar's ([`StageTrace::name_mismatch`](crate::StageTrace)) — on the
    /// checksum stage this counts candidates the harness tested vacuously on
    /// disjoint arrays.
    pub name_mismatches: usize,
    /// Portfolio runs whose tight-budget attempt was inconclusive and
    /// escalated to the full budget
    /// ([`StageTrace::escalated`](crate::StageTrace)). Always `0` without
    /// [`EngineReuse::portfolio`](crate::EngineReuse).
    pub escalations: usize,
}

impl StageFunnel {
    fn new(stage: Stage) -> StageFunnel {
        StageFunnel {
            stage,
            entered: 0,
            equivalent: 0,
            not_equivalent: 0,
            gave_up: 0,
            passed: 0,
            total_conflicts: 0,
            max_conflicts: 0,
            conclusive_max_conflicts: 0,
            total_clauses: 0,
            conclusive_max_clauses: 0,
            wall: Duration::ZERO,
            conflict_histogram: [0; HISTOGRAM_BUCKETS],
            name_mismatches: 0,
            escalations: 0,
        }
    }

    /// Jobs this stage removed from the funnel with a definite answer.
    pub fn killed(&self) -> usize {
        self.equivalent + self.not_equivalent
    }
}

fn histogram_bucket(conflicts: u64) -> usize {
    if conflicts == 0 {
        0
    } else {
        ((64 - conflicts.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Aggregated per-stage telemetry for a batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunnelReport {
    /// Stages in cascade order of first appearance.
    pub stages: Vec<StageFunnel>,
    /// Jobs aggregated (including cached ones).
    pub jobs: usize,
    /// Jobs answered from the verdict cache (they contribute no traces).
    pub cached: usize,
    /// Cross-job SMT reuse activity summed over all jobs (all zero when
    /// [`EngineReuse`](crate::EngineReuse) is off).
    pub reuse: crate::engine::ReuseCounters,
    /// Clause-database simplification activity summed over all jobs (all
    /// zero when [`EngineReuse::simplify`](crate::EngineReuse) is off).
    pub simplify: crate::engine::SimplifyCounters,
}

impl FunnelReport {
    /// Builds the funnel from per-job reports (usually
    /// [`BatchReport::jobs`](crate::BatchReport)).
    pub fn from_jobs(reports: &[JobReport]) -> FunnelReport {
        let mut funnel = FunnelReport {
            stages: Vec::new(),
            jobs: reports.len(),
            cached: reports.iter().filter(|r| r.cache_hit).count(),
            reuse: Default::default(),
            simplify: Default::default(),
        };
        for report in reports {
            funnel.reuse.absorb(report.reuse);
            funnel.simplify.absorb(report.simplify);
            let last = report.traces.len().saturating_sub(1);
            for (i, trace) in report.traces.iter().enumerate() {
                let stage = match funnel.stages.iter_mut().find(|s| s.stage == trace.stage) {
                    Some(stage) => stage,
                    None => {
                        funnel.stages.push(StageFunnel::new(trace.stage));
                        funnel.stages.last_mut().expect("just pushed")
                    }
                };
                stage.entered += 1;
                stage.total_conflicts += trace.conflicts;
                stage.max_conflicts = stage.max_conflicts.max(trace.conflicts);
                stage.total_clauses += trace.clauses;
                stage.wall += trace.wall;
                stage.conflict_histogram[histogram_bucket(trace.conflicts)] += 1;
                if trace.name_mismatch {
                    stage.name_mismatches += 1;
                }
                if trace.escalated {
                    stage.escalations += 1;
                }
                if trace.conclusive {
                    stage.conclusive_max_conflicts =
                        stage.conclusive_max_conflicts.max(trace.conflicts);
                    stage.conclusive_max_clauses = stage.conclusive_max_clauses.max(trace.clauses);
                    match report.verdict {
                        Equivalence::Equivalent => stage.equivalent += 1,
                        Equivalence::NotEquivalent => stage.not_equivalent += 1,
                        Equivalence::Inconclusive => stage.gave_up += 1,
                    }
                } else if i == last {
                    // The cascade ran out of stages here.
                    stage.gave_up += 1;
                } else {
                    stage.passed += 1;
                }
            }
        }
        funnel
    }

    /// The aggregate for one stage, if any job reached it.
    pub fn stage(&self, stage: Stage) -> Option<&StageFunnel> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Renders the funnel as a text table, one stage per row, with a log₂
    /// conflict histogram sparkline per stage.
    pub fn render(&self) -> String {
        let mut out = format!(
            "jobs: {} ({} from cache)\nStage\tEntered\tEquiv\tNot Equiv\tGave up\tPassed\tConflicts\tMax\tWall\tConflict histogram (log2)\n",
            self.jobs, self.cached
        );
        for s in &self.stages {
            let bars: String = {
                let peak = s.conflict_histogram.iter().copied().max().unwrap_or(0);
                s.conflict_histogram
                    .iter()
                    .map(|&n| spark(n, peak))
                    .collect()
            };
            out += &format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}ms\t{}\n",
                s.stage.label(),
                s.entered,
                s.equivalent,
                s.not_equivalent,
                s.gave_up,
                s.passed,
                s.total_conflicts,
                s.max_conflicts,
                s.wall.as_millis(),
                bars
            );
        }
        let mismatched: usize = self.stages.iter().map(|s| s.name_mismatches).sum();
        if mismatched > 0 {
            out += &format!(
                "warning: {} candidate(s) renamed array parameters away from the scalar's \
                 (checksum ran on disjoint arrays)\n",
                mismatched
            );
        }
        if !self.reuse.is_zero() {
            out += &format!(
                "reuse: {} blast-cache hits / {} misses, {} assumption reuses, \
                 {} portfolio escalations\n",
                self.reuse.blast_hits,
                self.reuse.blast_misses,
                self.reuse.assumption_reuses,
                self.reuse.escalations
            );
        }
        if !self.simplify.is_zero() {
            out += &format!(
                "simplify: {} vars eliminated, {} clauses subsumed, \
                 {} strengthened, {} arena bytes peak, {}us preprocessing\n",
                self.simplify.vars_eliminated,
                self.simplify.clauses_subsumed,
                self.simplify.clauses_strengthened,
                self.simplify.arena_bytes,
                self.simplify.preprocess_micros
            );
        }
        out
    }
}

fn spark(count: usize, peak: usize) -> char {
    const LEVELS: [char; 5] = ['.', '▁', '▄', '▆', '█'];
    if count == 0 || peak == 0 {
        LEVELS[0]
    } else {
        // 1..=peak maps onto the four non-empty glyphs.
        LEVELS[1 + (count * 3).div_ceil(peak)]
    }
}

/// Derives per-stage solver budgets from a funnel's conflict distribution.
///
/// See the module docs for the tuning rationale. The policy also decides how
/// a batch is split into the *pilot* (run under base budgets to gather the
/// distribution) and the remainder (run under the derived budgets) by
/// [`VerificationEngine::run_batch_adaptive`](crate::VerificationEngine::run_batch_adaptive).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveBudgetPolicy {
    /// Fraction of the batch used as the pilot, in `(0, 1]`.
    pub pilot_fraction: f64,
    /// Lower bound on the pilot size (small batches are all pilot).
    pub min_pilot: usize,
    /// Safety margin over the maximum conclusive effort observed, in
    /// percent: `100` doubles it.
    pub margin_percent: u64,
    /// Budgets never tuned below this floor.
    pub floor: SolverBudget,
}

impl Default for AdaptiveBudgetPolicy {
    fn default() -> Self {
        AdaptiveBudgetPolicy {
            pilot_fraction: 0.25,
            min_pilot: 8,
            margin_percent: 100,
            floor: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 100_000,
            },
        }
    }
}

impl AdaptiveBudgetPolicy {
    /// How many of `jobs` jobs the pilot phase covers.
    pub fn pilot_len(&self, jobs: usize) -> usize {
        if jobs == 0 {
            return 0;
        }
        let by_fraction = (jobs as f64 * self.pilot_fraction).ceil() as usize;
        by_fraction.max(self.min_pilot).min(jobs)
    }

    /// Tunes the three symbolic-stage budgets of `base` from the observed
    /// funnel. Stages the funnel never saw conclude keep their base budget —
    /// there is no evidence to tune from.
    pub fn derive(&self, funnel: &FunnelReport, base: &TvConfig) -> TvConfig {
        let mut tuned = base.clone();
        tuned.alive2_budget = self.tune(funnel.stage(Stage::Alive2), base.alive2_budget);
        tuned.cunroll_budget = self.tune(funnel.stage(Stage::CUnroll), base.cunroll_budget);
        tuned.spatial_budget = self.tune(funnel.stage(Stage::Splitting), base.spatial_budget);
        tuned
    }

    /// Tunes the symbolic-stage budgets of `base` from a persisted
    /// [`CrossRunProfile`](crate::profile::CrossRunProfile) instead of a
    /// pilot slice's funnel: the profile's per-category cells are aggregated
    /// per stage (kills summed, conclusive-effort highwater marks maxed) and
    /// fed through the same tightening rule, so a warm-profile run starts
    /// under tuned budgets without sacrificing any leading jobs as a pilot.
    /// Like [`AdaptiveBudgetPolicy::derive`], the result only tightens
    /// `base` and never drops below the policy floor; stages the profile
    /// never saw conclude keep their base budget.
    pub fn derive_from_profile(
        &self,
        profile: &crate::profile::CrossRunProfile,
        base: &TvConfig,
    ) -> TvConfig {
        let mut tuned = base.clone();
        tuned.alive2_budget = self.tune(
            profile_stage_funnel(profile, Stage::Alive2).as_ref(),
            base.alive2_budget,
        );
        tuned.cunroll_budget = self.tune(
            profile_stage_funnel(profile, Stage::CUnroll).as_ref(),
            base.cunroll_budget,
        );
        tuned.spatial_budget = self.tune(
            profile_stage_funnel(profile, Stage::Splitting).as_ref(),
            base.spatial_budget,
        );
        tuned
    }

    fn tune(&self, observed: Option<&StageFunnel>, base: SolverBudget) -> SolverBudget {
        let Some(stage) = observed else {
            return base;
        };
        if stage.killed() == 0 {
            return base;
        }
        let scale = |v: u64| v.saturating_mul(100 + self.margin_percent) / 100;
        let derived = SolverBudget {
            max_conflicts: scale(stage.conclusive_max_conflicts).max(1),
            // The clause budget models memory, and bit-blasting happens
            // before any conflict is spent — budget for the largest
            // conclusive query seen, with the same margin.
            max_clauses: usize::try_from(scale(stage.conclusive_max_clauses).max(1))
                .unwrap_or(usize::MAX),
        };
        derived.max_with(self.floor).min_with(base)
    }
}

/// Aggregates a profile's per-category cells for one stage into the
/// [`StageFunnel`] shape the tuning rule consumes. `None` when no category
/// ever reached the stage (no evidence — keep the base budget).
fn profile_stage_funnel(
    profile: &crate::profile::CrossRunProfile,
    stage: Stage,
) -> Option<StageFunnel> {
    let mut funnel = StageFunnel::new(stage);
    let mut seen = false;
    for category in lv_analysis::KernelCategory::all() {
        if let Some(cell) = profile.cell(category, stage) {
            seen = true;
            funnel.entered += usize::try_from(cell.entered).unwrap_or(usize::MAX);
            // The tuning rule only consumes `killed()` and the conclusive
            // highwater marks; the profile does not split kills by verdict,
            // so they all land in `equivalent`.
            funnel.equivalent += usize::try_from(cell.killed).unwrap_or(usize::MAX);
            funnel.total_conflicts += cell.conflicts;
            funnel.conclusive_max_conflicts = funnel
                .conclusive_max_conflicts
                .max(cell.conclusive_max_conflicts);
            funnel.conclusive_max_clauses = funnel
                .conclusive_max_clauses
                .max(cell.conclusive_max_clauses);
        }
    }
    seen.then_some(funnel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StageTrace;

    fn job(verdict: Equivalence, traces: Vec<StageTrace>) -> JobReport {
        JobReport {
            label: "job".to_string(),
            verdict,
            stage: traces.last().map_or(Stage::Alive2, |t| t.stage),
            detail: String::new(),
            checksum: None,
            traces,
            wall: Duration::ZERO,
            cache_hit: false,
            reuse: Default::default(),
            simplify: Default::default(),
        }
    }

    fn trace(stage: Stage, conclusive: bool, conflicts: u64, clauses: u64) -> StageTrace {
        StageTrace {
            stage,
            conclusive,
            wall: Duration::from_millis(1),
            conflicts,
            clauses,
            name_mismatch: false,
            escalated: false,
        }
    }

    #[test]
    fn funnel_counts_add_up() {
        let reports = vec![
            // Killed by checksum.
            job(
                Equivalence::NotEquivalent,
                vec![trace(Stage::Checksum, true, 0, 0)],
            ),
            // Passed checksum, proven by Alive2.
            job(
                Equivalence::Equivalent,
                vec![
                    trace(Stage::Checksum, false, 0, 0),
                    trace(Stage::Alive2, true, 500, 10_000),
                ],
            ),
            // Fell through Alive2, exhausted the cascade at C-Unroll.
            job(
                Equivalence::Inconclusive,
                vec![
                    trace(Stage::Checksum, false, 0, 0),
                    trace(Stage::Alive2, false, 5_000, 90_000),
                    trace(Stage::CUnroll, false, 9_000, 120_000),
                ],
            ),
        ];
        let funnel = FunnelReport::from_jobs(&reports);
        assert_eq!(funnel.jobs, 3);
        assert_eq!(funnel.cached, 0);

        let checksum = funnel.stage(Stage::Checksum).unwrap();
        assert_eq!(checksum.entered, 3);
        assert_eq!(checksum.not_equivalent, 1);
        assert_eq!(checksum.passed, 2);

        let alive2 = funnel.stage(Stage::Alive2).unwrap();
        assert_eq!(alive2.entered, 2);
        assert_eq!(alive2.equivalent, 1);
        assert_eq!(alive2.passed, 1);
        assert_eq!(alive2.conclusive_max_conflicts, 500);
        assert_eq!(alive2.max_conflicts, 5_000);

        let cunroll = funnel.stage(Stage::CUnroll).unwrap();
        assert_eq!(cunroll.entered, 1);
        assert_eq!(cunroll.gave_up, 1, "cascade exhausted here");

        for stage in &funnel.stages {
            assert_eq!(
                stage.entered,
                stage.killed() + stage.gave_up + stage.passed,
                "{:?}",
                stage.stage
            );
            assert_eq!(
                stage.conflict_histogram.iter().sum::<usize>(),
                stage.entered
            );
        }
        let rendered = funnel.render();
        assert!(rendered.contains("Checksum"), "{}", rendered);
        assert!(rendered.contains("Alive2"), "{}", rendered);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(histogram_bucket(0), 0);
        assert_eq!(histogram_bucket(1), 1);
        assert_eq!(histogram_bucket(2), 2);
        assert_eq!(histogram_bucket(3), 2);
        assert_eq!(histogram_bucket(4), 3);
        assert_eq!(histogram_bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn adaptive_policy_tightens_toward_observed_effort() {
        let reports = vec![
            job(
                Equivalence::Equivalent,
                vec![trace(Stage::Alive2, true, 400, 50_000)],
            ),
            job(
                Equivalence::Equivalent,
                vec![trace(Stage::Alive2, true, 900, 80_000)],
            ),
            job(
                Equivalence::Inconclusive,
                vec![
                    trace(Stage::Alive2, false, 60_000, 600_000),
                    trace(Stage::CUnroll, false, 1_000, 1_000),
                ],
            ),
        ];
        let funnel = FunnelReport::from_jobs(&reports);
        let base = TvConfig::default();
        let policy = AdaptiveBudgetPolicy::default();
        let tuned = policy.derive(&funnel, &base);

        // Alive2 concluded at ≤900 conflicts: tuned to 1800 (margin 100%),
        // well below the 60k base — inconclusive jobs stop wasting 60k.
        assert_eq!(tuned.alive2_budget.max_conflicts, 1_800);
        assert_eq!(tuned.alive2_budget.max_clauses, 160_000);
        // C-Unroll never concluded: keep the base budget.
        assert_eq!(
            tuned.cunroll_budget.max_conflicts,
            base.cunroll_budget.max_conflicts
        );
        // Splitting never ran: keep the base budget.
        assert_eq!(
            tuned.spatial_budget.max_conflicts,
            base.spatial_budget.max_conflicts
        );
        // Non-budget fields are untouched.
        assert_eq!(tuned.alive2_chunks, base.alive2_chunks);
    }

    #[test]
    fn adaptive_policy_respects_floor_and_base() {
        let reports = vec![job(
            Equivalence::Equivalent,
            vec![trace(Stage::Alive2, true, 1, 10)],
        )];
        let funnel = FunnelReport::from_jobs(&reports);
        let base = TvConfig::default();
        let policy = AdaptiveBudgetPolicy::default();
        let tuned = policy.derive(&funnel, &base);
        // Tiny observations are floored.
        assert_eq!(
            tuned.alive2_budget.max_conflicts,
            policy.floor.max_conflicts
        );
        assert_eq!(tuned.alive2_budget.max_clauses, policy.floor.max_clauses);

        // Huge observations are capped at the base.
        let reports = vec![job(
            Equivalence::Equivalent,
            vec![trace(Stage::Alive2, true, u64::MAX / 2, u64::MAX / 2)],
        )];
        let funnel = FunnelReport::from_jobs(&reports);
        let tuned = policy.derive(&funnel, &base);
        assert_eq!(
            tuned.alive2_budget.max_conflicts,
            base.alive2_budget.max_conflicts
        );
    }

    #[test]
    fn profile_derivation_matches_pilot_derivation() {
        use crate::profile::CrossRunProfile;
        use lv_analysis::KernelCategory;

        // The same evidence, once as a pilot funnel and once as a persisted
        // profile, must derive the same budgets.
        let reports = vec![
            job(
                Equivalence::Equivalent,
                vec![trace(Stage::Alive2, true, 400, 50_000)],
            ),
            job(
                Equivalence::Equivalent,
                vec![trace(Stage::Alive2, true, 900, 80_000)],
            ),
        ];
        let funnel = FunnelReport::from_jobs(&reports);
        let mut profile = CrossRunProfile::new();
        for report in &reports {
            profile.observe(KernelCategory::Reduction, report);
        }
        let base = TvConfig::default();
        let policy = AdaptiveBudgetPolicy::default();
        let from_pilot = policy.derive(&funnel, &base);
        let from_profile = policy.derive_from_profile(&profile, &base);
        assert_eq!(
            from_pilot.alive2_budget, from_profile.alive2_budget,
            "same evidence, same tightening"
        );
        // Unobserved stages keep the base budget either way.
        assert_eq!(from_profile.cunroll_budget, base.cunroll_budget);
        assert_eq!(from_profile.spatial_budget, base.spatial_budget);

        // An empty profile changes nothing at all.
        let untouched = policy.derive_from_profile(&CrossRunProfile::new(), &base);
        assert_eq!(untouched.alive2_budget, base.alive2_budget);
    }

    #[test]
    fn pilot_sizing() {
        let policy = AdaptiveBudgetPolicy::default();
        assert_eq!(policy.pilot_len(0), 0);
        assert_eq!(policy.pilot_len(4), 4, "small batches are all pilot");
        assert_eq!(policy.pilot_len(100), 25);
        assert_eq!(policy.pilot_len(20), 8, "min_pilot dominates");
    }
}
