//! The end-to-end LLM-Vectorizer pipeline (Algorithm 1).
//!
//! `check_equivalence` composes the checksum filter with the three symbolic
//! strategies exactly as Algorithm 1 does: a candidate refuted by testing is
//! `NotEquivalent` immediately; a plausible candidate is passed to Alive2
//! unrolling, then C-level unrolling, then spatial splitting, stopping at the
//! first conclusive verdict.

use lv_cir::ast::Function;
use lv_interp::ChecksumConfig;
use lv_tv::TvConfig;
use serde::{Deserialize, Serialize};

/// The stage of Algorithm 1 that produced the final verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Checksum-based testing (line 2).
    Checksum,
    /// Alive2-style unrolling (line 6).
    Alive2,
    /// C-level unrolling (line 9).
    CUnroll,
    /// Spatial case splitting (line 12).
    Splitting,
}

impl Stage {
    /// Display label matching Table 3.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Checksum => "Checksum",
            Stage::Alive2 => "Alive2",
            Stage::CUnroll => "C-Unroll",
            Stage::Splitting => "Splitting",
        }
    }
}

/// The three-valued verdict of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Equivalence {
    /// Formally verified (modulo bounded unrolling).
    Equivalent,
    /// Proven different (by a failing test or a symbolic counterexample).
    NotEquivalent,
    /// Could not be decided (timeouts, unsupported features).
    Inconclusive,
}

/// The full result of checking one candidate against its scalar kernel.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// The verdict.
    pub verdict: Equivalence,
    /// The stage that produced it.
    pub stage: Stage,
    /// Details: counterexample, mismatch, or inconclusive reason.
    pub detail: String,
}

/// Configuration of the pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Checksum testing configuration.
    pub checksum: ChecksumConfig,
    /// Symbolic verification configuration.
    pub tv: TvConfig,
}

/// Algorithm 1: checksum testing followed by the three symbolic strategies.
///
/// This is a thin wrapper over a single-job run of the
/// [`crate::engine::VerificationEngine`], so the one-shot path and the
/// parallel batch path exercise exactly the same cascade code.
pub fn check_equivalence(
    scalar: &Function,
    candidate: &Function,
    config: &PipelineConfig,
) -> EquivalenceReport {
    crate::engine::VerificationEngine::new(crate::engine::EngineConfig::full(config.clone()))
        .check_one(scalar, candidate)
        .equivalence_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_agents::vectorize_correct;
    use lv_cir::parse_function;

    #[test]
    fn correct_candidate_is_verified() {
        let scalar = parse_function(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        )
        .unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
        assert_eq!(report.verdict, Equivalence::Equivalent, "{}", report.detail);
    }

    #[test]
    fn wrong_candidate_is_refuted_by_checksum() {
        let scalar = parse_function(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        )
        .unwrap();
        let wrong = parse_function(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 2; } }",
        )
        .unwrap();
        let report = check_equivalence(&scalar, &wrong, &PipelineConfig::default());
        assert_eq!(report.verdict, Equivalence::NotEquivalent);
        assert_eq!(report.stage, Stage::Checksum);
    }

    #[test]
    fn paper_s212_candidate_is_verified_symbolically() {
        let scalar = lv_tsvc::kernel("s212").unwrap().function();
        let candidate = vectorize_correct(&scalar).unwrap();
        let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
        assert_eq!(report.verdict, Equivalence::Equivalent, "{}", report.detail);
        assert_ne!(report.stage, Stage::Checksum);
    }

    #[test]
    fn stage_labels() {
        assert_eq!(Stage::Checksum.label(), "Checksum");
        assert_eq!(Stage::Splitting.label(), "Splitting");
    }
}
