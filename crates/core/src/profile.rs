//! The persisted cross-run telemetry profile.
//!
//! The [`FunnelReport`](crate::FunnelReport) aggregates one batch's stage
//! telemetry and the [`AdaptiveBudgetPolicy`](crate::AdaptiveBudgetPolicy)
//! tunes budgets from a *pilot slice* of the same batch — but everything
//! either learns dies with the process. A [`CrossRunProfile`] is the
//! cross-run memory: per kernel category ([`lv_analysis::KernelCategory`])
//! and per cascade stage it accumulates how many jobs reached the stage, how
//! many it killed, and how much wall time and SAT effort it spent, over
//! *every* sweep that ever recorded into it. From a loaded profile,
//! [`StageSchedule::from_profile`](crate::engine::StageSchedule::from_profile)
//! derives the per-category stage order and
//! [`AdaptiveBudgetPolicy::derive_from_profile`](crate::AdaptiveBudgetPolicy::derive_from_profile)
//! derives tightened budgets for the next run — no pilot slice needed.
//!
//! # File format
//!
//! The profile persists as a CRC-framed append-only journal
//! ([`crate::journal`] documents the framing), conventionally next to the
//! verdict cache:
//!
//! * header record: `{"journal":"cross-run-profile","version":1}`;
//! * one record per `(category, stage)` cell **delta**:
//!   `{"category":"reduction","stage":"alive2","entered":…,"killed":…,
//!   "wall_us":…,"conflicts":…,"cmax_conflicts":…,"cmax_clauses":…}` with
//!   every count a 16-digit lower-case hex `u64`, exactly like the verdict
//!   cache's hashes.
//!
//! Each sweep appends its own deltas ([`CrossRunProfile::append_to`]) —
//! O(cells) I/O, at most `categories × stages` records per run — and replay
//! *sums* the deltas (`entered`/`killed`/`wall_us`/`conflicts`) and *maxes*
//! the conclusive-effort highwater marks (`cmax_*`). A torn final record
//! (process killed mid-append) is detected by checksum and truncated like
//! any other journal; [`CrossRunProfile::rewrite`] compacts the accumulated
//! deltas into one record per cell.
//!
//! # Invalidation rules
//!
//! The profile is *advisory*: it decides stage order and budgets, never
//! verdicts, so it needs no content addressing — stale observations only
//! cost efficiency, not correctness. The `version` field guards the format
//! and the categorizer's semantics together: bump it when the record layout
//! *or* [`lv_analysis::categorize`]'s bucketing changes, and readers reject
//! other versions (reported as an error, never silently discarded). Budget
//! observations made under one solver configuration are capped at the
//! *current* base budgets on derivation, so a profile recorded under looser
//! budgets can only ever tighten.

use crate::cache::{parse_hex, parse_stage, stage_tag};
use crate::engine::{Job, JobReport};
use crate::journal::{self, FsyncPolicy, JournalWriter};
use crate::pipeline::Stage;
use lv_analysis::{categorize, KernelCategory};
use serde::json::{Emitter, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The profile journal format version; readers reject other values.
pub const PROFILE_FORMAT_VERSION: i64 = 1;

/// The journal-header kind tag for profile journals.
pub(crate) const PROFILE_JOURNAL_KIND: &str = "cross-run-profile";

/// Accumulated telemetry for one `(category, stage)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileCell {
    /// Stage executions (jobs of the category whose cascade reached the
    /// stage).
    pub entered: u64,
    /// Executions that concluded with a verdict.
    pub killed: u64,
    /// Total stage wall time, in microseconds.
    pub wall_us: u64,
    /// Total SAT conflicts spent.
    pub conflicts: u64,
    /// Largest conflict count among conclusive executions — what budget
    /// derivation caps toward.
    pub conclusive_max_conflicts: u64,
    /// Largest clause count among conclusive executions.
    pub conclusive_max_clauses: u64,
    /// Portfolio runs whose tight-budget attempt escalated to the full
    /// budget ([`StageTrace::escalated`](crate::StageTrace)) — evidence of
    /// how often the tightened first attempt fails for this cell. Older
    /// journals without the field replay as `0`.
    pub escalations: u64,
    /// Variables removed by clause-database preprocessing
    /// ([`JobReport::simplify`](crate::JobReport)), attributed to the job's
    /// concluding stage. Older journals without the field replay as `0`.
    pub vars_eliminated: u64,
    /// Clauses deleted by subsumption / inprocessing DB reduction,
    /// attributed like `vars_eliminated`.
    pub clauses_subsumed: u64,
    /// Clauses shortened by self-subsuming resolution / clause
    /// minimization, attributed like `vars_eliminated`.
    pub clauses_strengthened: u64,
}

impl ProfileCell {
    fn absorb(&mut self, other: &ProfileCell) {
        self.entered += other.entered;
        self.killed += other.killed;
        self.wall_us += other.wall_us;
        self.conflicts += other.conflicts;
        self.conclusive_max_conflicts = self
            .conclusive_max_conflicts
            .max(other.conclusive_max_conflicts);
        self.conclusive_max_clauses = self
            .conclusive_max_clauses
            .max(other.conclusive_max_clauses);
        self.escalations += other.escalations;
        self.vars_eliminated += other.vars_eliminated;
        self.clauses_subsumed += other.clauses_subsumed;
        self.clauses_strengthened += other.clauses_strengthened;
    }
}

/// Per-category per-stage telemetry accumulated across runs. See the
/// [module docs](self) for the persistence contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossRunProfile {
    cells: BTreeMap<(KernelCategory, Stage), ProfileCell>,
}

impl CrossRunProfile {
    /// An empty profile.
    pub fn new() -> CrossRunProfile {
        CrossRunProfile::default()
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of populated `(category, stage)` cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// The accumulated cell for `(category, stage)`, if any job of that
    /// category ever reached that stage.
    pub fn cell(&self, category: KernelCategory, stage: Stage) -> Option<&ProfileCell> {
        self.cells.get(&(category, stage))
    }

    /// All populated cells, in stable `(category, stage)` order.
    pub fn cells(&self) -> impl Iterator<Item = (KernelCategory, Stage, &ProfileCell)> {
        self.cells.iter().map(|((c, s), cell)| (*c, *s, cell))
    }

    /// Records one job's stage traces under its scalar kernel's category.
    /// Cache hits contribute nothing (they carry no traces — the stages they
    /// would have run were never executed).
    pub fn observe(&mut self, category: KernelCategory, report: &JobReport) {
        for trace in &report.traces {
            let cell = self.cells.entry((category, trace.stage)).or_default();
            cell.entered += 1;
            cell.wall_us += u64::try_from(trace.wall.as_micros()).unwrap_or(u64::MAX);
            cell.conflicts += trace.conflicts;
            if trace.escalated {
                cell.escalations += 1;
            }
            if trace.conclusive {
                cell.killed += 1;
                cell.conclusive_max_conflicts = cell.conclusive_max_conflicts.max(trace.conflicts);
                cell.conclusive_max_clauses = cell.conclusive_max_clauses.max(trace.clauses);
            }
        }
        // Simplification activity is counted per job, not per trace;
        // attribute it to the concluding stage's cell (the stage whose
        // queries it mostly shrank).
        if !report.traces.is_empty() {
            let simplify = report.simplify;
            if simplify.vars_eliminated | simplify.clauses_subsumed | simplify.clauses_strengthened
                != 0
            {
                let cell = self.cells.entry((category, report.stage)).or_default();
                cell.vars_eliminated += simplify.vars_eliminated;
                cell.clauses_subsumed += simplify.clauses_subsumed;
                cell.clauses_strengthened += simplify.clauses_strengthened;
            }
        }
    }

    /// The profile delta of one finished batch: every report is categorized
    /// by its job's scalar kernel and observed. `jobs` and `reports` pair up
    /// by index (the engine keeps batch reports in job order).
    pub fn from_batch(jobs: &[Job], reports: &[JobReport]) -> CrossRunProfile {
        let mut delta = CrossRunProfile::new();
        for (job, report) in jobs.iter().zip(reports) {
            // Trace-less reports (cache hits) contribute nothing; skip them
            // before paying for the dependence analysis, so a fully warm
            // sweep's (empty) delta costs no categorization at all.
            if !report.traces.is_empty() {
                delta.observe(categorize(&job.scalar), report);
            }
        }
        delta
    }

    /// Merges `other`'s observations into this profile.
    pub fn merge(&mut self, other: &CrossRunProfile) {
        for ((category, stage), cell) in &other.cells {
            self.cells
                .entry((*category, *stage))
                .or_default()
                .absorb(cell);
        }
    }

    /// Loads a profile journal. A missing file is an empty profile; a
    /// malformed one is an error (never silently discarded). A torn final
    /// record is truncated per the journal contract.
    pub fn load(path: impl AsRef<Path>) -> io::Result<CrossRunProfile> {
        let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
        let text = match std::fs::read_to_string(path.as_ref()) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(CrossRunProfile::new()),
            Err(e) => return Err(e),
            Ok(text) => text,
        };
        if !journal::is_journal(&text) {
            return Err(invalid(format!(
                "{} is not a cross-run profile journal",
                path.as_ref().display()
            )));
        }
        let replayed = journal::replay(&text).map_err(invalid)?;
        journal::check_header(&replayed, PROFILE_JOURNAL_KIND, PROFILE_FORMAT_VERSION)
            .map_err(invalid)?;
        let mut profile = CrossRunProfile::new();
        for record in &replayed.records {
            let (category, stage, cell) = parse_cell(record).map_err(invalid)?;
            profile
                .cells
                .entry((category, stage))
                .or_default()
                .absorb(&cell);
        }
        Ok(profile)
    }

    /// Appends this profile's cells as delta records to the journal at
    /// `path` (created with a header if missing; an existing journal's torn
    /// tail is truncated first). This is how a sweep commits its run: load
    /// the cumulative profile, compute the batch delta with
    /// [`CrossRunProfile::from_batch`], `append_to` the delta, and
    /// [`merge`](CrossRunProfile::merge) it into the in-memory cumulative
    /// view.
    pub fn append_to(&self, path: impl AsRef<Path>, fsync: FsyncPolicy) -> io::Result<()> {
        if self.is_empty() {
            return Ok(());
        }
        let path = path.as_ref();
        let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
        let mut writer = match std::fs::read_to_string(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                JournalWriter::create(path, fsync, emit_profile_header)?
            }
            Err(e) => return Err(e),
            Ok(text) => {
                if !journal::is_journal(&text) {
                    return Err(invalid(format!(
                        "{} exists but is not a cross-run profile journal",
                        path.display()
                    )));
                }
                let replayed = journal::replay(&text).map_err(invalid)?;
                journal::check_header(&replayed, PROFILE_JOURNAL_KIND, PROFILE_FORMAT_VERSION)
                    .map_err(invalid)?;
                if replayed.valid_len == 0 {
                    // Torn at creation: start over.
                    JournalWriter::create(path, fsync, emit_profile_header)?
                } else {
                    JournalWriter::open_append(path, fsync, replayed.valid_len)?
                }
            }
        };
        for ((category, stage), cell) in &self.cells {
            writer.append(|e| emit_cell(e, *category, *stage, cell))?;
        }
        writer.flush()
    }

    /// Compacts the journal at `path` to exactly this profile's accumulated
    /// cells — one record per cell — atomically (temp file + rename, synced
    /// before the rename). `lv-sweep compact` uses this on long-lived
    /// profiles whose per-run deltas have piled up.
    pub fn rewrite(&self, path: impl AsRef<Path>, fsync: FsyncPolicy) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        let mut writer = JournalWriter::create(&tmp, fsync, emit_profile_header)?;
        for ((category, stage), cell) in &self.cells {
            writer.append(|e| emit_cell(e, *category, *stage, cell))?;
        }
        writer.sync()?;
        drop(writer);
        std::fs::rename(&tmp, path)
    }
}

fn emit_profile_header(e: &mut Emitter<&mut Vec<u8>>) -> io::Result<()> {
    e.begin_object()?;
    e.field_str("journal", PROFILE_JOURNAL_KIND)?;
    e.field_int("version", PROFILE_FORMAT_VERSION)?;
    e.end_object()
}

fn emit_cell(
    e: &mut Emitter<&mut Vec<u8>>,
    category: KernelCategory,
    stage: Stage,
    cell: &ProfileCell,
) -> io::Result<()> {
    e.begin_object()?;
    e.field_str("category", category.tag())?;
    e.field_str("stage", stage_tag(stage))?;
    e.field_hex("entered", cell.entered)?;
    e.field_hex("killed", cell.killed)?;
    e.field_hex("wall_us", cell.wall_us)?;
    e.field_hex("conflicts", cell.conflicts)?;
    e.field_hex("cmax_conflicts", cell.conclusive_max_conflicts)?;
    e.field_hex("cmax_clauses", cell.conclusive_max_clauses)?;
    e.field_hex("escalations", cell.escalations)?;
    e.field_hex("vars_eliminated", cell.vars_eliminated)?;
    e.field_hex("clauses_subsumed", cell.clauses_subsumed)?;
    e.field_hex("clauses_strengthened", cell.clauses_strengthened)?;
    e.end_object()
}

fn parse_cell(record: &Value) -> Result<(KernelCategory, Stage, ProfileCell), String> {
    let field = |key: &str| -> Result<&str, String> {
        record
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("profile record is missing `{}`", key))
    };
    let category = KernelCategory::from_tag(field("category")?)?;
    let stage = parse_stage(field("stage")?)?;
    let cell = ProfileCell {
        entered: parse_hex(record.get("entered"), "entered")?,
        killed: parse_hex(record.get("killed"), "killed")?,
        wall_us: parse_hex(record.get("wall_us"), "wall_us")?,
        conflicts: parse_hex(record.get("conflicts"), "conflicts")?,
        conclusive_max_conflicts: parse_hex(record.get("cmax_conflicts"), "cmax_conflicts")?,
        conclusive_max_clauses: parse_hex(record.get("cmax_clauses"), "cmax_clauses")?,
        // Added after format version 1 shipped; journals written before the
        // portfolio existed simply lack the field, and absence means zero.
        escalations: match record.get("escalations") {
            None => 0,
            some => parse_hex(some, "escalations")?,
        },
        // Same absence-means-zero contract for the simplification counters,
        // which postdate the escalation field.
        vars_eliminated: match record.get("vars_eliminated") {
            None => 0,
            some => parse_hex(some, "vars_eliminated")?,
        },
        clauses_subsumed: match record.get("clauses_subsumed") {
            None => 0,
            some => parse_hex(some, "clauses_subsumed")?,
        },
        clauses_strengthened: match record.get("clauses_strengthened") {
            None => 0,
            some => parse_hex(some, "clauses_strengthened")?,
        },
    };
    if cell.killed > cell.entered {
        return Err(format!(
            "profile cell ({}, {}) kills more than entered it ({} > {})",
            category.tag(),
            stage_tag(stage),
            cell.killed,
            cell.entered
        ));
    }
    Ok((category, stage, cell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StageTrace;
    use crate::pipeline::Equivalence;
    use std::path::PathBuf;
    use std::time::Duration;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lv-profile-{}-{}.json", tag, std::process::id()))
    }

    fn report(traces: Vec<StageTrace>) -> JobReport {
        JobReport {
            label: "job".to_string(),
            verdict: Equivalence::Equivalent,
            stage: traces.last().map_or(Stage::Alive2, |t| t.stage),
            detail: String::new(),
            checksum: None,
            traces,
            wall: Duration::ZERO,
            cache_hit: false,
            reuse: Default::default(),
            simplify: Default::default(),
        }
    }

    fn trace(stage: Stage, conclusive: bool, conflicts: u64, wall_us: u64) -> StageTrace {
        StageTrace {
            stage,
            conclusive,
            wall: Duration::from_micros(wall_us),
            conflicts,
            clauses: conflicts * 10,
            name_mismatch: false,
            escalated: false,
        }
    }

    fn sample_profile() -> CrossRunProfile {
        let mut profile = CrossRunProfile::new();
        profile.observe(
            KernelCategory::Reduction,
            &report(vec![
                trace(Stage::Checksum, false, 0, 100),
                trace(Stage::Alive2, false, 5_000, 9_000),
                trace(Stage::CUnroll, true, 400, 2_000),
            ]),
        );
        profile.observe(
            KernelCategory::Reduction,
            &report(vec![
                trace(Stage::Checksum, false, 0, 90),
                trace(Stage::Alive2, false, 5_000, 9_100),
                trace(Stage::CUnroll, true, 900, 2_500),
            ]),
        );
        profile.observe(
            KernelCategory::DependenceFree,
            &report(vec![
                trace(Stage::Checksum, false, 0, 80),
                trace(Stage::Alive2, true, 50, 500),
            ]),
        );
        profile
    }

    #[test]
    fn observations_accumulate_per_category_and_stage() {
        let profile = sample_profile();
        let cunroll = profile
            .cell(KernelCategory::Reduction, Stage::CUnroll)
            .unwrap();
        assert_eq!(cunroll.entered, 2);
        assert_eq!(cunroll.killed, 2);
        assert_eq!(cunroll.wall_us, 4_500);
        assert_eq!(cunroll.conflicts, 1_300);
        assert_eq!(cunroll.conclusive_max_conflicts, 900);
        assert_eq!(cunroll.conclusive_max_clauses, 9_000);
        let alive2 = profile
            .cell(KernelCategory::Reduction, Stage::Alive2)
            .unwrap();
        assert_eq!(alive2.killed, 0, "inconclusive runs kill nothing");
        assert!(profile
            .cell(KernelCategory::Conditional, Stage::Alive2)
            .is_none());
    }

    #[test]
    fn journal_round_trip_accumulates_deltas() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        assert!(CrossRunProfile::load(&path).unwrap().is_empty());

        let delta = sample_profile();
        delta.append_to(&path, FsyncPolicy::OnCompact).unwrap();
        let loaded = CrossRunProfile::load(&path).unwrap();
        assert_eq!(loaded, delta, "one append replays to itself");

        // A second run's delta sums counts and maxes highwater marks.
        delta.append_to(&path, FsyncPolicy::OnCompact).unwrap();
        let doubled = CrossRunProfile::load(&path).unwrap();
        let cell = doubled
            .cell(KernelCategory::Reduction, Stage::CUnroll)
            .unwrap();
        assert_eq!(cell.entered, 4);
        assert_eq!(cell.wall_us, 9_000);
        assert_eq!(cell.conclusive_max_conflicts, 900, "max, not sum");

        // Compaction rewrites to one record per cell and replays identically.
        doubled.rewrite(&path, FsyncPolicy::OnCompact).unwrap();
        assert_eq!(CrossRunProfile::load(&path).unwrap(), doubled);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().count(),
            1 + doubled.len(),
            "header + one record per cell"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_interior_corruption_rejected() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        sample_profile()
            .append_to(&path, FsyncPolicy::OnCompact)
            .unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        let cells = sample_profile().len();

        // Tear the final record: one cell is lost, nothing mis-parses.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let torn = CrossRunProfile::load(&path).unwrap();
        assert_eq!(torn.len(), cells - 1);

        // Corrupt an interior record: hard error.
        let target = full.find("\"category\":\"reduction\"").unwrap();
        let mut bytes = full.clone().into_bytes();
        bytes[target + 13] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = CrossRunProfile::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_profile_files_are_rejected() {
        let path = temp_path("reject");
        std::fs::write(&path, "{\"version\":1,\"entries\":[]}\n").unwrap();
        assert!(CrossRunProfile::load(&path).is_err());
        assert!(sample_profile()
            .append_to(&path, FsyncPolicy::OnCompact)
            .is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_matches_journal_accumulation() {
        let mut merged = sample_profile();
        merged.merge(&sample_profile());
        let cell = merged
            .cell(KernelCategory::Reduction, Stage::Checksum)
            .unwrap();
        assert_eq!(cell.entered, 4);
        assert_eq!(cell.wall_us, 380);
    }

    #[test]
    fn from_batch_categorizes_by_scalar() {
        use lv_cir::parse_function;
        let scalar = parse_function(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        )
        .unwrap();
        let jobs = vec![Job::new("s000", scalar.clone(), scalar)];
        let reports = vec![report(vec![trace(Stage::Checksum, true, 0, 10)])];
        let delta = CrossRunProfile::from_batch(&jobs, &reports);
        assert!(delta
            .cell(KernelCategory::DependenceFree, Stage::Checksum)
            .is_some());

        // Cache hits (no traces) contribute nothing.
        let cached = JobReport {
            traces: Vec::new(),
            cache_hit: true,
            ..reports[0].clone()
        };
        let empty = CrossRunProfile::from_batch(&jobs, &[cached]);
        assert!(empty.is_empty());
    }
}
