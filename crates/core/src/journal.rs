//! Framed append-only journals: O(records) flush I/O for the persistence
//! surfaces that used to rewrite their whole file after every update.
//!
//! The verdict cache ([`crate::cache`]) and the shard report
//! ([`crate::shard::exchange`]) both follow a write-heavy pattern: one new
//! record per finished verification job, flushed immediately so a killed
//! process loses at most one job. Whole-file atomic rewrite makes that flush
//! cost O(file) — quadratic total I/O over a shard's lifetime. A journal
//! makes it O(record): the file is a sequence of self-delimiting records,
//! each appended through one buffered writer that stays open for the
//! journal's lifetime (no reopen-per-record), and a crash can only tear the
//! final record, which loading detects and truncates.
//!
//! # Record framing
//!
//! One record per line:
//!
//! ```text
//! <payload JSON> <crc32:8 lower-case hex>\n
//! ```
//!
//! * The payload is a single-line JSON object streamed through the `serde`
//!   shim's [`Emitter`] (strings escape `\n`, so the only newline in a
//!   record is its terminator — a truncated record can never contain one).
//! * The trailing CRC-32 (IEEE, over the payload bytes) makes a torn tail
//!   *detected*, never mis-parsed: a record is valid only if it is
//!   newline-terminated, its checksum matches, and its payload parses.
//!   Putting the checksum after the payload is what lets a record stream
//!   straight from the emitter without being buffered for a length prefix.
//! * Record 0 is the **header**: a payload whose first field is
//!   `"journal": "<kind>"` plus a format `"version"` (each journal kind
//!   reuses its snapshot format's version constant, so bumping the snapshot
//!   format invalidates the journal too) and any kind-specific metadata.
//!   [`is_journal`] sniffs that marker, which is how readers accept journal
//!   and snapshot files interchangeably.
//!
//! # Torn-tail semantics
//!
//! Truncation can only shorten the file, so the damage is always a suffix:
//! [`replay`] accepts every valid record up to the first invalid *final*
//! line and reports the clean byte length ([`Replay::valid_len`]). An
//! invalid line that is **not** the final one is real corruption and a hard
//! error — a torn tail never looks like that, so nothing is silently
//! dropped. Re-opening a journal for append truncates the file to the clean
//! prefix first.
//!
//! # Durability
//!
//! Every append flushes the buffered writer (one small `write` syscall), so
//! the loss window after a crash is at most one record — same contract the
//! whole-file rewrite gave, at O(record) cost. [`FsyncPolicy`] controls
//! `fsync`: [`FsyncPolicy::EveryRecord`] syncs after each append (power-loss
//! durability, slower), [`FsyncPolicy::OnCompact`] (the default) syncs only
//! when a journal is compacted into its snapshot form — crash-consistent
//! against process death, which is the failure mode sharded sweeps recover
//! from.

use serde::json::{self, Emitter, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The byte sequence every journal file starts with (the header record's
/// first field). Snapshot documents start with `{"version":` — sniffing this
/// marker is how dual-format readers pick a parser.
pub const JOURNAL_MARKER: &str = "{\"journal\":";

/// Bytes of framing appended after each payload: `" "` + 8 hex digits + `\n`.
const FRAME_BYTES: u64 = 10;

/// When journal appends reach the disk platter, not just the kernel.
///
/// Appends always *flush* (buffered bytes reach the kernel, surviving
/// process death); the policy decides when they are *synced* (surviving
/// power loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record. Maximum durability; one disk
    /// sync per finished job.
    EveryRecord,
    /// `fsync` only when the journal is compacted into its snapshot form
    /// (and on explicit [`JournalWriter::sync`]). The default: process-crash
    /// consistency without per-record sync stalls.
    #[default]
    OnCompact,
}

impl FsyncPolicy {
    /// Stable CLI tag (`record` / `compact`).
    pub fn tag(&self) -> &'static str {
        match self {
            FsyncPolicy::EveryRecord => "record",
            FsyncPolicy::OnCompact => "compact",
        }
    }

    /// Parses [`FsyncPolicy::tag`] output.
    pub fn from_tag(tag: &str) -> Result<FsyncPolicy, String> {
        match tag {
            "record" | "every-record" => Ok(FsyncPolicy::EveryRecord),
            "compact" | "on-compact" => Ok(FsyncPolicy::OnCompact),
            other => Err(format!("unknown fsync policy `{}`", other)),
        }
    }
}

/// CRC-32 (IEEE 802.3, the `cksum`/zlib polynomial), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE polynomial, standard init/final xor).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// An open journal: one buffered file handle held for the journal's
/// lifetime, appending framed records.
///
/// Records are emitted into a reusable scratch buffer (so the checksum can
/// be computed before the frame is written, and so steady-state appends
/// allocate nothing — the buffer's capacity is retained across records),
/// then written and flushed as one frame. See the [module docs](self) for
/// the format.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    scratch: Vec<u8>,
    fsync: FsyncPolicy,
    bytes: u64,
    poisoned: bool,
    /// Appends buffered per syscall flush (see [`JournalWriter::set_flush_every`]).
    flush_every: usize,
    /// Appends accumulated since the last flush.
    pending: usize,
}

impl JournalWriter {
    /// Creates a new journal at `path` (truncating any existing file) and
    /// writes its header record with `emit_header`.
    pub fn create<F>(path: &Path, fsync: FsyncPolicy, emit_header: F) -> io::Result<JournalWriter>
    where
        F: FnOnce(&mut Emitter<&mut Vec<u8>>) -> io::Result<()>,
    {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = File::create(path)?;
        let mut writer = JournalWriter {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            scratch: Vec::with_capacity(256),
            fsync,
            bytes: 0,
            poisoned: false,
            flush_every: 1,
            pending: 0,
        };
        writer.append(emit_header)?;
        Ok(writer)
    }

    /// Re-opens an existing journal for append after a [`replay`]: the file
    /// is truncated to `valid_len` (discarding a torn final record) and the
    /// write cursor continues from there.
    pub fn open_append(
        path: &Path,
        fsync: FsyncPolicy,
        valid_len: u64,
    ) -> io::Result<JournalWriter> {
        use std::io::Seek;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(io::SeekFrom::Start(valid_len))?;
        Ok(JournalWriter {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            scratch: Vec::with_capacity(256),
            fsync,
            bytes: valid_len,
            poisoned: false,
            flush_every: 1,
            pending: 0,
        })
    }

    /// Sets flush batching: every `n`-th append flushes the buffered writer
    /// (and, under [`FsyncPolicy::EveryRecord`], syncs); the appends in
    /// between only reach the in-process buffer. `n = 1` (the default) is
    /// the original flush-per-record contract. Trade-off: a crash loses up
    /// to `n - 1` buffered tail records (plus at most one torn record when
    /// the kill lands mid-write) instead of at most one — replay still
    /// truncates cleanly, because everything unflushed is a missing or torn
    /// *suffix*. `n = 0` is clamped to 1.
    pub fn set_flush_every(&mut self, n: usize) {
        self.flush_every = n.max(1);
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes of journal (header + records + framing) written through
    /// this writer, including any pre-existing valid prefix it appended
    /// after — i.e. the current file length.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Whether an earlier append failed mid-frame, permanently closing this
    /// writer to further appends (see [`JournalWriter::append`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one record: `emit` streams the payload (one JSON object, no
    /// raw newlines — the emitter's string escaping guarantees that), then
    /// the checksum frame is written and the writer flushed. With
    /// [`FsyncPolicy::EveryRecord`] the file is also synced.
    ///
    /// An `emit` error aborts cleanly before anything reaches the file. A
    /// *file* error, however, may have left a partial frame behind — on
    /// disk that is an ordinary torn tail, but only as long as nothing is
    /// ever appended after it (a record *behind* a partial frame is
    /// interior corruption, which replay rejects wholesale). So a failed
    /// file write **poisons** the writer: every later append fails fast,
    /// the valid prefix stays loadable, and the loss window stays bounded
    /// at the failed record and its successors rather than the whole
    /// journal.
    pub fn append<F>(&mut self, emit: F) -> io::Result<()>
    where
        F: FnOnce(&mut Emitter<&mut Vec<u8>>) -> io::Result<()>,
    {
        if self.poisoned {
            return Err(io::Error::other(
                "journal writer is poisoned: an earlier append failed mid-frame, and \
                 appending past a partial frame would corrupt the journal's interior",
            ));
        }
        self.scratch.clear();
        let mut emitter = Emitter::new(&mut self.scratch);
        // Scratch-only failure: nothing reached the file, no poison needed.
        emit(&mut emitter)?;
        let crc = crc32(&self.scratch);
        match self.write_frame(crc) {
            Ok(()) => {
                self.bytes += self.scratch.len() as u64 + FRAME_BYTES;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The file half of an append; any failure here may leave a partial
    /// frame behind (the caller poisons the writer).
    fn write_frame(&mut self, crc: u32) -> io::Result<()> {
        self.file.write_all(&self.scratch)?;
        write!(self.file, " {:08x}", crc)?;
        self.file.write_all(b"\n")?;
        // Flush every `flush_every`-th record (default: every record, so the
        // crash loss window stays one record); the whole point over
        // rewrite-per-record is that this flush is O(record), not O(file).
        self.pending += 1;
        if self.pending >= self.flush_every {
            self.pending = 0;
            self.file.flush()?;
            if self.fsync == FsyncPolicy::EveryRecord {
                self.file.get_ref().sync_all()?;
            }
        }
        Ok(())
    }

    /// Flushes buffered bytes to the kernel (appends already do, unless
    /// batched by [`JournalWriter::set_flush_every`]; this is the batched
    /// mode's commit point and a belt-and-braces final flush otherwise).
    pub fn flush(&mut self) -> io::Result<()> {
        self.pending = 0;
        self.file.flush()
    }

    /// Forces the journal to disk (`fsync`), regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.pending = 0;
        self.file.flush()?;
        self.file.get_ref().sync_all()
    }
}

/// The result of [`replay`]: the parsed header and records of the journal's
/// valid prefix, plus where (and whether) a torn tail was cut.
#[derive(Debug)]
pub struct Replay {
    /// The header record's payload (`Value::Null` for a journal whose
    /// header itself was torn — a crash at creation; zero records).
    pub header: Value,
    /// Every complete record after the header, in append order.
    pub records: Vec<Value>,
    /// Byte length of the valid prefix; bytes past this are the torn tail.
    pub valid_len: u64,
    /// Whether a torn final record was discarded.
    pub torn: bool,
}

/// Does `text` look like a journal (vs a whole-file snapshot document)?
///
/// True for any file starting with [`JOURNAL_MARKER`] — including a
/// non-empty *prefix* of the marker, which is what a crash during header
/// creation leaves behind (replaying such a file yields zero records).
pub fn is_journal(text: &str) -> bool {
    text.starts_with(JOURNAL_MARKER) || (!text.is_empty() && JOURNAL_MARKER.starts_with(text))
}

/// Replays a journal: validates framing line by line, tolerating (and
/// reporting) a torn **final** record. An invalid line anywhere else is
/// corruption and a hard error — see the [module docs](self).
pub fn replay(text: &str) -> Result<Replay, String> {
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut torn = false;
    let bytes = text.as_bytes();
    let mut start = 0usize;
    while start < bytes.len() {
        let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') else {
            // Unterminated final line: the torn tail of an interrupted
            // append. Everything before `start` already validated.
            torn = true;
            break;
        };
        let line = &text[start..start + nl];
        let line_end = start + nl + 1;
        let is_last = line_end == bytes.len();
        match validate_line(line) {
            Ok(payload) => records.push(payload),
            Err(reason) if is_last => {
                // A newline-terminated final line that fails validation can
                // happen when the tail of a partial block write survived
                // with garbage; with nothing after it, it is a torn tail.
                let _ = reason;
                torn = true;
                break;
            }
            Err(reason) => {
                return Err(format!(
                    "journal record at byte {} is corrupt (not a torn tail — \
                     {} bytes follow it): {}",
                    start,
                    bytes.len() - line_end,
                    reason
                ));
            }
        }
        valid_len = line_end as u64;
        start = line_end;
    }
    let mut records = records.into_iter();
    let header = match records.next() {
        Some(header) => header,
        None => {
            // Torn (or empty) header: a crash at creation. Zero records.
            return Ok(Replay {
                header: Value::Null,
                records: Vec::new(),
                valid_len: 0,
                torn: true,
            });
        }
    };
    Ok(Replay {
        header,
        records: records.collect(),
        valid_len,
        torn,
    })
}

/// Validates one journal line (sans newline): checksum then payload parse.
fn validate_line(line: &str) -> Result<Value, String> {
    let (payload, crc_hex) = line
        .rsplit_once(' ')
        .ok_or_else(|| "record has no checksum frame".to_string())?;
    let recorded = u32::from_str_radix(crc_hex, 16)
        .map_err(|_| format!("record checksum `{}` is not hex", crc_hex))?;
    if crc_hex.len() != 8 {
        return Err(format!("record checksum `{}` is not 8 hex digits", crc_hex));
    }
    let computed = crc32(payload.as_bytes());
    if recorded != computed {
        return Err(format!(
            "record checksum mismatch: recorded {:08x}, computed {:08x}",
            recorded, computed
        ));
    }
    json::parse(payload).map_err(|e| format!("record payload is not valid JSON: {}", e))
}

/// Validates a replayed header against the expected `kind` and `version`.
/// A [`Value::Null`] header (torn at creation) passes with zero records.
pub fn check_header(replay: &Replay, kind: &str, version: i64) -> Result<(), String> {
    if replay.header == Value::Null && replay.records.is_empty() {
        return Ok(());
    }
    match replay.header.get("journal").and_then(Value::as_str) {
        Some(found) if found == kind => {}
        Some(found) => {
            return Err(format!(
                "journal is of kind `{}`, expected `{}`",
                found, kind
            ))
        }
        None => return Err("journal header has no `journal` kind field".to_string()),
    }
    match replay.header.get("version").and_then(Value::as_int) {
        Some(found) if found == version => Ok(()),
        Some(found) => Err(format!(
            "journal has format version {}, this build reads version {}",
            found, version
        )),
        None => Err("journal header has no `version` field".to_string()),
    }
}

/// The magic the binary journal format starts with (see
/// [`BinaryJournalWriter`]). Distinct from both the text [`JOURNAL_MARKER`]
/// and the binary snapshot magic, so dual-format readers can sniff all four
/// persisted forms from the first bytes.
pub const BINARY_JOURNAL_MAGIC: [u8; 4] = *b"LVBJ";

/// Bytes of framing around each binary payload: a `u32` length prefix and a
/// `u32` CRC-32 suffix, both little-endian.
const BINARY_FRAME_BYTES: u64 = 8;

/// Does `bytes` look like a binary journal? True for any non-empty prefix of
/// [`BINARY_JOURNAL_MAGIC`] too — that is what a crash during creation
/// leaves behind (replaying such a file yields zero records).
pub fn is_binary_journal(bytes: &[u8]) -> bool {
    bytes.starts_with(&BINARY_JOURNAL_MAGIC)
        || (!bytes.is_empty() && BINARY_JOURNAL_MAGIC.starts_with(bytes))
}

/// `fsync` on a *directory*: makes a rename or file creation inside `dir`
/// itself durable. An atomic-replace protocol that syncs only the file
/// contents can still lose the rename on power loss — the directory entry
/// lives in the directory's own metadata, which has its own sync point.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// The binary counterpart of [`JournalWriter`]: an append-only journal of
/// raw byte payloads instead of JSON lines.
///
/// # Format
///
/// ```text
/// "LVBJ"                                    -- 4-byte magic
/// [u32 len LE][payload bytes][u32 crc32 LE] -- frame 0: the header payload
/// [u32 len LE][payload bytes][u32 crc32 LE] -- one frame per record
/// …
/// ```
///
/// The CRC-32 (same [`crc32`] as the text framing) covers the payload
/// bytes. Frames are self-delimiting via the length prefix, so payloads can
/// contain any bytes — no escaping, no terminator.
///
/// # Torn-tail semantics
///
/// [`replay_binary`] mirrors [`replay`]: a final frame that does not fit in
/// the remaining bytes (a mid-append kill truncated it — including its
/// length prefix claiming more bytes than exist) or whose checksum fails *at
/// end of file* is a torn tail, reported and cut at
/// [`BinaryReplay::valid_len`]; a checksum failure with bytes following it
/// is interior corruption and a hard error. The poisoning, flush-batching,
/// and durability contracts are identical to [`JournalWriter`]'s.
#[derive(Debug)]
pub struct BinaryJournalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    scratch: Vec<u8>,
    fsync: FsyncPolicy,
    bytes: u64,
    poisoned: bool,
    flush_every: usize,
    pending: usize,
}

impl BinaryJournalWriter {
    /// Creates a new binary journal at `path` (truncating any existing
    /// file): writes the magic, then a header frame filled by `emit_header`.
    pub fn create<F>(
        path: &Path,
        fsync: FsyncPolicy,
        emit_header: F,
    ) -> io::Result<BinaryJournalWriter>
    where
        F: FnOnce(&mut Vec<u8>),
    {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&BINARY_JOURNAL_MAGIC)?;
        let mut writer = BinaryJournalWriter {
            file,
            path: path.to_path_buf(),
            scratch: Vec::with_capacity(256),
            fsync,
            bytes: BINARY_JOURNAL_MAGIC.len() as u64,
            poisoned: false,
            flush_every: 1,
            pending: 0,
        };
        writer.append(emit_header)?;
        Ok(writer)
    }

    /// Re-opens an existing binary journal for append after a
    /// [`replay_binary`]: truncates to `valid_len` (discarding a torn final
    /// frame) and continues from there.
    pub fn open_append(
        path: &Path,
        fsync: FsyncPolicy,
        valid_len: u64,
    ) -> io::Result<BinaryJournalWriter> {
        use std::io::Seek;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(io::SeekFrom::Start(valid_len))?;
        Ok(BinaryJournalWriter {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            scratch: Vec::with_capacity(256),
            fsync,
            bytes: valid_len,
            poisoned: false,
            flush_every: 1,
            pending: 0,
        })
    }

    /// Flush batching; same contract as [`JournalWriter::set_flush_every`].
    pub fn set_flush_every(&mut self, n: usize) {
        self.flush_every = n.max(1);
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current file length written through this writer (magic + frames,
    /// including any pre-existing valid prefix appended after).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Whether an earlier append failed mid-frame, permanently closing this
    /// writer to further appends (same contract as
    /// [`JournalWriter::is_poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one record: `fill` writes the payload bytes into a reusable
    /// scratch buffer (infallible — binary encoding into a `Vec` cannot
    /// fail), then the length/CRC frame is written and flushed per the
    /// batching policy. A file error poisons the writer, exactly like
    /// [`JournalWriter::append`].
    pub fn append<F>(&mut self, fill: F) -> io::Result<()>
    where
        F: FnOnce(&mut Vec<u8>),
    {
        if self.poisoned {
            return Err(io::Error::other(
                "binary journal writer is poisoned: an earlier append failed mid-frame, and \
                 appending past a partial frame would corrupt the journal's interior",
            ));
        }
        self.scratch.clear();
        fill(&mut self.scratch);
        let crc = crc32(&self.scratch);
        match self.write_frame(crc) {
            Ok(()) => {
                self.bytes += self.scratch.len() as u64 + BINARY_FRAME_BYTES;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn write_frame(&mut self, crc: u32) -> io::Result<()> {
        self.file
            .write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.file.write_all(&self.scratch)?;
        self.file.write_all(&crc.to_le_bytes())?;
        self.pending += 1;
        if self.pending >= self.flush_every {
            self.pending = 0;
            self.file.flush()?;
            if self.fsync == FsyncPolicy::EveryRecord {
                self.file.get_ref().sync_all()?;
            }
        }
        Ok(())
    }

    /// Flushes buffered bytes to the kernel (the batched mode's commit
    /// point).
    pub fn flush(&mut self) -> io::Result<()> {
        self.pending = 0;
        self.file.flush()
    }

    /// Forces the journal to disk (`fsync`), regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.pending = 0;
        self.file.flush()?;
        self.file.get_ref().sync_all()
    }
}

/// The result of [`replay_binary`]: borrowed payload slices of the valid
/// prefix, plus where (and whether) a torn tail was cut.
#[derive(Debug)]
pub struct BinaryReplay<'a> {
    /// The header frame's payload (`None` for a journal whose header itself
    /// was torn — a crash at creation; zero records).
    pub header: Option<&'a [u8]>,
    /// Every complete record payload after the header, in append order.
    pub records: Vec<&'a [u8]>,
    /// Byte length of the valid prefix; bytes past this are the torn tail.
    pub valid_len: u64,
    /// Whether a torn final frame was discarded.
    pub torn: bool,
}

/// Replays a binary journal: validates frames in order, tolerating (and
/// reporting) a torn **final** frame. A checksum failure that is not at end
/// of file is corruption and a hard error — see [`BinaryJournalWriter`].
pub fn replay_binary(bytes: &[u8]) -> Result<BinaryReplay<'_>, String> {
    if !is_binary_journal(bytes) {
        return Err("file does not start with the binary journal magic".to_string());
    }
    let mut frames: Vec<&[u8]> = Vec::new();
    let mut valid_len = 0u64;
    let mut torn = bytes.len() < BINARY_JOURNAL_MAGIC.len();
    let mut pos = BINARY_JOURNAL_MAGIC.len().min(bytes.len());
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        // A frame that does not fit in the remaining bytes is a torn tail:
        // a mid-append kill can truncate the length prefix, the payload, or
        // the trailing CRC, and all three look exactly like this.
        if remaining < 4 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let Some(frame_end) = len.checked_add(8).and_then(|n| pos.checked_add(n)) else {
            torn = true;
            break;
        };
        if frame_end > bytes.len() {
            torn = true;
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let recorded = u32::from_le_bytes(bytes[frame_end - 4..frame_end].try_into().unwrap());
        let computed = crc32(payload);
        if recorded != computed {
            if frame_end == bytes.len() {
                // Garbage tail of a partial block write: torn, not corrupt.
                torn = true;
                break;
            }
            return Err(format!(
                "binary journal frame at byte {} is corrupt (not a torn tail — {} bytes \
                 follow it): checksum mismatch, recorded {:08x}, computed {:08x}",
                pos,
                bytes.len() - frame_end,
                recorded,
                computed
            ));
        }
        frames.push(payload);
        valid_len = frame_end as u64;
        pos = frame_end;
    }
    let mut frames = frames.into_iter();
    let header = frames.next();
    if header.is_none() {
        // Torn (or empty) header: a crash at creation. Zero records; the
        // caller recreates the journal from scratch.
        return Ok(BinaryReplay {
            header: None,
            records: Vec::new(),
            valid_len: 0,
            torn: true,
        });
    }
    Ok(BinaryReplay {
        header,
        records: frames.collect(),
        valid_len,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lv-journal-{}-{}", tag, std::process::id()))
    }

    fn write_sample(path: &Path, records: usize) -> JournalWriter {
        let mut journal = JournalWriter::create(path, FsyncPolicy::OnCompact, |e| {
            e.begin_object()?;
            e.field_str("journal", "test")?;
            e.field_int("version", 1)?;
            e.end_object()
        })
        .unwrap();
        for i in 0..records {
            journal
                .append(|e| {
                    e.begin_object()?;
                    e.field_int("i", i as i64)?;
                    e.field_str("s", "line\nbreak \"quoted\"")?;
                    e.end_object()
                })
                .unwrap();
        }
        journal
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_round_trips_and_reports_sizes() {
        let path = temp_path("roundtrip");
        let journal = write_sample(&path, 3);
        let written = journal.bytes_written();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.len() as u64, written);
        assert!(is_journal(&text));
        let replayed = replay(&text).unwrap();
        check_header(&replayed, "test", 1).unwrap();
        assert!(!replayed.torn);
        assert_eq!(replayed.valid_len, written);
        assert_eq!(replayed.records.len(), 3);
        for (i, record) in replayed.records.iter().enumerate() {
            assert_eq!(record.get("i").and_then(Value::as_int), Some(i as i64));
            assert_eq!(
                record.get("s").and_then(Value::as_str),
                Some("line\nbreak \"quoted\"")
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_are_truncated_never_misparsed() {
        let path = temp_path("torn");
        drop(write_sample(&path, 2));
        let full = std::fs::read_to_string(&path).unwrap();
        let intact = replay(&full).unwrap();
        assert_eq!(intact.records.len(), 2);
        // Truncating anywhere inside the final record must yield exactly the
        // first record; truncating inside earlier records yields fewer.
        let second_record_start = intact.valid_len as usize
            - full[..intact.valid_len as usize]
                .trim_end_matches('\n')
                .rsplit('\n')
                .next()
                .unwrap()
                .len()
            - 1;
        for cut in second_record_start + 1..full.len() {
            let truncated = &full[..cut];
            let replayed = replay(truncated)
                .unwrap_or_else(|e| panic!("cut at {} must be a torn tail, got: {}", cut, e));
            assert!(replayed.torn, "cut at {} must report a torn tail", cut);
            assert_eq!(
                replayed.records.len(),
                1,
                "cut at {} must keep exactly the first record",
                cut
            );
            assert_eq!(replayed.valid_len as usize, second_record_start);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = temp_path("corrupt");
        drop(write_sample(&path, 2));
        let full = std::fs::read_to_string(&path).unwrap();
        // Flip a payload byte in the *first* data record (not the last
        // line): the checksum catches it and it is not a torn tail.
        let target = full.find("\"i\":0").unwrap();
        let mut bytes = full.clone().into_bytes();
        bytes[target + 4] = b'7';
        let corrupted = String::from_utf8(bytes).unwrap();
        let err = replay(&corrupted).expect_err("interior corruption must error");
        assert!(err.contains("checksum mismatch"), "{}", err);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_reads_as_empty_journal() {
        for cut in 1..JOURNAL_MARKER.len() {
            let text = &JOURNAL_MARKER[..cut];
            assert!(is_journal(text), "prefix `{}` must sniff as journal", text);
            let replayed = replay(text).unwrap();
            assert!(replayed.torn);
            assert_eq!(replayed.records.len(), 0);
            assert_eq!(replayed.valid_len, 0);
            check_header(&replayed, "anything", 1).unwrap();
        }
        assert!(!is_journal("{\"version\":1}"));
        assert!(!is_journal(""));
    }

    #[test]
    fn emit_errors_abort_cleanly_without_poisoning() {
        let path = temp_path("emit-abort");
        let mut journal = write_sample(&path, 1);
        let bytes_before = journal.bytes_written();
        let err = journal
            .append(|e| {
                e.begin_object()?;
                e.field_int("half", 1)?;
                Err(io::Error::other("emitter bailed"))
            })
            .expect_err("emit error must surface");
        assert_eq!(err.to_string(), "emitter bailed");
        // Nothing reached the file, so the writer is still usable …
        assert!(!journal.is_poisoned());
        assert_eq!(journal.bytes_written(), bytes_before);
        journal
            .append(|e| {
                e.begin_object()?;
                e.field_int("i", 99)?;
                e.end_object()
            })
            .expect("writer survives an emit abort");
        drop(journal);
        // … and the journal on disk holds only whole records.
        let replayed = replay(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!replayed.torn);
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(
            replayed.records[1].get("i").and_then(Value::as_int),
            Some(99)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_batching_buffers_n_appends_per_flush() {
        let path = temp_path("flush-every");
        let mut journal = write_sample(&path, 0);
        journal.set_flush_every(3);
        let record = |i: i64| {
            move |e: &mut Emitter<&mut Vec<u8>>| {
                e.begin_object()?;
                e.field_int("i", i)?;
                e.end_object()
            }
        };
        journal.append(record(0)).unwrap();
        journal.append(record(1)).unwrap();
        // Two appends buffered, none flushed: on disk only the header.
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            replay(&on_disk).unwrap().records.len(),
            0,
            "buffered records must not have reached the file yet"
        );
        // The third append completes the batch and flushes all three.
        journal.append(record(2)).unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(replay(&on_disk).unwrap().records.len(), 3);
        // A manual flush commits a partial batch.
        journal.append(record(3)).unwrap();
        journal.flush().unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(replay(&on_disk).unwrap().records.len(), 4);
        drop(journal);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_for_append_truncates_the_torn_tail() {
        let path = temp_path("reopen");
        drop(write_sample(&path, 2));
        let full = std::fs::read_to_string(&path).unwrap();
        // Tear the final record on disk.
        let valid = replay(&full[..full.len() - 3]).unwrap();
        assert!(valid.torn);
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let mut journal =
            JournalWriter::open_append(&path, FsyncPolicy::OnCompact, valid.valid_len).unwrap();
        journal
            .append(|e| {
                e.begin_object()?;
                e.field_int("i", 9)?;
                e.end_object()
            })
            .unwrap();
        drop(journal);
        let replayed = replay(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!replayed.torn);
        assert_eq!(replayed.records.len(), 2, "torn record replaced by new one");
        assert_eq!(
            replayed.records[1].get("i").and_then(Value::as_int),
            Some(9)
        );
        let _ = std::fs::remove_file(&path);
    }

    fn write_binary_sample(path: &Path, records: usize) -> BinaryJournalWriter {
        let mut journal = BinaryJournalWriter::create(path, FsyncPolicy::OnCompact, |buf| {
            buf.extend_from_slice(b"test-header-v1");
        })
        .unwrap();
        for i in 0..records {
            journal
                .append(|buf| {
                    buf.push(i as u8);
                    buf.extend_from_slice(b"payload with \x00 and \n raw bytes");
                })
                .unwrap();
        }
        journal
    }

    #[test]
    fn binary_journal_round_trips() {
        let path = temp_path("bin-roundtrip");
        let journal = write_binary_sample(&path, 3);
        let written = journal.bytes_written();
        drop(journal);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, written);
        assert!(is_binary_journal(&bytes));
        assert!(!is_journal(std::str::from_utf8(&bytes[..4]).unwrap()));
        let replayed = replay_binary(&bytes).unwrap();
        assert!(!replayed.torn);
        assert_eq!(replayed.header, Some(&b"test-header-v1"[..]));
        assert_eq!(replayed.valid_len, written);
        assert_eq!(replayed.records.len(), 3);
        for (i, record) in replayed.records.iter().enumerate() {
            assert_eq!(record[0], i as u8);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_torn_tails_are_truncated_at_every_offset() {
        let path = temp_path("bin-torn");
        drop(write_binary_sample(&path, 2));
        let full = std::fs::read(&path).unwrap();
        let intact = replay_binary(&full).unwrap();
        assert_eq!(intact.records.len(), 2);
        // The second record's frame start: walk magic + header + record 0.
        let frame_len = |pos: usize| {
            4 + 8 + u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize
        };
        let mut second_start = 4;
        second_start += frame_len(second_start); // header
        second_start += frame_len(second_start); // record 0
        for cut in second_start + 1..full.len() {
            let replayed = replay_binary(&full[..cut])
                .unwrap_or_else(|e| panic!("cut at {} must be a torn tail, got: {}", cut, e));
            assert!(replayed.torn, "cut at {} must report a torn tail", cut);
            assert_eq!(
                replayed.records.len(),
                1,
                "cut at {} must keep exactly the first record",
                cut
            );
            assert_eq!(replayed.valid_len as usize, second_start);
        }
        // Cuts inside the magic itself read as an empty torn journal.
        for cut in 1..4 {
            let replayed = replay_binary(&full[..cut]).unwrap();
            assert!(replayed.torn);
            assert_eq!(replayed.valid_len, 0);
            assert!(replayed.header.is_none());
        }
        assert!(replay_binary(b"not a journal").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_interior_corruption_is_a_hard_error() {
        let path = temp_path("bin-corrupt");
        drop(write_binary_sample(&path, 2));
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the *header* frame (not the final one).
        bytes[9] ^= 0xff;
        let err = replay_binary(&bytes).expect_err("interior corruption must error");
        assert!(err.contains("checksum mismatch"), "{}", err);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_reopen_for_append_truncates_the_torn_tail() {
        let path = temp_path("bin-reopen");
        drop(write_binary_sample(&path, 2));
        let full = std::fs::read(&path).unwrap();
        let valid = replay_binary(&full[..full.len() - 3]).unwrap();
        assert!(valid.torn);
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let mut journal =
            BinaryJournalWriter::open_append(&path, FsyncPolicy::OnCompact, valid.valid_len)
                .unwrap();
        journal.append(|buf| buf.push(9)).unwrap();
        drop(journal);
        let on_disk = std::fs::read(&path).unwrap();
        let replayed = replay_binary(&on_disk).unwrap();
        assert!(!replayed.torn);
        assert_eq!(replayed.records.len(), 2, "torn record replaced by new one");
        assert_eq!(replayed.records[1], &[9]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_flush_batching_buffers_appends() {
        let path = temp_path("bin-flush-every");
        let mut journal = write_binary_sample(&path, 0);
        journal.set_flush_every(3);
        journal.append(|buf| buf.push(0)).unwrap();
        journal.append(|buf| buf.push(1)).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(
            replay_binary(&on_disk).unwrap().records.len(),
            0,
            "buffered records must not have reached the file yet"
        );
        journal.append(|buf| buf.push(2)).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(replay_binary(&on_disk).unwrap().records.len(), 3);
        journal.append(|buf| buf.push(3)).unwrap();
        journal.flush().unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(replay_binary(&on_disk).unwrap().records.len(), 4);
        drop(journal);
        let _ = std::fs::remove_file(&path);
    }
}
