//! The multi-agent finite-state machine (Section 2.2 / Figure 3).
//!
//! Three agents cooperate: a *user proxy* that kicks off the conversation
//! with the scalar kernel and the Clang-style dependence remarks, a
//! *vectorizer assistant* that consults the (synthetic) LLM, and a
//! *compiler tester* that compiles and checksum-tests each candidate and
//! feeds failures back. The FSM bounds the loop at a configurable number of
//! attempts (ten in the paper) and terminates early on the first plausible
//! candidate.

use crate::llm::{LlmConfig, SyntheticLlm, VectorizePrompt};
use lv_analysis::{analyze_function, remarks_text};
use lv_cir::ast::Function;
use lv_interp::{checksum_test, ChecksumConfig, ChecksumOutcome};
use serde::{Deserialize, Serialize};

/// The agents participating in the conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentRole {
    /// Initiates the dialogue and supplies the kernel plus dependence info.
    UserProxy,
    /// Wraps the LLM and produces candidates.
    VectorizerAssistant,
    /// Compiles, runs checksum tests, and produces feedback.
    CompilerTester,
}

/// The FSM states, mirroring Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsmState {
    /// Gathering the dependence analysis.
    AnalyzeDependence,
    /// Asking the LLM for a candidate.
    Vectorize,
    /// Type checking ("compiling") the candidate.
    Compile,
    /// Checksum testing the candidate.
    Test,
    /// A plausible candidate was found.
    Done,
    /// The attempt budget was exhausted.
    Failed,
}

/// One message in the multi-agent conversation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sending agent.
    pub from: AgentRole,
    /// Receiving agent.
    pub to: AgentRole,
    /// Message text (prompt, candidate code, or feedback).
    pub content: String,
}

/// Configuration of the FSM run.
#[derive(Debug, Clone)]
pub struct FsmConfig {
    /// Maximum number of LLM invocations (the paper allows ten).
    pub max_attempts: u32,
    /// Checksum testing configuration.
    pub checksum: ChecksumConfig,
    /// Synthetic LLM configuration.
    pub llm: LlmConfig,
}

impl Default for FsmConfig {
    fn default() -> Self {
        FsmConfig {
            max_attempts: 10,
            checksum: ChecksumConfig::default(),
            llm: LlmConfig::default(),
        }
    }
}

/// The result of driving the FSM on one kernel.
#[derive(Debug, Clone)]
pub struct FsmResult {
    /// The plausible candidate, when one was found.
    pub candidate: Option<Function>,
    /// Number of LLM invocations performed.
    pub attempts: u32,
    /// The final state (`Done` or `Failed`).
    pub final_state: FsmState,
    /// The full conversation transcript.
    pub transcript: Vec<Message>,
}

impl FsmResult {
    /// Returns `true` if a plausible candidate was produced.
    pub fn succeeded(&self) -> bool {
        self.final_state == FsmState::Done
    }
}

/// Runs the multi-agent FSM on a scalar kernel.
pub fn run_fsm(scalar: &Function, config: &FsmConfig) -> FsmResult {
    let mut llm = SyntheticLlm::new(config.llm.clone());
    run_fsm_with_llm(scalar, config, &mut llm)
}

/// Runs the FSM with an externally managed LLM (so a caller can share one
/// sampler across many kernels, keeping the RNG stream reproducible).
pub fn run_fsm_with_llm(
    scalar: &Function,
    config: &FsmConfig,
    llm: &mut SyntheticLlm,
) -> FsmResult {
    let mut transcript = Vec::new();
    let mut state = FsmState::AnalyzeDependence;
    let mut attempts = 0;
    let mut prompt = VectorizePrompt::new(scalar.clone());
    let mut candidate: Option<Function> = None;

    // AnalyzeDependence: the user proxy gathers compiler remarks.
    let report = analyze_function(scalar);
    let remarks = remarks_text(&report);
    transcript.push(Message {
        from: AgentRole::UserProxy,
        to: AgentRole::VectorizerAssistant,
        content: format!(
            "Vectorize `{}` for an AVX2 target. Compiler analysis:\n{}",
            scalar.name, remarks
        ),
    });
    prompt.dependence_feedback = Some(remarks);
    state = next_state(state);

    while attempts < config.max_attempts {
        debug_assert_eq!(state, FsmState::Vectorize);
        attempts += 1;
        prompt.attempt = attempts - 1;
        let completion = llm.complete(&prompt);
        transcript.push(Message {
            from: AgentRole::VectorizerAssistant,
            to: AgentRole::CompilerTester,
            content: format!(
                "attempt {}: {}\n{}",
                attempts,
                completion.notes,
                lv_cir::print_function(&completion.candidate)
            ),
        });

        // The Compile and Test states are folded into the checksum harness,
        // which first type checks the candidate.
        let report = checksum_test(scalar, &completion.candidate, &config.checksum);
        match report.outcome {
            ChecksumOutcome::Plausible => {
                transcript.push(Message {
                    from: AgentRole::CompilerTester,
                    to: AgentRole::UserProxy,
                    content: format!(
                        "attempt {}: checksums match ({:?}); candidate is plausible",
                        attempts, report.scalar_checksum
                    ),
                });
                candidate = Some(completion.candidate);
                state = FsmState::Done;
                break;
            }
            ChecksumOutcome::CannotCompile { error } => {
                transcript.push(Message {
                    from: AgentRole::CompilerTester,
                    to: AgentRole::VectorizerAssistant,
                    content: format!(
                        "attempt {}: the candidate does not compile: {}",
                        attempts, error
                    ),
                });
                prompt.checksum_feedback = Some(format!("compile error: {}", error));
            }
            ChecksumOutcome::NotEquivalent { reason, .. } => {
                transcript.push(Message {
                    from: AgentRole::CompilerTester,
                    to: AgentRole::VectorizerAssistant,
                    content: format!(
                        "attempt {}: outputs differ from the scalar code: {}",
                        attempts, reason
                    ),
                });
                prompt.checksum_feedback = Some(reason);
            }
            ChecksumOutcome::ScalarExecutionFailed { error } => {
                transcript.push(Message {
                    from: AgentRole::CompilerTester,
                    to: AgentRole::UserProxy,
                    content: format!("the scalar kernel itself failed to execute: {}", error),
                });
                state = FsmState::Failed;
                break;
            }
        }
        state = FsmState::Vectorize;
    }

    let final_state = match state {
        FsmState::Done => FsmState::Done,
        FsmState::Failed => FsmState::Failed,
        _ => {
            if candidate.is_some() {
                FsmState::Done
            } else {
                FsmState::Failed
            }
        }
    };

    FsmResult {
        candidate,
        attempts,
        final_state,
        transcript,
    }
}

fn next_state(state: FsmState) -> FsmState {
    match state {
        FsmState::AnalyzeDependence => FsmState::Vectorize,
        FsmState::Vectorize => FsmState::Compile,
        FsmState::Compile => FsmState::Test,
        FsmState::Test | FsmState::Done => FsmState::Done,
        FsmState::Failed => FsmState::Failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const S453: &str = "void s453(int *a, int *b, int n) { int s = 0; for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }";
    const S278: &str = "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }";

    #[test]
    fn easy_kernel_succeeds_quickly() {
        let scalar = parse_function(S000).unwrap();
        let result = run_fsm(&scalar, &FsmConfig::default());
        assert!(result.succeeded());
        assert!(result.attempts <= 5, "took {} attempts", result.attempts);
        assert!(result.candidate.is_some());
        assert!(result.transcript.len() >= 3);
    }

    #[test]
    fn recurrence_kernel_succeeds_within_budget() {
        let scalar = parse_function(S453).unwrap();
        let result = run_fsm(
            &scalar,
            &FsmConfig {
                llm: LlmConfig {
                    temperature: 1.0,
                    seed: 11,
                    ..LlmConfig::default()
                },
                ..FsmConfig::default()
            },
        );
        assert!(result.succeeded(), "attempts: {}", result.attempts);
        // The plausible candidate must really be plausible.
        let report = checksum_test(
            &scalar,
            result.candidate.as_ref().unwrap(),
            &ChecksumConfig::default(),
        );
        assert!(report.outcome.is_plausible());
    }

    #[test]
    fn goto_kernel_exhausts_attempts() {
        let scalar = parse_function(S278).unwrap();
        let result = run_fsm(
            &scalar,
            &FsmConfig {
                max_attempts: 3,
                ..FsmConfig::default()
            },
        );
        assert!(!result.succeeded());
        assert_eq!(result.attempts, 3);
        assert_eq!(result.final_state, FsmState::Failed);
    }

    #[test]
    fn transcript_contains_feedback_on_failures() {
        let scalar = parse_function(S278).unwrap();
        let result = run_fsm(
            &scalar,
            &FsmConfig {
                max_attempts: 2,
                ..FsmConfig::default()
            },
        );
        let feedback: Vec<&Message> = result
            .transcript
            .iter()
            .filter(|m| m.from == AgentRole::CompilerTester)
            .collect();
        assert!(!feedback.is_empty());
        assert!(feedback
            .iter()
            .all(|m| m.content.contains("differ") || m.content.contains("compile")));
    }

    #[test]
    fn fsm_is_reproducible_for_a_fixed_seed() {
        let scalar = parse_function(S000).unwrap();
        let a = run_fsm(&scalar, &FsmConfig::default());
        let b = run_fsm(&scalar, &FsmConfig::default());
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.candidate, b.candidate);
    }
}
