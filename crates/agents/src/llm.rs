//! The synthetic LLM: a stochastic wrapper around the rule-based vectorizer.
//!
//! The paper samples completions from GPT-4 at temperature 1.0. The
//! reproduction replaces the model with a sampler that, per completion,
//! either emits the correct candidate produced by
//! [`crate::vectorizer::vectorize_correct`] or injects one of the failure
//! modes the paper documents (Section 4.1.3 and the s453 walk-through):
//! missing scalar epilogues, wrong accumulator seeding, unsafe hoisting of
//! conditional stores, swapped blend operands, off-by-one subscripts,
//! dropped statements and calls to unsupported intrinsics. The per-kernel
//! success probability is derived from the dependence report, so dependence-
//! heavy kernels need many more completions — which is what produces the
//! k = 1/10/100 growth of Table 2 and the pass@k curve of Figure 5.

use crate::vectorizer::vectorize_correct;
use lv_analysis::{analyze_function, DependenceReport};
use lv_cir::ast::{AssignOp, Block, Expr, Function, Stmt};
use lv_cir::visit::map_exprs_in_block;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic model.
#[derive(Debug, Clone)]
pub struct LlmConfig {
    /// Sampling temperature; higher values increase the error-injection rate
    /// (the paper uses 1.0).
    pub temperature: f64,
    /// RNG seed for reproducible experiments.
    pub seed: u64,
    /// Simulated per-completion inference wall-clock cost. The real model
    /// behind the paper takes seconds per completion; the synthetic sampler
    /// takes microseconds, which makes generation/verification overlap
    /// experiments vacuous. A non-zero latency sleeps for that long inside
    /// [`SyntheticLlm::complete`] — it never affects the sampled content,
    /// only the wall clock. Zero (the default) everywhere outside latency
    /// experiments.
    pub latency: std::time::Duration,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            temperature: 1.0,
            seed: 0xC0FFEE,
            latency: std::time::Duration::ZERO,
        }
    }
}

/// A prompt for one completion: the scalar kernel plus optional feedback.
#[derive(Debug, Clone)]
pub struct VectorizePrompt {
    /// The scalar kernel to vectorize.
    pub scalar: Function,
    /// Clang-style dependence remarks supplied by the user proxy agent.
    pub dependence_feedback: Option<String>,
    /// Checksum mismatch / compile error feedback from the tester agent.
    pub checksum_feedback: Option<String>,
    /// 0-based repair attempt number within the FSM.
    pub attempt: u32,
}

impl VectorizePrompt {
    /// A fresh prompt with no feedback.
    pub fn new(scalar: Function) -> VectorizePrompt {
        VectorizePrompt {
            scalar,
            dependence_feedback: None,
            checksum_feedback: None,
            attempt: 0,
        }
    }
}

/// One sampled completion.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The candidate function (it may be wrong or may not even compile).
    pub candidate: Function,
    /// What the model "did", for transcripts and debugging.
    pub notes: String,
}

/// The error modes injected into candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorMode {
    MissingEpilogue,
    WrongSeed,
    UnsafeHoist,
    SwappedBlend,
    OffByOne,
    DroppedStatement,
    UnknownIntrinsic,
    NaiveScalarCopy,
}

/// The synthetic LLM.
#[derive(Debug)]
pub struct SyntheticLlm {
    config: LlmConfig,
    rng: StdRng,
}

impl SyntheticLlm {
    /// Creates a model with the given configuration.
    pub fn new(config: LlmConfig) -> SyntheticLlm {
        let rng = StdRng::seed_from_u64(config.seed);
        SyntheticLlm { config, rng }
    }

    /// The probability that a single completion for this kernel is correct,
    /// derived from the kernel's dependence features. Feedback from the
    /// dependence analysis and from failed checksum runs raises it, which is
    /// how the multi-agent FSM improves over blind sampling (Section 4.4).
    pub fn success_probability(&self, report: &DependenceReport, prompt: &VectorizePrompt) -> f64 {
        let mut p: f64 = if !report.loop_found {
            0.05
        } else if report.has_goto {
            0.25
        } else if !report.opaque_arrays.is_empty() {
            0.10
        } else if !report.recurrences.is_empty() && report.has_control_flow {
            0.30
        } else if !report.recurrences.is_empty() {
            0.45
        } else if report.has_loop_carried() && report.has_control_flow {
            0.40
        } else if report.has_loop_carried() && report.reductions.is_empty() {
            0.50
        } else if !report.reductions.is_empty() {
            0.65
        } else if report.has_control_flow {
            0.60
        } else {
            0.80
        };
        if prompt.dependence_feedback.is_some() {
            p += 0.10;
        }
        if prompt.checksum_feedback.is_some() {
            p += 0.25 * f64::from(prompt.attempt.min(3));
        }
        // Higher temperature means noisier generations.
        p /= self.config.temperature.max(0.1);
        p.clamp(0.02, 0.97)
    }

    /// Samples one completion for the prompt.
    pub fn complete(&mut self, prompt: &VectorizePrompt) -> Completion {
        if !self.config.latency.is_zero() {
            std::thread::sleep(self.config.latency);
        }
        let report = analyze_function(&prompt.scalar);
        let p = self.success_probability(&report, prompt);
        let correct = vectorize_correct(&prompt.scalar);
        let roll: f64 = self.rng.gen();
        match correct {
            Ok(candidate) if roll < p => Completion {
                notes: "emitted the strip-mined vectorization".to_string(),
                candidate,
            },
            Ok(candidate) => {
                let mode = self.pick_error_mode(&report);
                let mutated = self.inject_error(&candidate, &prompt.scalar, mode);
                Completion {
                    notes: format!("emitted a flawed vectorization ({:?})", mode),
                    candidate: mutated,
                }
            }
            Err(_) => {
                // The kernel is outside the model's competence: it still
                // answers, but the candidate is built from a flawed strategy.
                // Only mutations that genuinely change a scalar program are
                // eligible, so the "candidate" is never just the input code.
                let mode = match self.rng.gen_range(0..3) {
                    0 => ErrorMode::NaiveScalarCopy,
                    1 => ErrorMode::OffByOne,
                    _ => ErrorMode::UnknownIntrinsic,
                };
                let base = naive_candidate(&prompt.scalar);
                let mutated = self.inject_error(&base, &prompt.scalar, mode);
                Completion {
                    notes: format!(
                        "guessed a vectorization for an unsupported kernel ({:?})",
                        mode
                    ),
                    candidate: mutated,
                }
            }
        }
    }

    fn pick_error_mode(&mut self, report: &DependenceReport) -> ErrorMode {
        let mut choices = vec![
            ErrorMode::MissingEpilogue,
            ErrorMode::OffByOne,
            ErrorMode::DroppedStatement,
            ErrorMode::NaiveScalarCopy,
        ];
        if !report.recurrences.is_empty() || !report.reductions.is_empty() {
            choices.push(ErrorMode::WrongSeed);
            choices.push(ErrorMode::WrongSeed);
        }
        if report.has_control_flow {
            choices.push(ErrorMode::UnsafeHoist);
            choices.push(ErrorMode::SwappedBlend);
        }
        // A small chance of emitting something that does not compile at all
        // (Table 2's "Cannot compile" row at k = 1).
        if self.rng.gen::<f64>() < 0.12 {
            return ErrorMode::UnknownIntrinsic;
        }
        choices[self.rng.gen_range(0..choices.len())]
    }

    fn inject_error(
        &mut self,
        candidate: &Function,
        scalar: &Function,
        mode: ErrorMode,
    ) -> Function {
        let mut out = candidate.clone();
        match mode {
            ErrorMode::MissingEpilogue => {
                // Drop the trailing scalar epilogue loop (and anything after it).
                if let Some(pos) = out
                    .body
                    .stmts
                    .iter()
                    .rposition(|s| matches!(s, Stmt::For { init: None, .. }))
                {
                    out.body.stmts.remove(pos);
                }
            }
            ErrorMode::WrongSeed => {
                // Replace a `setr` seed with a `set1` seed: the paper's s453
                // first attempt.
                out.body = map_exprs_in_block(out.body, &|e| match e {
                    Expr::Call {
                        ref callee,
                        ref args,
                    } if callee == "_mm256_setr_epi32" => {
                        Expr::call("_mm256_set1_epi32", vec![args[0].clone()])
                    }
                    other => other,
                });
            }
            ErrorMode::UnsafeHoist => {
                // Drop the blend: unconditionally store the "then" value.
                out.body = map_exprs_in_block(out.body, &|e| match e {
                    Expr::Call {
                        ref callee,
                        ref args,
                    } if callee == "_mm256_blendv_epi8" => args[1].clone(),
                    other => other,
                });
            }
            ErrorMode::SwappedBlend => {
                out.body = map_exprs_in_block(out.body, &|e| match e {
                    Expr::Call {
                        ref callee,
                        ref args,
                    } if callee == "_mm256_blendv_epi8" => Expr::call(
                        "_mm256_blendv_epi8",
                        vec![args[1].clone(), args[0].clone(), args[2].clone()],
                    ),
                    other => other,
                });
            }
            ErrorMode::OffByOne => {
                // Shift every subscript by one element: the candidate reads
                // and writes the wrong slice of each array.
                out.body = map_exprs_in_block(out.body, &|e| match e {
                    Expr::Index { base, index } => Expr::Index {
                        base,
                        index: Box::new(Expr::bin(lv_cir::BinOp::Add, *index, Expr::lit(1))),
                    },
                    other => other,
                });
            }
            ErrorMode::DroppedStatement => {
                // Remove the last store of the vector loop body.
                remove_last_store(&mut out.body);
            }
            ErrorMode::UnknownIntrinsic => {
                // Introduce a call to an intrinsic the toolchain does not know.
                out.body.stmts.insert(
                    0,
                    Stmt::Decl {
                        ty: lv_cir::Type::M256i,
                        name: "bad".to_string(),
                        init: Some(Expr::call("_mm256_dpbusd_epi32", vec![Expr::lit(0)])),
                    },
                );
            }
            ErrorMode::NaiveScalarCopy => {
                // "Vectorize" by copying the scalar loop but claiming a stride
                // of 8 — processes only every 8th element.
                out = scalar.clone();
                if let Some(Stmt::For { step, .. }) =
                    out.body.stmts.iter_mut().find(|s| s.is_loop())
                {
                    *step = Some(Expr::assign(
                        AssignOp::AddAssign,
                        Expr::var(loop_iv(scalar).unwrap_or_else(|| "i".to_string())),
                        Expr::lit(8),
                    ));
                }
            }
        }
        out
    }
}

fn loop_iv(func: &Function) -> Option<String> {
    lv_analysis::loop_nest(func)
        .loops
        .first()
        .map(|l| l.iv.clone())
}

fn naive_candidate(scalar: &Function) -> Function {
    scalar.clone()
}

fn remove_last_store(block: &mut Block) {
    fn is_store(stmt: &Stmt) -> bool {
        matches!(
            stmt,
            Stmt::Expr(Expr::Call { callee, .. }) if callee == "_mm256_storeu_si256"
        )
    }
    for stmt in block.stmts.iter_mut().rev() {
        if let Stmt::For { body, .. } = stmt {
            if let Some(pos) = body.stmts.iter().rposition(is_store) {
                body.stmts.remove(pos);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;
    use lv_interp::{checksum_test, ChecksumConfig, ChecksumOutcome};

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const S453: &str = "void s453(int *a, int *b, int n) { int s = 0; for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }";

    #[test]
    fn low_temperature_reliably_vectorizes_easy_kernels() {
        let scalar = parse_function(S000).unwrap();
        let mut llm = SyntheticLlm::new(LlmConfig {
            temperature: 0.2,
            seed: 1,
            ..LlmConfig::default()
        });
        let prompt = VectorizePrompt::new(scalar.clone());
        let mut successes = 0;
        for _ in 0..20 {
            let completion = llm.complete(&prompt);
            let report = checksum_test(&scalar, &completion.candidate, &ChecksumConfig::default());
            if report.outcome.is_plausible() {
                successes += 1;
            }
        }
        assert!(
            successes >= 15,
            "only {} of 20 completions were plausible",
            successes
        );
    }

    #[test]
    fn sampling_is_reproducible() {
        let scalar = parse_function(S000).unwrap();
        let prompt = VectorizePrompt::new(scalar);
        let mut a = SyntheticLlm::new(LlmConfig::default());
        let mut b = SyntheticLlm::new(LlmConfig::default());
        for _ in 0..5 {
            assert_eq!(a.complete(&prompt).candidate, b.complete(&prompt).candidate);
        }
    }

    #[test]
    fn error_injection_produces_detectable_bugs() {
        let scalar = parse_function(S000).unwrap();
        let mut llm = SyntheticLlm::new(LlmConfig {
            temperature: 5.0, // force errors
            seed: 7,
            ..LlmConfig::default()
        });
        let prompt = VectorizePrompt::new(scalar.clone());
        let mut not_equivalent = 0;
        let mut cannot_compile = 0;
        for _ in 0..30 {
            let completion = llm.complete(&prompt);
            match checksum_test(&scalar, &completion.candidate, &ChecksumConfig::default()).outcome
            {
                ChecksumOutcome::Plausible => {}
                ChecksumOutcome::NotEquivalent { .. } => not_equivalent += 1,
                ChecksumOutcome::CannotCompile { .. } => cannot_compile += 1,
                ChecksumOutcome::ScalarExecutionFailed { .. } => {}
            }
        }
        assert!(
            not_equivalent > 5,
            "expected many wrong candidates, got {}",
            not_equivalent
        );
        assert!(cannot_compile > 0, "expected some non-compiling candidates");
    }

    #[test]
    fn feedback_raises_success_probability() {
        let scalar = parse_function(S453).unwrap();
        let llm = SyntheticLlm::new(LlmConfig::default());
        let report = lv_analysis::analyze_function(&scalar);
        let blind = VectorizePrompt::new(scalar.clone());
        let with_feedback = VectorizePrompt {
            scalar,
            dependence_feedback: Some("recurrence on s".to_string()),
            checksum_feedback: Some("a[0]: expected 2 but got 0".to_string()),
            attempt: 2,
        };
        assert!(
            llm.success_probability(&report, &with_feedback)
                > llm.success_probability(&report, &blind)
        );
    }

    #[test]
    fn wrong_seed_mode_reproduces_s453_first_attempt() {
        let scalar = parse_function(S453).unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let mut llm = SyntheticLlm::new(LlmConfig::default());
        let broken = llm.inject_error(&candidate, &scalar, ErrorMode::WrongSeed);
        let printed = lv_cir::print_function(&broken);
        assert!(printed.contains("_mm256_set1_epi32"), "{}", printed);
        assert!(!printed.contains("_mm256_setr_epi32"), "{}", printed);
        let report = checksum_test(&scalar, &broken, &ChecksumConfig::default());
        assert!(matches!(
            report.outcome,
            ChecksumOutcome::NotEquivalent { .. }
        ));
    }
}
