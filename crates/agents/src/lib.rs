//! # lv-agents — the synthetic LLM and the multi-agent FSM
//!
//! The paper's code generator is GPT-4 orchestrated by AutoGen-style agents.
//! This crate supplies the substitute:
//!
//! * [`vectorizer`] — a rule-based strip-mining vectorizer that produces
//!   *correct* AVX2 candidates for the kernel shapes the paper's model
//!   handles (element-wise code, if-conversion, reductions, s453-style
//!   recurrences);
//! * [`llm`] — the stochastic layer ([`SyntheticLlm`]) that mixes correct
//!   candidates with the documented failure modes at a rate controlled by the
//!   kernel's dependence features, the sampling temperature and the feedback
//!   received so far;
//! * [`fsm`] — the user-proxy / vectorizer-assistant / compiler-tester
//!   finite-state machine with its checksum feedback loop ([`run_fsm`]);
//! * [`batch`] — deterministic batch candidate generation feeding the
//!   `lv_core` verification engine, in two modes: the legacy sequential
//!   shared-sampler path ([`sample_completion_batch`],
//!   [`fsm_candidate_batch`]) and the per-cell seeded path
//!   ([`sample_completion_batch_seeded`], [`derive_cell_seed`]) whose cells
//!   can be generated on any number of threads in any order — the
//!   generation half of the overlapped generation→verification pipeline.
//!
//! # Examples
//!
//! ```
//! use lv_agents::{run_fsm, FsmConfig};
//! use lv_cir::parse_function;
//!
//! let scalar = parse_function(
//!     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
//! )?;
//! let result = run_fsm(&scalar, &FsmConfig::default());
//! assert!(result.succeeded());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod fsm;
pub mod llm;
pub mod vectorizer;

pub use batch::{
    derive_cell_seed, fsm_candidate_batch, sample_completion_batch, sample_completion_batch_seeded,
    sample_completion_batch_with, sample_completion_cell, CompletionBatch, GenerationMode,
};
pub use fsm::{run_fsm, run_fsm_with_llm, AgentRole, FsmConfig, FsmResult, FsmState, Message};
pub use llm::{Completion, LlmConfig, SyntheticLlm, VectorizePrompt};
pub use vectorizer::{vectorize_correct, UnsupportedKernel};
