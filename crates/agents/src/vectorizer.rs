//! The rule-based strip-mining vectorizer underlying the synthetic LLM.
//!
//! The paper's candidate generator is GPT-4; this reproduction replaces it
//! with a deterministic vectorizer that can produce *correct* AVX2 candidates
//! for the kernel shapes GPT-4 handles well (element-wise loops, if-converted
//! control flow, reductions, and induction-style scalar recurrences such as
//! s453), plus a catalogue of *mutations* reproducing the failure modes the
//! paper reports (missing epilogues, wrong accumulator seeding, unsafe
//! hoisting, swapped blends, off-by-one subscripts, non-existent intrinsics).
//! The stochastic layer that decides which of these to emit lives in
//! [`crate::llm`].

use lv_analysis::{analyze_function, collect_accesses, loop_nest, AccessKind, CanonicalLoop};
use lv_cir::ast::{AssignOp, BinOp, Block, Expr, Function, Stmt, Type};
use lv_cir::builder as b;
use lv_cir::intrinsics::VECTOR_WIDTH;

/// Why the rule-based vectorizer declined to produce a correct candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedKernel {
    /// Human-readable reason (also used in agent transcripts).
    pub reason: String,
}

impl UnsupportedKernel {
    fn new(reason: impl Into<String>) -> UnsupportedKernel {
        UnsupportedKernel {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for UnsupportedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot vectorize: {}", self.reason)
    }
}

impl std::error::Error for UnsupportedKernel {}

/// Produces a correct AVX2 vectorization of `scalar`, when the kernel falls
/// into one of the supported shapes.
///
/// # Errors
///
/// Returns [`UnsupportedKernel`] for kernels with goto control flow, opaque
/// subscripts, flow-dependent recurrences on arrays, nested loops, or
/// operators with no AVX2 integer equivalent.
pub fn vectorize_correct(scalar: &Function) -> Result<Function, UnsupportedKernel> {
    let nest = loop_nest(scalar);
    if nest.is_nested() {
        return Err(UnsupportedKernel::new("nested loops are not supported"));
    }
    let Some(l) = nest.single().cloned() else {
        return Err(UnsupportedKernel::new("no single canonical for-loop"));
    };
    if l.step_or_one() != 1 || !l.is_forward() {
        return Err(UnsupportedKernel::new(
            "only unit-stride forward loops are supported",
        ));
    }
    let report = analyze_function(scalar);
    if report.has_goto {
        return Err(UnsupportedKernel::new("goto-based control flow"));
    }
    if !report.opaque_arrays.is_empty() {
        return Err(UnsupportedKernel::new(
            "subscripts are not affine in the induction variable",
        ));
    }
    if report
        .loop_carried()
        .iter()
        .any(|d| d.kind == lv_analysis::DepKind::Flow)
    {
        return Err(UnsupportedKernel::new(
            "loop-carried flow dependence on an array",
        ));
    }

    let body = collect_accesses(&l.body, &l.iv);
    // Scalars updated in the body: reductions and s453-style linear
    // recurrences are supported; anything else is not.
    let mut reduction: Option<ReductionInfo> = None;
    let mut recurrence: Option<RecurrenceInfo> = None;
    for update in &body.scalar_updates {
        if report.reductions.contains(&update.name) {
            if reduction.is_some() {
                return Err(UnsupportedKernel::new("multiple reduction accumulators"));
            }
            reduction = Some(find_reduction(&l, &update.name)?);
        } else if report.recurrences.contains(&update.name) {
            if recurrence.is_some() {
                return Err(UnsupportedKernel::new("multiple scalar recurrences"));
            }
            recurrence = Some(find_linear_recurrence(&l, &update.name)?);
        }
    }

    let mut builder = VectorBuilder {
        iv: l.iv.clone(),
        reduction,
        recurrence,
        preloaded: Vec::new(),
        temp_counter: 0,
    };
    builder.build(scalar, &l)
}

/// A recognized reduction `acc op= expr`.
#[derive(Debug, Clone)]
struct ReductionInfo {
    name: String,
    op: BinOp,
    expr: Expr,
}

/// A recognized linear scalar recurrence `s += constant` (s453).
#[derive(Debug, Clone)]
struct RecurrenceInfo {
    name: String,
    increment: i64,
}

fn find_reduction(l: &CanonicalLoop, name: &str) -> Result<ReductionInfo, UnsupportedKernel> {
    for stmt in &l.body.stmts {
        if let Stmt::Expr(Expr::Assign { op, target, value }) = stmt {
            if target.as_var() == Some(name) {
                let binop = op
                    .binop()
                    .filter(|op| matches!(op, BinOp::Add | BinOp::Sub))
                    .ok_or_else(|| {
                        UnsupportedKernel::new(format!(
                            "unsupported reduction operator on `{}`",
                            name
                        ))
                    })?;
                return Ok(ReductionInfo {
                    name: name.to_string(),
                    op: binop,
                    expr: (**value).clone(),
                });
            }
        }
    }
    Err(UnsupportedKernel::new(format!(
        "reduction `{}` is not a top-level statement of the loop body",
        name
    )))
}

fn find_linear_recurrence(
    l: &CanonicalLoop,
    name: &str,
) -> Result<RecurrenceInfo, UnsupportedKernel> {
    for stmt in &l.body.stmts {
        if let Stmt::Expr(Expr::Assign { op, target, value }) = stmt {
            if target.as_var() == Some(name) {
                if *op == AssignOp::AddAssign {
                    if let Some(c) = value.as_int_lit() {
                        return Ok(RecurrenceInfo {
                            name: name.to_string(),
                            increment: c,
                        });
                    }
                }
                return Err(UnsupportedKernel::new(format!(
                    "scalar `{}` carries a non-linear recurrence",
                    name
                )));
            }
        }
    }
    Err(UnsupportedKernel::new(format!(
        "recurrence `{}` is updated under control flow",
        name
    )))
}

struct VectorBuilder {
    iv: String,
    reduction: Option<ReductionInfo>,
    recurrence: Option<RecurrenceInfo>,
    /// Vector temporaries holding pre-loaded array slices, keyed by the array
    /// name and the printed subscript. Loading every read slice *before* any
    /// store is what makes anti-dependent kernels such as s212 come out
    /// correct (the paper's Figure 1(b) does exactly this), and updating the
    /// temporary after a store keeps same-iteration flow dependences correct.
    preloaded: Vec<((String, String), String)>,
    temp_counter: usize,
}

impl VectorBuilder {
    fn fresh(&mut self, prefix: &str) -> String {
        self.temp_counter += 1;
        format!("{}_v{}", prefix, self.temp_counter)
    }

    fn preloaded_temp(&self, array: &str, index: &Expr) -> Option<String> {
        let key = (array.to_string(), lv_cir::print_expr(index));
        self.preloaded
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, name)| name.clone())
    }

    fn read_slice(&self, array: &str, index: &Expr) -> Expr {
        match self.preloaded_temp(array, index) {
            Some(temp) => Expr::var(temp),
            None => b::vec_load(array, index.clone()),
        }
    }

    fn build(
        &mut self,
        scalar: &Function,
        l: &CanonicalLoop,
    ) -> Result<Function, UnsupportedKernel> {
        let width = VECTOR_WIDTH as i64;
        let mut prelude: Vec<Stmt> = Vec::new();
        // Keep statements before/after the loop unchanged (e.g. `j = -1;`,
        // final stores of reduction results).
        let mut seen_loop = false;
        let mut postlude: Vec<Stmt> = Vec::new();
        for stmt in &scalar.body.stmts {
            if stmt.is_loop() {
                seen_loop = true;
                continue;
            }
            if seen_loop {
                postlude.push(stmt.clone());
            } else {
                prelude.push(stmt.clone());
            }
        }

        // Vector accumulators.
        if let Some(red) = &self.reduction {
            prelude.push(b::decl_vec(format!("{}_vec", red.name), b::vec_zero()));
        }
        if let Some(rec) = &self.recurrence {
            // Seed lanes with s + c, s + 2c, ..., s + 8c (the paper's "second
            // attempt" for s453).
            let lanes: Vec<Expr> = (1..=width)
                .map(|k| {
                    Expr::bin(
                        BinOp::Add,
                        Expr::var(&rec.name),
                        Expr::lit(rec.increment * k),
                    )
                })
                .collect();
            prelude.push(b::decl_vec(format!("{}_vec", rec.name), b::vec_setr(lanes)));
        }

        // Vector loop body. First pre-load every array slice the body reads,
        // so that stores emitted later in the chunk cannot clobber values the
        // scalar code would have read from memory (anti dependences).
        let mut vbody: Vec<Stmt> = Vec::new();
        let accesses = collect_accesses(&l.body, &l.iv);
        for access in &accesses.accesses {
            if access.kind != AccessKind::Read {
                continue;
            }
            let key = (access.array.clone(), lv_cir::print_expr(&access.index));
            if self.preloaded.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let temp = self.fresh(&access.array);
            vbody.push(b::decl_vec(
                &temp,
                b::vec_load(&access.array, access.index.clone()),
            ));
            self.preloaded.push((key, temp));
        }
        for stmt in &l.body.stmts {
            self.lower_stmt(stmt, &mut vbody)?;
        }
        if let Some(rec) = &self.recurrence {
            // Advance both the vector lanes and the scalar shadow value.
            vbody.push(b::assign_stmt(
                Expr::var(format!("{}_vec", rec.name)),
                Expr::call(
                    "_mm256_add_epi32",
                    vec![
                        Expr::var(format!("{}_vec", rec.name)),
                        b::vec_splat(Expr::lit(rec.increment * width)),
                    ],
                ),
            ));
            vbody.push(b::compound_assign_stmt(
                AssignOp::AddAssign,
                Expr::var(&rec.name),
                Expr::lit(rec.increment * width),
            ));
        }

        let mut out_body: Vec<Stmt> = Vec::new();
        out_body.extend(prelude);
        out_body.push(b::decl_int(&self.iv, None));
        out_body.push(b::vector_loop(
            &self.iv,
            l.start.clone(),
            l.bound.clone(),
            width,
            Block::from_stmts(vbody),
            false,
        ));

        // Reduction: fold the vector accumulator back into the scalar.
        if let Some(red) = &self.reduction.clone() {
            let acc_vec = Expr::var(format!("{}_vec", red.name));
            for lane in 0..VECTOR_WIDTH {
                let extract = Expr::call(
                    "_mm256_extract_epi32",
                    vec![acc_vec.clone(), Expr::lit(lane as i64)],
                );
                let op = if red.op == BinOp::Add {
                    AssignOp::AddAssign
                } else {
                    AssignOp::SubAssign
                };
                out_body.push(b::compound_assign_stmt(op, Expr::var(&red.name), extract));
            }
        }

        // Scalar epilogue covering the remaining iterations.
        out_body.push(b::epilogue_loop(
            &self.iv,
            l.bound.clone(),
            1,
            l.body.clone(),
        ));
        out_body.extend(postlude);

        Ok(Function::new(
            scalar.name.clone(),
            Type::Void,
            scalar.params.clone(),
            Block::from_stmts(out_body),
        ))
    }

    fn lower_stmt(&mut self, stmt: &Stmt, out: &mut Vec<Stmt>) -> Result<(), UnsupportedKernel> {
        match stmt {
            Stmt::Expr(Expr::Assign { op, target, value }) => {
                // Reduction / recurrence updates are handled at loop level.
                if let Some(name) = target.as_var() {
                    if self.reduction.as_ref().is_some_and(|r| r.name == name) {
                        let red = self.reduction.clone().expect("checked");
                        let expr_vec = self.lower_expr(&red.expr, out)?;
                        let acc = Expr::var(format!("{}_vec", red.name));
                        let callee = if red.op == BinOp::Add {
                            "_mm256_add_epi32"
                        } else {
                            "_mm256_sub_epi32"
                        };
                        out.push(b::assign_stmt(
                            acc.clone(),
                            Expr::call(callee, vec![acc, expr_vec]),
                        ));
                        return Ok(());
                    }
                    if self.recurrence.as_ref().is_some_and(|r| r.name == name) {
                        // The per-iteration bump is replaced by the vectorized
                        // bump emitted at the end of the loop body.
                        return Ok(());
                    }
                    return Err(UnsupportedKernel::new(format!(
                        "scalar `{}` is written inside the loop body",
                        name
                    )));
                }
                // Array store.
                let (array, index) = match target.as_ref() {
                    Expr::Index { base, index } => match base.as_var() {
                        Some(a) => (a.to_string(), (**index).clone()),
                        None => return Err(UnsupportedKernel::new("unsupported store target")),
                    },
                    _ => return Err(UnsupportedKernel::new("unsupported assignment target")),
                };
                let full_value = match op.binop() {
                    None => (**value).clone(),
                    Some(binop) => Expr::bin(binop, (**target).clone(), (**value).clone()),
                };
                let value_vec = self.lower_expr(&full_value, out)?;
                // Materialize the stored value in a temporary: later
                // statements in the same iteration must observe it.
                let stored = self.fresh(&array);
                out.push(b::decl_vec(&stored, value_vec));
                out.push(b::vec_store(&array, index.clone(), Expr::var(&stored)));
                let key = (array.clone(), lv_cir::print_expr(&index));
                if let Some(slot) = self.preloaded.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = stored;
                } else {
                    self.preloaded.push((key, stored));
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => self.lower_branch(cond, then_branch, else_branch.as_ref(), out),
            Stmt::Empty | Stmt::Label(_) => Ok(()),
            other => Err(UnsupportedKernel::new(format!(
                "unsupported statement in loop body: {}",
                lv_cir::print_stmt(other)
            ))),
        }
    }

    /// If-conversion: both branches are computed, stores are blended on the
    /// comparison mask (the s124/s2711 pattern).
    fn lower_branch(
        &mut self,
        cond: &Expr,
        then_branch: &Block,
        else_branch: Option<&Block>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), UnsupportedKernel> {
        let mask_expr = self.lower_condition(cond, out)?;
        let mask_name = self.fresh("mask");
        out.push(b::decl_vec(&mask_name, mask_expr));

        // Collect the stores of each branch: array -> value expression.
        let then_stores = branch_stores(then_branch)?;
        let else_stores = match else_branch {
            Some(e) => branch_stores(e)?,
            None => Vec::new(),
        };
        let mut targets: Vec<(String, Expr)> = Vec::new();
        for (a, idx, _) in then_stores.iter().chain(else_stores.iter()) {
            if !targets.iter().any(|(ta, ti)| ta == a && ti == idx) {
                targets.push((a.clone(), idx.clone()));
            }
        }
        for (array, index) in targets {
            let then_val = then_stores
                .iter()
                .find(|(a, idx, _)| *a == array && *idx == index)
                .map(|(_, _, v)| v.clone());
            let else_val = else_stores
                .iter()
                .find(|(a, idx, _)| *a == array && *idx == index)
                .map(|(_, _, v)| v.clone());
            let then_vec = match then_val {
                Some(v) => self.lower_expr(&v, out)?,
                None => self.read_slice(&array, &index),
            };
            let else_vec = match else_val {
                Some(v) => self.lower_expr(&v, out)?,
                None => self.read_slice(&array, &index),
            };
            let blended = b::vec_blend(else_vec, then_vec, Expr::var(&mask_name));
            let stored = self.fresh(&array);
            out.push(b::decl_vec(&stored, blended));
            out.push(b::vec_store(&array, index.clone(), Expr::var(&stored)));
            let key = (array.clone(), lv_cir::print_expr(&index));
            if let Some(slot) = self.preloaded.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = stored;
            } else {
                self.preloaded.push((key, stored));
            }
        }
        Ok(())
    }

    fn lower_condition(
        &mut self,
        cond: &Expr,
        out: &mut Vec<Stmt>,
    ) -> Result<Expr, UnsupportedKernel> {
        match cond {
            Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let l = self.lower_expr(lhs, out)?;
                let r = self.lower_expr(rhs, out)?;
                match op {
                    BinOp::Gt => Ok(b::vec_cmpgt(l, r)),
                    BinOp::Lt => Ok(b::vec_cmpgt(r, l)),
                    BinOp::Eq => Ok(Expr::call("_mm256_cmpeq_epi32", vec![l, r])),
                    BinOp::Ne => {
                        // !(l == r): emulate with cmpeq and swap of blend
                        // operands is cleaner, but an xor with all-ones works.
                        let eq = Expr::call("_mm256_cmpeq_epi32", vec![l, r]);
                        Ok(Expr::call(
                            "_mm256_xor_si256",
                            vec![eq, b::vec_splat(Expr::lit(-1))],
                        ))
                    }
                    BinOp::Ge => {
                        // l >= r  ==  !(r > l)
                        let gt = b::vec_cmpgt(r, l);
                        Ok(Expr::call(
                            "_mm256_xor_si256",
                            vec![gt, b::vec_splat(Expr::lit(-1))],
                        ))
                    }
                    BinOp::Le => {
                        let gt = b::vec_cmpgt(l, r);
                        Ok(Expr::call(
                            "_mm256_xor_si256",
                            vec![gt, b::vec_splat(Expr::lit(-1))],
                        ))
                    }
                    _ => Err(UnsupportedKernel::new("unsupported comparison")),
                }
            }
            other => {
                // Treat `if (x)` as `if (x != 0)`.
                let l = self.lower_expr(other, out)?;
                let zero = b::vec_zero();
                let eq = Expr::call("_mm256_cmpeq_epi32", vec![l, zero]);
                Ok(Expr::call(
                    "_mm256_xor_si256",
                    vec![eq, b::vec_splat(Expr::lit(-1))],
                ))
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr, out: &mut Vec<Stmt>) -> Result<Expr, UnsupportedKernel> {
        match expr {
            Expr::IntLit(v) => Ok(b::vec_splat(Expr::lit(*v))),
            Expr::Var(name) if *name == self.iv => {
                let lanes: Vec<Expr> = (0..VECTOR_WIDTH as i64)
                    .map(|k| b::offset_index(&self.iv, k))
                    .collect();
                Ok(b::vec_setr(lanes))
            }
            Expr::Var(name) => {
                if let Some(rec) = &self.recurrence {
                    if rec.name == *name {
                        return Ok(Expr::var(format!("{}_vec", name)));
                    }
                }
                if let Some(red) = &self.reduction {
                    if red.name == *name {
                        return Ok(Expr::var(format!("{}_vec", name)));
                    }
                }
                // Loop-invariant scalar: broadcast.
                Ok(b::vec_splat(Expr::var(name)))
            }
            Expr::Index { base, index } => match base.as_var() {
                Some(array) => Ok(self.read_slice(array, index)),
                None => Err(UnsupportedKernel::new("unsupported array base expression")),
            },
            Expr::Unary { op, expr } => match op {
                lv_cir::UnOp::Neg => {
                    let inner = self.lower_expr(expr, out)?;
                    Ok(Expr::call("_mm256_sub_epi32", vec![b::vec_zero(), inner]))
                }
                _ => Err(UnsupportedKernel::new("unsupported unary operator")),
            },
            Expr::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs, out)?;
                let r = self.lower_expr(rhs, out)?;
                b::vec_binop(*op, l, r).ok_or_else(|| {
                    UnsupportedKernel::new(format!(
                        "operator `{}` has no AVX2 integer equivalent",
                        op.symbol()
                    ))
                })
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let mask = self.lower_condition(cond, out)?;
                let t = self.lower_expr(then_expr, out)?;
                let e = self.lower_expr(else_expr, out)?;
                Ok(b::vec_blend(e, t, mask))
            }
            other => Err(UnsupportedKernel::new(format!(
                "unsupported expression: {}",
                lv_cir::print_expr(other)
            ))),
        }
    }
}

type StoreTriple = (String, Expr, Expr);

/// Extracts the array stores of an if-branch: `(array, index, stored value)`.
/// Any other statement makes the branch unsupported.
fn branch_stores(block: &Block) -> Result<Vec<StoreTriple>, UnsupportedKernel> {
    let mut out = Vec::new();
    for stmt in &block.stmts {
        match stmt {
            Stmt::Expr(Expr::Assign { op, target, value }) => match target.as_ref() {
                Expr::Index { base, index } => {
                    let array = base
                        .as_var()
                        .ok_or_else(|| UnsupportedKernel::new("unsupported store target"))?;
                    let full_value = match op.binop() {
                        None => (**value).clone(),
                        Some(binop) => Expr::bin(binop, (**target).clone(), (**value).clone()),
                    };
                    out.push((array.to_string(), (**index).clone(), full_value));
                }
                _ => {
                    return Err(UnsupportedKernel::new(
                        "branch writes a scalar; if-conversion not applicable",
                    ))
                }
            },
            Stmt::Empty => {}
            other => {
                return Err(UnsupportedKernel::new(format!(
                    "unsupported statement under control flow: {}",
                    lv_cir::print_stmt(other)
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;
    use lv_interp::{checksum_test, ChecksumConfig, ChecksumOutcome};

    fn check_correct(src: &str) {
        let scalar = parse_function(src).unwrap();
        let candidate = vectorize_correct(&scalar).expect("vectorization should succeed");
        assert!(lv_cir::compiles(&candidate), "candidate must type check");
        let report = checksum_test(&scalar, &candidate, &ChecksumConfig::default());
        assert_eq!(
            report.outcome,
            ChecksumOutcome::Plausible,
            "candidate must pass checksum testing:\n{}",
            lv_cir::print_function(&candidate)
        );
    }

    #[test]
    fn elementwise_kernel() {
        check_correct(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        );
    }

    #[test]
    fn s212_dependence_kernel() {
        check_correct(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
        );
    }

    #[test]
    fn if_converted_kernel() {
        check_correct(
            "void s2711(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { if (b[i] != 0) { a[i] += b[i] * c[i]; } } }",
        );
        check_correct(
            "void s274(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { a[i] = c[i] + e[i] * d[i]; if (a[i] > 0) { b[i] = a[i] + b[i]; } else { a[i] = d[i] * e[i]; } } }",
        );
    }

    #[test]
    fn reduction_kernel() {
        check_correct(
            "void vsumr(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }",
        );
    }

    #[test]
    fn s453_recurrence_kernel() {
        check_correct(
            "void s453(int *a, int *b, int n) { int s = 0; for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }",
        );
    }

    #[test]
    fn ternary_kernel() {
        check_correct(
            "void vmax(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = a[i] > b[i] ? a[i] : b[i]; } }",
        );
    }

    #[test]
    fn unsupported_kernels_are_reported() {
        let goto_kernel = parse_function(
            "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }",
        )
        .unwrap();
        assert!(vectorize_correct(&goto_kernel).is_err());

        let flow_dep = parse_function(
            "void f(int n, int *a) { for (int i = 1; i < n; i++) { a[i] = a[i - 1] + 1; } }",
        )
        .unwrap();
        assert!(vectorize_correct(&flow_dep).is_err());

        let opaque = parse_function(
            "void s124(int *a, int *b, int *c, int *d, int *e, int n) { int j; j = -1; for (int i = 0; i < n; i++) { if (b[i] > 0) { j += 1; a[j] = b[i] + d[i] * e[i]; } else { j += 1; a[j] = c[i] + d[i] * e[i]; } } }",
        )
        .unwrap();
        assert!(vectorize_correct(&opaque).is_err());

        let division = parse_function(
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] / 3; } }",
        )
        .unwrap();
        assert!(vectorize_correct(&division).is_err());
    }
}
