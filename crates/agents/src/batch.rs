//! Batch candidate generation feeding the verification engine, in two
//! deterministic modes.
//!
//! Historically generation had to stay sequential: the synthetic LLM is a
//! stateful seeded sampler, so reproducibility meant one model instance
//! walking the kernels in order while only verification parallelized. That
//! rationale is superseded. Generation now has **two modes**, both
//! deterministic, chosen by [`GenerationMode`]:
//!
//! * [`GenerationMode::Sequential`] — the legacy shared-sampler path:
//!   one [`SyntheticLlm`] walks every `(kernel, completion)` cell in order
//!   and each cell consumes the next stretch of the *shared* RNG stream.
//!   Output is byte-identical to every earlier release, which is what the
//!   existing cache/shard/service CI pins (`examples/cache_sweep.rs`,
//!   `shard_sweep.rs`, `service_sweep.rs`) and the
//!   `batch_matches_sequential_sampling` test pin.
//! * [`GenerationMode::Seeded`] — the per-cell seeded path: each
//!   `(kernel i, completion j)` cell samples from a **fresh** model seeded
//!   with [`derive_cell_seed`]`(base, i, j)`, so cells are independent and
//!   any number of generator threads producing cells in any order yields
//!   the same completion set. This is what lets generation overlap with
//!   verification (the engine's streaming `JobSource` intake) and what the
//!   pipeline property tests pin at generator thread counts 1/2/8.
//!
//! # The seed-derivation scheme
//!
//! [`derive_cell_seed`] packs the cell coordinates as
//! `(i as u64) << 32 | j` and mixes them with the base seed through the
//! SplitMix64 finalizer (the same constants the `rand` shim uses for seed
//! expansion). The finalizer is a bijection on `u64` and the packing is
//! injective for `i, j < 2^32`, so for a fixed base seed **distinct cells
//! always get distinct seeds** — pinned, along with golden values that hold
//! on every platform, by `tests/pipeline_overlap.rs`.
//!
//! The two modes produce *different* completion sets for the same base
//! seed (a shared RNG stream cannot be split per-cell without changing the
//! draws); callers choose per workload. New overlapped surfaces
//! (`lv-sweep run`, service generation submits, generated shard manifests)
//! use `Seeded`; the pre-existing experiment drivers stay `Sequential`.

use crate::fsm::{run_fsm_with_llm, FsmConfig, FsmResult};
use crate::llm::{Completion, LlmConfig, SyntheticLlm, VectorizePrompt};
use lv_cir::ast::Function;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a completion batch draws its random numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GenerationMode {
    /// The legacy path: one shared stateful sampler walks the cells in
    /// order. Byte-identical to all earlier releases; inherently serial.
    #[default]
    Sequential,
    /// The overlap-ready path: every `(kernel, completion)` cell gets its
    /// own model seeded by [`derive_cell_seed`], so cells can be produced
    /// on any number of threads in any order with identical output.
    Seeded,
}

/// The SplitMix64 finalizer: a bijective avalanche mix on `u64` (same
/// constants as the `rand` shim's seed expansion).
#[inline]
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for the `(kernel, completion)` cell from a base
/// seed.
///
/// Injective in the cell for a fixed base: the coordinates pack injectively
/// into one `u64` (both indices are far below `2^32` in practice), the pack
/// is XORed into a finalized base, and the SplitMix64 finalizer applied on
/// top is a bijection — so distinct cells can never collide.
pub fn derive_cell_seed(base_seed: u64, kernel: usize, completion: usize) -> u64 {
    let cell = ((kernel as u64) << 32) | (completion as u64 & 0xFFFF_FFFF);
    splitmix_finalize(splitmix_finalize(base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15)) ^ cell)
}

/// Samples the single `(kernel, completion)` cell of a seeded batch: a
/// fresh model seeded with [`derive_cell_seed`] answers one prompt.
///
/// This is the unit of work generator threads parallelize over; calling it
/// for every cell in any order reproduces
/// [`sample_completion_batch_seeded`] exactly.
pub fn sample_completion_cell(
    scalar: &Function,
    llm_config: &LlmConfig,
    kernel: usize,
    completion: usize,
) -> Completion {
    let mut llm = SyntheticLlm::new(LlmConfig {
        seed: derive_cell_seed(llm_config.seed, kernel, completion),
        ..llm_config.clone()
    });
    llm.complete(&VectorizePrompt::new(scalar.clone()))
}

/// `k` completions per kernel, sampled without feedback (Table 2 / Figure 5
/// style generation).
#[derive(Debug, Clone)]
pub struct CompletionBatch {
    /// `completions[i][j]` is the `j`-th completion for the `i`-th kernel.
    pub completions: Vec<Vec<Completion>>,
}

impl CompletionBatch {
    /// Flattens the batch into `(kernel index, completion index, completion)`
    /// jobs in generation order, borrowing the completions.
    pub fn jobs(&self) -> impl Iterator<Item = (usize, usize, &Completion)> {
        self.completions
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, c)| (i, j, c)))
    }

    /// Flattens the batch into owned `(kernel index, completion index,
    /// completion)` jobs in generation order, consuming the batch — the
    /// queue-feeding path, which hands each candidate to the engine without
    /// cloning it.
    pub fn into_jobs(self) -> impl Iterator<Item = (usize, usize, Completion)> {
        self.completions
            .into_iter()
            .enumerate()
            .flat_map(|(i, row)| row.into_iter().enumerate().map(move |(j, c)| (i, j, c)))
    }
}

/// Samples `k` feedback-free completions for every kernel from a single
/// model instance, preserving the sequential sampling order — the
/// [`GenerationMode::Sequential`] path, byte-identical to earlier releases.
pub fn sample_completion_batch(
    scalars: &[Function],
    llm_config: &LlmConfig,
    k: usize,
) -> CompletionBatch {
    let mut llm = SyntheticLlm::new(llm_config.clone());
    let completions = scalars
        .iter()
        .map(|scalar| {
            let prompt = VectorizePrompt::new(scalar.clone());
            (0..k).map(|_| llm.complete(&prompt)).collect()
        })
        .collect();
    CompletionBatch { completions }
}

/// Samples `k` feedback-free completions for every kernel with per-cell
/// derived seeds on `threads` generator threads — the
/// [`GenerationMode::Seeded`] path.
///
/// The output is a pure function of `(scalars, llm_config.seed, k)`:
/// identical at every thread count (pinned at 1/2/8 by the pipeline
/// property tests), because each cell's draws come from its own
/// [`derive_cell_seed`]ed model and threads only race over *which worker*
/// computes a cell, never over what the cell contains. `threads == 0` uses
/// one worker per available CPU.
pub fn sample_completion_batch_seeded(
    scalars: &[Function],
    llm_config: &LlmConfig,
    k: usize,
    threads: usize,
) -> CompletionBatch {
    let cells = scalars.len().saturating_mul(k);
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = (if threads == 0 { hw } else { threads }).clamp(1, cells.max(1));
    if threads <= 1 || cells == 0 {
        let completions = scalars
            .iter()
            .enumerate()
            .map(|(i, scalar)| {
                (0..k)
                    .map(|j| sample_completion_cell(scalar, llm_config, i, j))
                    .collect()
            })
            .collect();
        return CompletionBatch { completions };
    }
    let slots: Vec<Mutex<Option<Completion>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let cell = cursor.fetch_add(1, Ordering::Relaxed);
                if cell >= cells {
                    break;
                }
                let (i, j) = (cell / k, cell % k);
                let completion = sample_completion_cell(&scalars[i], llm_config, i, j);
                *slots[cell].lock().unwrap() = Some(completion);
            });
        }
    });
    let mut flat = slots.into_iter().map(|slot| {
        slot.into_inner()
            .unwrap()
            .expect("every cell index was claimed by a generator")
    });
    let completions = (0..scalars.len())
        .map(|_| (0..k).map(|_| flat.next().unwrap()).collect())
        .collect();
    CompletionBatch { completions }
}

/// Samples a completion batch in the requested [`GenerationMode`].
///
/// `threads` only applies to [`GenerationMode::Seeded`]; the sequential
/// mode is inherently single-threaded.
pub fn sample_completion_batch_with(
    scalars: &[Function],
    llm_config: &LlmConfig,
    k: usize,
    mode: GenerationMode,
    threads: usize,
) -> CompletionBatch {
    match mode {
        GenerationMode::Sequential => sample_completion_batch(scalars, llm_config, k),
        GenerationMode::Seeded => sample_completion_batch_seeded(scalars, llm_config, k, threads),
    }
}

/// Runs the repair FSM once per kernel through a shared model instance,
/// returning one [`FsmResult`] per kernel in order. The results' plausible
/// candidates are what the engine's symbolic cascade consumes.
pub fn fsm_candidate_batch(
    scalars: &[Function],
    fsm_config: &FsmConfig,
    llm: &mut SyntheticLlm,
) -> Vec<FsmResult> {
    scalars
        .iter()
        .map(|scalar| run_fsm_with_llm(scalar, fsm_config, llm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    fn scalars() -> Vec<Function> {
        [
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
            "void vag(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] * b[i]; } }",
        ]
        .iter()
        .map(|s| parse_function(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_sequential_sampling() {
        let config = LlmConfig::default();
        let batch = sample_completion_batch(&scalars(), &config, 3);

        let mut llm = SyntheticLlm::new(config);
        for (i, scalar) in scalars().iter().enumerate() {
            let prompt = VectorizePrompt::new(scalar.clone());
            for j in 0..3 {
                assert_eq!(
                    batch.completions[i][j].candidate,
                    llm.complete(&prompt).candidate,
                    "kernel {} completion {}",
                    i,
                    j
                );
            }
        }
    }

    #[test]
    fn jobs_iterate_in_generation_order() {
        let batch = sample_completion_batch(&scalars(), &LlmConfig::default(), 2);
        let order: Vec<(usize, usize)> = batch.jobs().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn into_jobs_matches_borrowing_jobs() {
        let batch = sample_completion_batch(&scalars(), &LlmConfig::default(), 2);
        let borrowed: Vec<(usize, usize, Function)> = batch
            .jobs()
            .map(|(i, j, c)| (i, j, c.candidate.clone()))
            .collect();
        let owned: Vec<(usize, usize, Function)> = batch
            .into_jobs()
            .map(|(i, j, c)| (i, j, c.candidate))
            .collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn seeded_batch_matches_cell_by_cell_sampling() {
        let config = LlmConfig::default();
        let batch = sample_completion_batch_seeded(&scalars(), &config, 3, 1);
        for (i, scalar) in scalars().iter().enumerate() {
            for j in 0..3 {
                assert_eq!(
                    batch.completions[i][j].candidate,
                    sample_completion_cell(scalar, &config, i, j).candidate,
                    "kernel {} completion {}",
                    i,
                    j
                );
            }
        }
    }

    #[test]
    fn seeded_batch_is_thread_count_invariant() {
        let config = LlmConfig::default();
        let reference = sample_completion_batch_seeded(&scalars(), &config, 4, 1);
        for threads in [2, 3, 8] {
            let parallel = sample_completion_batch_seeded(&scalars(), &config, 4, threads);
            for (i, (a, b)) in reference
                .completions
                .iter()
                .zip(&parallel.completions)
                .enumerate()
            {
                for (j, (x, y)) in a.iter().zip(b).enumerate() {
                    assert_eq!(
                        x.candidate, y.candidate,
                        "kernel {} completion {} differs at {} threads",
                        i, j, threads
                    );
                }
            }
        }
    }

    #[test]
    fn mode_dispatch_selects_the_right_path() {
        let config = LlmConfig::default();
        let sequential =
            sample_completion_batch_with(&scalars(), &config, 2, GenerationMode::Sequential, 4);
        let legacy = sample_completion_batch(&scalars(), &config, 2);
        for (a, b) in sequential.jobs().zip(legacy.jobs()) {
            assert_eq!(a.2.candidate, b.2.candidate);
        }
        let seeded =
            sample_completion_batch_with(&scalars(), &config, 2, GenerationMode::Seeded, 4);
        let reference = sample_completion_batch_seeded(&scalars(), &config, 2, 1);
        for (a, b) in seeded.jobs().zip(reference.jobs()) {
            assert_eq!(a.2.candidate, b.2.candidate);
        }
    }

    #[test]
    fn cell_seeds_are_distinct_across_a_dense_grid() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            for j in 0..64 {
                assert!(
                    seen.insert(derive_cell_seed(0xC0FFEE, i, j)),
                    "collision at cell ({}, {})",
                    i,
                    j
                );
            }
        }
    }

    #[test]
    fn fsm_batch_matches_sequential_runs() {
        let fsm_config = FsmConfig::default();
        let mut llm_a = SyntheticLlm::new(LlmConfig::default());
        let results = fsm_candidate_batch(&scalars(), &fsm_config, &mut llm_a);

        let mut llm_b = SyntheticLlm::new(LlmConfig::default());
        for (scalar, batched) in scalars().iter().zip(&results) {
            let solo = run_fsm_with_llm(scalar, &fsm_config, &mut llm_b);
            assert_eq!(solo.candidate, batched.candidate);
            assert_eq!(solo.attempts, batched.attempts);
        }
    }
}
