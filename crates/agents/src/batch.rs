//! Deterministic batch candidate generation feeding the verification engine.
//!
//! The synthetic LLM is a stateful, seeded sampler, so candidate generation
//! must stay sequential to be reproducible — one model instance walks the
//! kernels in order, exactly as the one-shot experiment drivers did. The
//! expensive part, verification, is what the engine parallelizes: these
//! helpers produce the full `(kernel × candidate)` job list up front so the
//! engine's work queue can fan it out across workers while verdicts remain
//! bit-identical to the sequential runs.

use crate::fsm::{run_fsm_with_llm, FsmConfig, FsmResult};
use crate::llm::{Completion, LlmConfig, SyntheticLlm, VectorizePrompt};
use lv_cir::ast::Function;

/// `k` completions per kernel, sampled without feedback (Table 2 / Figure 5
/// style generation).
#[derive(Debug, Clone)]
pub struct CompletionBatch {
    /// `completions[i][j]` is the `j`-th completion for the `i`-th kernel.
    pub completions: Vec<Vec<Completion>>,
}

impl CompletionBatch {
    /// Flattens the batch into `(kernel index, completion index, completion)`
    /// jobs in generation order.
    pub fn jobs(&self) -> impl Iterator<Item = (usize, usize, &Completion)> {
        self.completions
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, c)| (i, j, c)))
    }
}

/// Samples `k` feedback-free completions for every kernel from a single
/// model instance, preserving the sequential sampling order.
pub fn sample_completion_batch(
    scalars: &[Function],
    llm_config: &LlmConfig,
    k: usize,
) -> CompletionBatch {
    let mut llm = SyntheticLlm::new(llm_config.clone());
    let completions = scalars
        .iter()
        .map(|scalar| {
            let prompt = VectorizePrompt::new(scalar.clone());
            (0..k).map(|_| llm.complete(&prompt)).collect()
        })
        .collect();
    CompletionBatch { completions }
}

/// Runs the repair FSM once per kernel through a shared model instance,
/// returning one [`FsmResult`] per kernel in order. The results' plausible
/// candidates are what the engine's symbolic cascade consumes.
pub fn fsm_candidate_batch(
    scalars: &[Function],
    fsm_config: &FsmConfig,
    llm: &mut SyntheticLlm,
) -> Vec<FsmResult> {
    scalars
        .iter()
        .map(|scalar| run_fsm_with_llm(scalar, fsm_config, llm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    fn scalars() -> Vec<Function> {
        [
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
            "void vag(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] * b[i]; } }",
        ]
        .iter()
        .map(|s| parse_function(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_sequential_sampling() {
        let config = LlmConfig::default();
        let batch = sample_completion_batch(&scalars(), &config, 3);

        let mut llm = SyntheticLlm::new(config);
        for (i, scalar) in scalars().iter().enumerate() {
            let prompt = VectorizePrompt::new(scalar.clone());
            for j in 0..3 {
                assert_eq!(
                    batch.completions[i][j].candidate,
                    llm.complete(&prompt).candidate,
                    "kernel {} completion {}",
                    i,
                    j
                );
            }
        }
    }

    #[test]
    fn jobs_iterate_in_generation_order() {
        let batch = sample_completion_batch(&scalars(), &LlmConfig::default(), 2);
        let order: Vec<(usize, usize)> = batch.jobs().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn fsm_batch_matches_sequential_runs() {
        let fsm_config = FsmConfig::default();
        let mut llm_a = SyntheticLlm::new(LlmConfig::default());
        let results = fsm_candidate_batch(&scalars(), &fsm_config, &mut llm_a);

        let mut llm_b = SyntheticLlm::new(LlmConfig::default());
        for (scalar, batched) in scalars().iter().zip(&results) {
            let solo = run_fsm_with_llm(scalar, &fsm_config, &mut llm_b);
            assert_eq!(solo.candidate, batched.candidate);
            assert_eq!(solo.attempts, batched.attempts);
        }
    }
}
