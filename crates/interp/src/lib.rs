//! # lv-interp — concrete execution and checksum testing
//!
//! The paper's pipeline runs the scalar kernel and the LLM-generated
//! vectorized candidate on random inputs and compares the outputs
//! ("checksum-based testing", Section 2.1). This crate provides the
//! executable substrate for that step:
//!
//! * [`exec`] — a concrete interpreter for mini-C with a region-based memory
//!   model ([`run_function`]);
//! * [`memory`] — runtime values, pointers and per-array regions with
//!   out-of-bounds detection;
//! * [`error`] — undefined-behaviour events ([`UbKind`]) mirroring the UB
//!   classes that matter for vectorization correctness;
//! * [`checksum`] — the random-testing harness ([`checksum_test`]) that
//!   classifies candidates as `Plausible`, `NotEquivalent` or
//!   `CannotCompile`, exactly like Table 2 of the paper.
//!
//! # Examples
//!
//! ```
//! use lv_interp::{checksum_test, ChecksumConfig};
//! use lv_cir::parse_function;
//!
//! let scalar = parse_function(
//!     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
//! )?;
//! let report = checksum_test(&scalar, &scalar, &ChecksumConfig::default());
//! assert!(report.outcome.is_plausible());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod exec;
pub mod memory;

pub use checksum::{
    array_param_names_mismatch, checksum_test, ChecksumClass, ChecksumConfig, ChecksumFilter,
    ChecksumOutcome, ChecksumReport, Mismatch,
};
pub use error::{ExecError, UbEvent, UbKind};
pub use exec::{run_function, ArgBindings, ExecConfig, ExecReport, ExecResult};
pub use memory::{Memory, Pointer, RegionId, Value};
