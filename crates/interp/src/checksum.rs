//! Checksum-based testing (Section 2.1 of the paper).
//!
//! The harness initializes the input arrays randomly, executes the scalar
//! function and the vectorized candidate on identical copies of the inputs,
//! and compares the outputs. A candidate that fails to type check is
//! `CannotCompile`; a candidate whose outputs differ on any trial is
//! `NotEquivalent`; otherwise it is `Plausible` — the same three-way
//! classification as Table 2.

use crate::error::ExecError;
use crate::exec::{run_function, ArgBindings, ExecConfig};
use lv_cir::ast::{Function, Type};
use lv_cir::typecheck::type_check;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Configuration for the checksum harness.
#[derive(Debug, Clone)]
pub struct ChecksumConfig {
    /// The loop upper bound supplied for every scalar `int` parameter
    /// (unless overridden). Deliberately *not* a multiple of the vector
    /// width so that missing scalar epilogues are caught.
    pub n: i32,
    /// Number of random trials with different array contents.
    pub trials: u32,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
    /// Extra elements allocated past `n` in every array. The slack is
    /// initialized identically for both runs and compared afterwards, so a
    /// candidate that overruns the logical length is caught either by the
    /// comparison or by the out-of-bounds detector.
    pub slack: usize,
    /// Range of random initial values, inclusive of the endpoints.
    pub value_range: (i32, i32),
    /// Per-parameter overrides for scalar arguments.
    pub scalar_overrides: HashMap<String, i32>,
    /// Execution limits.
    pub exec: ExecConfig,
}

impl Default for ChecksumConfig {
    fn default() -> Self {
        ChecksumConfig {
            n: 100,
            trials: 3,
            seed: 0x5eed,
            slack: 8,
            value_range: (-100, 100),
            scalar_overrides: HashMap::new(),
            exec: ExecConfig::default(),
        }
    }
}

impl ChecksumConfig {
    /// A stable 64-bit fingerprint of every field that can influence an
    /// outcome, folded into the engine-configuration hash that keys the
    /// persistent verdict cache. Overrides are hashed in sorted order so the
    /// fingerprint is independent of `HashMap` iteration order.
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = lv_cir::Fnv64::new();
        fnv.write_i64(i64::from(self.n));
        fnv.write_u64(u64::from(self.trials));
        fnv.write_u64(self.seed);
        fnv.write_u64(self.slack as u64);
        fnv.write_i64(i64::from(self.value_range.0));
        fnv.write_i64(i64::from(self.value_range.1));
        let mut overrides: Vec<(&String, &i32)> = self.scalar_overrides.iter().collect();
        overrides.sort();
        for (name, value) in overrides {
            fnv.write_str(name);
            fnv.write_i64(i64::from(*value));
        }
        fnv.write_u64(self.exec.max_steps);
        fnv.finish()
    }
}

/// Why a pair of programs was found not equivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Which array differs.
    pub array: String,
    /// First differing index.
    pub index: usize,
    /// Value produced by the scalar (reference) program.
    pub expected: i32,
    /// Value produced by the vectorized candidate.
    pub actual: i32,
    /// Trial number (0-based) on which the mismatch was found.
    pub trial: u32,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: expected {} but the vectorized code produced {} (trial {})",
            self.array, self.index, self.expected, self.actual, self.trial
        )
    }
}

/// The outcome of checksum-based testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChecksumOutcome {
    /// All trials produced identical outputs; the candidate is possibly
    /// correct and proceeds to symbolic verification.
    Plausible,
    /// Outputs differed, or the candidate hit fatal UB that the scalar
    /// program did not.
    NotEquivalent {
        /// First mismatch found, if the difference was a value difference.
        mismatch: Option<Mismatch>,
        /// Human-readable description (also used as agent feedback).
        reason: String,
    },
    /// The candidate does not type check ("cannot compile").
    CannotCompile {
        /// The compiler-style diagnostic.
        error: String,
    },
    /// The *scalar* program itself failed to execute; the test is unusable.
    ScalarExecutionFailed {
        /// The interpreter error.
        error: String,
    },
}

impl ChecksumOutcome {
    /// Returns `true` for the `Plausible` outcome.
    pub fn is_plausible(&self) -> bool {
        matches!(self, ChecksumOutcome::Plausible)
    }

    /// The payload-free classification of this outcome.
    pub fn class(&self) -> ChecksumClass {
        match self {
            ChecksumOutcome::Plausible => ChecksumClass::Plausible,
            ChecksumOutcome::NotEquivalent { .. } => ChecksumClass::NotEquivalent,
            ChecksumOutcome::CannotCompile { .. } => ChecksumClass::CannotCompile,
            ChecksumOutcome::ScalarExecutionFailed { .. } => ChecksumClass::ScalarFailed,
        }
    }
}

/// The four-way classification of a checksum run without its payload —
/// what Table 2 counts and what the batch engine records per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChecksumClass {
    /// All trials agreed; the candidate proceeds to symbolic verification.
    Plausible,
    /// A trial refuted the candidate.
    NotEquivalent,
    /// The candidate failed to type check.
    CannotCompile,
    /// The scalar reference itself failed, so the test says nothing.
    ScalarFailed,
}

/// The checksum filter of Algorithm 1 line 2 packaged as a reusable value,
/// so the verification engine can treat testing as just another strategy in
/// its cascade.
#[derive(Debug, Clone, Default)]
pub struct ChecksumFilter {
    /// Harness configuration shared by every job run through this filter.
    pub config: ChecksumConfig,
}

impl ChecksumFilter {
    /// A filter with the given harness configuration.
    pub fn new(config: ChecksumConfig) -> ChecksumFilter {
        ChecksumFilter { config }
    }

    /// Runs checksum testing of `candidate` against `scalar`.
    pub fn run(&self, scalar: &Function, candidate: &Function) -> ChecksumReport {
        checksum_test(scalar, candidate, &self.config)
    }
}

/// The full report of a checksum run, including the checksums themselves
/// (sums over the output arrays, which is what the TSVC harness prints).
#[derive(Debug, Clone)]
pub struct ChecksumReport {
    /// Classification of the candidate.
    pub outcome: ChecksumOutcome,
    /// Checksum (wrapping sum of all output array elements) of the scalar
    /// program on the last trial, when it ran successfully.
    pub scalar_checksum: Option<i64>,
    /// Checksum of the candidate on the last trial, when it ran successfully.
    pub vector_checksum: Option<i64>,
    /// Number of trials executed.
    pub trials_run: u32,
}

/// Runs checksum-based testing of `vectorized` against the reference
/// `scalar` kernel.
///
/// Both functions must take the same parameters (this is how the pipeline
/// constructs candidates); parameters present in only one of the two are
/// still bound, so mismatched signatures fail type checking or execution
/// rather than panicking.
pub fn checksum_test(
    scalar: &Function,
    vectorized: &Function,
    config: &ChecksumConfig,
) -> ChecksumReport {
    // "Compilation" of the candidate.
    if let Err(err) = type_check(vectorized) {
        return ChecksumReport {
            outcome: ChecksumOutcome::CannotCompile {
                error: err.to_string(),
            },
            scalar_checksum: None,
            vector_checksum: None,
            trials_run: 0,
        };
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scalar_checksum = None;
    let mut vector_checksum = None;

    for trial in 0..config.trials {
        let args = random_bindings(scalar, vectorized, config, &mut rng);

        let scalar_result = match run_function(scalar, &args, &config.exec) {
            Ok(r) => r,
            Err(err) => {
                return ChecksumReport {
                    outcome: ChecksumOutcome::ScalarExecutionFailed {
                        error: err.to_string(),
                    },
                    scalar_checksum,
                    vector_checksum,
                    trials_run: trial,
                }
            }
        };

        let vector_result = match run_function(vectorized, &args, &config.exec) {
            Ok(r) => r,
            Err(err) => {
                let reason = match &err {
                    ExecError::Ub(event) => format!(
                        "the vectorized code triggered {} that the scalar code does not",
                        event
                    ),
                    other => format!("the vectorized code failed to execute: {}", other),
                };
                return ChecksumReport {
                    outcome: ChecksumOutcome::NotEquivalent {
                        mismatch: None,
                        reason,
                    },
                    scalar_checksum,
                    vector_checksum,
                    trials_run: trial + 1,
                };
            }
        };

        scalar_checksum = Some(checksum_of(&scalar_result.arrays));
        vector_checksum = Some(checksum_of(&vector_result.arrays));

        // Compare arrays in sorted name order so the first reported mismatch
        // is deterministic (HashMap iteration order is not), keeping batched
        // engine runs byte-identical to one-shot runs.
        let mut names: Vec<&String> = scalar_result.arrays.keys().collect();
        names.sort();
        for name in names {
            let expected = &scalar_result.arrays[name];
            let Some(actual) = vector_result.arrays.get(name) else {
                continue;
            };
            if let Some(index) = expected.iter().zip(actual.iter()).position(|(a, b)| a != b) {
                let mismatch = Mismatch {
                    array: name.clone(),
                    index,
                    expected: expected[index],
                    actual: actual[index],
                    trial,
                };
                let reason = mismatch.to_string();
                return ChecksumReport {
                    outcome: ChecksumOutcome::NotEquivalent {
                        mismatch: Some(mismatch),
                        reason,
                    },
                    scalar_checksum,
                    vector_checksum,
                    trials_run: trial + 1,
                };
            }
        }
    }

    ChecksumReport {
        outcome: ChecksumOutcome::Plausible,
        scalar_checksum,
        vector_checksum,
        trials_run: config.trials,
    }
}

/// Returns `true` when the candidate's array (pointer-typed) parameter
/// *names* differ from the scalar's.
///
/// The harness binds arrays by parameter name (`random_bindings` keys its
/// map on names), so a candidate whose array parameters are renamed away
/// from the scalar's runs on *disjoint* arrays and passes the comparison
/// vacuously — refutation is left entirely to the symbolic stages. This
/// predicate lets callers surface that situation as telemetry (the engine
/// records it in its per-stage traces and logs a warning) without changing
/// any verdict; making the harness bind positionally or classify the
/// mismatch as `CannotCompile` is a planned behavior change (see ROADMAP).
///
/// Order is ignored — binding is by name, so a permutation of the same
/// names is harmless.
pub fn array_param_names_mismatch(scalar: &Function, candidate: &Function) -> bool {
    fn array_names(func: &Function) -> Vec<&str> {
        let mut names: Vec<&str> = func
            .params
            .iter()
            .filter(|p| matches!(p.ty, Type::Ptr(_)))
            .map(|p| p.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
    array_names(scalar) != array_names(candidate)
}

/// Builds a single set of random bindings that satisfies the parameters of
/// both functions.
fn random_bindings(
    scalar: &Function,
    vectorized: &Function,
    config: &ChecksumConfig,
    rng: &mut StdRng,
) -> ArgBindings {
    let mut args = ArgBindings::new();
    let len = config.n as usize + config.slack;
    let (lo, hi) = config.value_range;
    for func in [scalar, vectorized] {
        for param in &func.params {
            match &param.ty {
                Type::Int => {
                    let value = config
                        .scalar_overrides
                        .get(&param.name)
                        .copied()
                        .unwrap_or(config.n);
                    args.scalars.entry(param.name.clone()).or_insert(value);
                }
                Type::Ptr(_) => {
                    args.arrays
                        .entry(param.name.clone())
                        .or_insert_with(|| (0..len).map(|_| rng.gen_range(lo..=hi)).collect());
                }
                _ => {}
            }
        }
    }
    args
}

fn checksum_of(arrays: &HashMap<String, Vec<i32>>) -> i64 {
    let mut names: Vec<&String> = arrays.keys().collect();
    names.sort();
    let mut sum: i64 = 0;
    for name in names {
        for &v in &arrays[name] {
            sum = sum.wrapping_add(v as i64);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    const SCALAR: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";

    const VECTOR_OK: &str = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } for (; i < n; i++) { a[i] = b[i] + 1; } }";

    /// Missing the scalar epilogue: the last `n % 8` elements are never written.
    const VECTOR_NO_EPILOGUE: &str = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } }";

    /// Uses an unknown intrinsic, so it cannot compile.
    const VECTOR_BAD_CALL: &str =
        "void s000(int n, int *a, int *b) { __m256i x = _mm256_frobnicate(_mm256_set1_epi32(1)); }";

    fn cfg() -> ChecksumConfig {
        ChecksumConfig {
            trials: 2,
            ..ChecksumConfig::default()
        }
    }

    #[test]
    fn correct_candidate_is_plausible() {
        let scalar = parse_function(SCALAR).unwrap();
        let vector = parse_function(VECTOR_OK).unwrap();
        let report = checksum_test(&scalar, &vector, &cfg());
        assert!(report.outcome.is_plausible(), "{:?}", report.outcome);
        assert_eq!(report.scalar_checksum, report.vector_checksum);
        assert_eq!(report.trials_run, 2);
    }

    #[test]
    fn missing_epilogue_is_caught() {
        let scalar = parse_function(SCALAR).unwrap();
        let vector = parse_function(VECTOR_NO_EPILOGUE).unwrap();
        let report = checksum_test(&scalar, &vector, &cfg());
        match report.outcome {
            ChecksumOutcome::NotEquivalent { mismatch, .. } => {
                let m = mismatch.expect("value mismatch expected");
                assert_eq!(m.array, "a");
                assert!(
                    m.index >= 96,
                    "mismatch should be in the tail, got {}",
                    m.index
                );
            }
            other => panic!("expected NotEquivalent, got {:?}", other),
        }
    }

    #[test]
    fn unknown_intrinsic_cannot_compile() {
        let scalar = parse_function(SCALAR).unwrap();
        let vector = parse_function(VECTOR_BAD_CALL).unwrap();
        let report = checksum_test(&scalar, &vector, &cfg());
        assert!(matches!(
            report.outcome,
            ChecksumOutcome::CannotCompile { .. }
        ));
    }

    #[test]
    fn candidate_ub_is_not_equivalent() {
        let scalar = parse_function(SCALAR).unwrap();
        // Reads 8 lanes starting at n-1: out of bounds beyond the slack.
        let vector = parse_function(
            "void s000(int n, int *a, int *b) { __m256i x = _mm256_loadu_si256((__m256i *)&b[n + 4]); _mm256_storeu_si256((__m256i *)&a[0], x); }",
        )
        .unwrap();
        let report = checksum_test(&scalar, &vector, &cfg());
        match report.outcome {
            ChecksumOutcome::NotEquivalent { reason, .. } => {
                assert!(reason.contains("out-of-bounds"), "{}", reason);
            }
            other => panic!("expected NotEquivalent, got {:?}", other),
        }
    }

    #[test]
    fn identical_functions_are_plausible() {
        let scalar = parse_function(SCALAR).unwrap();
        let report = checksum_test(&scalar, &scalar, &cfg());
        assert!(report.outcome.is_plausible());
    }

    #[test]
    fn scalar_overrides_are_applied() {
        let scalar = parse_function(
            "void f(int n, int m, int *a) { for (int i = 0; i < n; i++) { a[i] = m; } }",
        )
        .unwrap();
        let mut config = cfg();
        config.scalar_overrides.insert("m".into(), 7);
        let report = checksum_test(&scalar, &scalar, &config);
        assert!(report.outcome.is_plausible());
    }
}
