//! Runtime values and the region-based memory model.
//!
//! Every array parameter of a kernel is bound to its own *region*, mirroring
//! the "arrays allocated in different memory regions" modelling the paper
//! uses to communicate non-aliasing to Alive2 (Section 3.1). A pointer value
//! is a `(region, element offset)` pair; pointer arithmetic moves the offset
//! and can never jump between regions.

use crate::error::{ExecError, UbEvent, UbKind};
use lv_simd::{I32x8, LANES};
use std::collections::HashMap;
use std::fmt;

/// Identifies a memory region (one per array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub usize);

/// A pointer value: a region plus an element offset (may be negative or past
/// the end while it is only being *computed*; bounds are checked on access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pointer {
    /// The region this pointer points into.
    pub region: RegionId,
    /// Offset in `i32` elements from the start of the region.
    pub offset: i64,
}

impl Pointer {
    /// Returns the pointer moved by `delta` elements.
    pub fn offset_by(self, delta: i64) -> Pointer {
        Pointer {
            region: self.region,
            offset: self.offset + delta,
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A scalar `int`.
    Int(i32),
    /// A 256-bit vector.
    Vec(I32x8),
    /// A pointer into an array region.
    Ptr(Pointer),
}

impl Value {
    /// The scalar payload, or a type-mismatch error.
    pub fn as_int(self) -> Result<i32, ExecError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(ExecError::TypeMismatch(format!(
                "expected int, found {}",
                other
            ))),
        }
    }

    /// The vector payload, or a type-mismatch error.
    pub fn as_vec(self) -> Result<I32x8, ExecError> {
        match self {
            Value::Vec(v) => Ok(v),
            other => Err(ExecError::TypeMismatch(format!(
                "expected __m256i, found {}",
                other
            ))),
        }
    }

    /// The pointer payload, or a type-mismatch error.
    pub fn as_ptr(self) -> Result<Pointer, ExecError> {
        match self {
            Value::Ptr(p) => Ok(p),
            other => Err(ExecError::TypeMismatch(format!(
                "expected pointer, found {}",
                other
            ))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{}", v),
            Value::Vec(v) => write!(f, "{}", v),
            Value::Ptr(p) => write!(f, "&region{}[{}]", p.region.0, p.offset),
        }
    }
}

/// The memory: a set of named `i32` regions plus the log of UB events.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    regions: Vec<RegionData>,
    by_name: HashMap<String, RegionId>,
    /// Undefined-behaviour events recorded so far (fatal ones also abort).
    pub ub_events: Vec<UbEvent>,
}

#[derive(Debug, Clone)]
struct RegionData {
    name: String,
    data: Vec<i32>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Allocates a region named after an array parameter and returns its id.
    /// Re-using a name returns a fresh region; the latest allocation wins for
    /// name lookup.
    pub fn alloc_region(&mut self, name: &str, data: Vec<i32>) -> RegionId {
        let id = RegionId(self.regions.len());
        self.regions.push(RegionData {
            name: name.to_string(),
            data,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a region id by array name.
    pub fn region_by_name(&self, name: &str) -> Option<RegionId> {
        self.by_name.get(name).copied()
    }

    /// The name a region was allocated under.
    pub fn region_name(&self, id: RegionId) -> &str {
        &self.regions[id.0].name
    }

    /// The length (in elements) of a region.
    pub fn region_len(&self, id: RegionId) -> usize {
        self.regions[id.0].data.len()
    }

    /// A read-only view of a region's contents.
    pub fn region_data(&self, id: RegionId) -> &[i32] {
        &self.regions[id.0].data
    }

    /// Names of all regions in allocation order.
    pub fn region_names(&self) -> Vec<&str> {
        self.regions.iter().map(|r| r.name.as_str()).collect()
    }

    fn check_bounds(&mut self, ptr: Pointer, len: usize, write: bool) -> Result<usize, ExecError> {
        let region_len = self.region_len(ptr.region);
        let start = ptr.offset;
        let end = ptr.offset + len as i64;
        if start < 0 || end > region_len as i64 {
            let kind = if write {
                UbKind::OobWrite
            } else {
                UbKind::OobRead
            };
            let event = UbEvent {
                kind,
                detail: format!(
                    "{}[{}..{}] with region of length {}",
                    self.region_name(ptr.region),
                    start,
                    end,
                    region_len
                ),
            };
            self.ub_events.push(event.clone());
            return Err(ExecError::Ub(event));
        }
        Ok(start as usize)
    }

    /// Reads one element.
    ///
    /// # Errors
    ///
    /// Returns a fatal [`ExecError::Ub`] on out-of-bounds access.
    pub fn read(&mut self, ptr: Pointer) -> Result<i32, ExecError> {
        let idx = self.check_bounds(ptr, 1, false)?;
        Ok(self.regions[ptr.region.0].data[idx])
    }

    /// Writes one element.
    ///
    /// # Errors
    ///
    /// Returns a fatal [`ExecError::Ub`] on out-of-bounds access.
    pub fn write(&mut self, ptr: Pointer, value: i32) -> Result<(), ExecError> {
        let idx = self.check_bounds(ptr, 1, true)?;
        self.regions[ptr.region.0].data[idx] = value;
        Ok(())
    }

    /// Reads eight contiguous elements (`_mm256_loadu_si256`).
    ///
    /// # Errors
    ///
    /// Returns a fatal [`ExecError::Ub`] if any lane is out of bounds.
    pub fn read_vector(&mut self, ptr: Pointer) -> Result<I32x8, ExecError> {
        let idx = self.check_bounds(ptr, LANES, false)?;
        Ok(I32x8::load(
            &self.regions[ptr.region.0].data[idx..idx + LANES],
        ))
    }

    /// Writes eight contiguous elements (`_mm256_storeu_si256`).
    ///
    /// # Errors
    ///
    /// Returns a fatal [`ExecError::Ub`] if any lane is out of bounds.
    pub fn write_vector(&mut self, ptr: Pointer, value: I32x8) -> Result<(), ExecError> {
        let idx = self.check_bounds(ptr, LANES, true)?;
        value.store(&mut self.regions[ptr.region.0].data[idx..idx + LANES]);
        Ok(())
    }

    /// Masked load (`_mm256_maskload_epi32`): lanes whose mask MSB is clear
    /// read as zero and are *not* bounds-checked, exactly like hardware.
    ///
    /// # Errors
    ///
    /// Returns a fatal [`ExecError::Ub`] if an *enabled* lane is out of bounds.
    pub fn masked_read_vector(&mut self, ptr: Pointer, mask: I32x8) -> Result<I32x8, ExecError> {
        let mut lanes = [0i32; LANES];
        for (i, slot) in lanes.iter_mut().enumerate() {
            if mask.lanes()[i] < 0 {
                *slot = self.read(ptr.offset_by(i as i64))?;
            }
        }
        Ok(I32x8::from_lanes(lanes))
    }

    /// Masked store (`_mm256_maskstore_epi32`): only lanes with the mask MSB
    /// set are written or bounds-checked.
    ///
    /// # Errors
    ///
    /// Returns a fatal [`ExecError::Ub`] if an *enabled* lane is out of bounds.
    pub fn masked_write_vector(
        &mut self,
        ptr: Pointer,
        mask: I32x8,
        value: I32x8,
    ) -> Result<(), ExecError> {
        for i in 0..LANES {
            if mask.lanes()[i] < 0 {
                self.write(ptr.offset_by(i as i64), value.lanes()[i])?;
            }
        }
        Ok(())
    }

    /// Records a non-fatal UB event (signed overflow).
    pub fn record_overflow(&mut self, detail: String) {
        self.ub_events.push(UbEvent {
            kind: UbKind::SignedOverflow,
            detail,
        });
    }

    /// Returns `true` if any event of the given kind was recorded.
    pub fn has_ub(&self, kind: UbKind) -> bool {
        self.ub_events.iter().any(|e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_lookup() {
        let mut mem = Memory::new();
        let a = mem.alloc_region("a", vec![1, 2, 3]);
        let b = mem.alloc_region("b", vec![4, 5]);
        assert_ne!(a, b);
        assert_eq!(mem.region_by_name("a"), Some(a));
        assert_eq!(mem.region_len(b), 2);
        assert_eq!(mem.region_names(), vec!["a", "b"]);
    }

    #[test]
    fn scalar_read_write() {
        let mut mem = Memory::new();
        let a = mem.alloc_region("a", vec![0; 4]);
        let p = Pointer {
            region: a,
            offset: 2,
        };
        mem.write(p, 42).unwrap();
        assert_eq!(mem.read(p).unwrap(), 42);
        assert_eq!(mem.region_data(a), &[0, 0, 42, 0]);
    }

    #[test]
    fn out_of_bounds_is_fatal_and_recorded() {
        let mut mem = Memory::new();
        let a = mem.alloc_region("a", vec![0; 4]);
        let p = Pointer {
            region: a,
            offset: 4,
        };
        assert!(matches!(mem.read(p), Err(ExecError::Ub(_))));
        assert!(mem.has_ub(UbKind::OobRead));
        let p = Pointer {
            region: a,
            offset: -1,
        };
        assert!(matches!(mem.write(p, 1), Err(ExecError::Ub(_))));
        assert!(mem.has_ub(UbKind::OobWrite));
    }

    #[test]
    fn vector_read_write() {
        let mut mem = Memory::new();
        let a = mem.alloc_region("a", (0..16).collect());
        let p = Pointer {
            region: a,
            offset: 3,
        };
        let v = mem.read_vector(p).unwrap();
        assert_eq!(v.lanes(), [3, 4, 5, 6, 7, 8, 9, 10]);
        mem.write_vector(p, I32x8::splat(-1)).unwrap();
        assert_eq!(mem.region_data(a)[3], -1);
        assert_eq!(mem.region_data(a)[10], -1);
        assert_eq!(mem.region_data(a)[11], 11);
        // Partially out-of-bounds vector access is UB.
        let p = Pointer {
            region: a,
            offset: 9,
        };
        assert!(mem.read_vector(p).is_err());
    }

    #[test]
    fn masked_access_skips_disabled_lanes() {
        let mut mem = Memory::new();
        let a = mem.alloc_region("a", vec![1, 2, 3, 4]);
        let p = Pointer {
            region: a,
            offset: 0,
        };
        // Only the first four lanes are enabled, so reading 8 lanes from a
        // 4-element region is fine.
        let mask = I32x8::from_lanes([-1, -1, -1, -1, 0, 0, 0, 0]);
        let v = mem.masked_read_vector(p, mask).unwrap();
        assert_eq!(v.lanes(), [1, 2, 3, 4, 0, 0, 0, 0]);
        mem.masked_write_vector(p, mask, I32x8::splat(9)).unwrap();
        assert_eq!(mem.region_data(a), &[9, 9, 9, 9]);
        // Enabling an out-of-bounds lane is UB.
        let bad_mask = I32x8::splat(-1);
        assert!(mem.masked_read_vector(p, bad_mask).is_err());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert!(Value::Int(3).as_vec().is_err());
        assert!(Value::Vec(I32x8::zero()).as_int().is_err());
        let p = Pointer {
            region: RegionId(0),
            offset: 1,
        };
        assert_eq!(Value::Ptr(p).as_ptr().unwrap(), p);
        assert_eq!(p.offset_by(3).offset, 4);
    }
}
