//! The concrete interpreter for mini-C functions.
//!
//! This is the reproduction's stand-in for "compile with Clang and run": it
//! executes both the scalar kernel and the vectorized candidate on concrete
//! inputs so that the checksum harness can compare their observable effects
//! (the final contents of the array arguments).

use crate::error::{ExecError, UbEvent, UbKind};
use crate::memory::{Memory, Pointer, Value};
use lv_cir::ast::{AssignOp, BinOp, Block, Expr, Function, Stmt, Type, UnOp};
use lv_simd::{eval_intrinsic, SimdArg, SimdValue};
use std::collections::HashMap;

/// Configuration for a single execution.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum number of executed statements/loop iterations before the run
    /// is aborted with [`ExecError::StepLimitExceeded`].
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 20_000_000,
        }
    }
}

/// Concrete argument bindings for a kernel invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArgBindings {
    /// Values for scalar `int` parameters.
    pub scalars: HashMap<String, i32>,
    /// Initial contents for array (`int *`) parameters.
    pub arrays: HashMap<String, Vec<i32>>,
}

impl ArgBindings {
    /// Creates an empty binding set.
    pub fn new() -> ArgBindings {
        ArgBindings::default()
    }

    /// Sets a scalar argument (builder style).
    pub fn scalar(mut self, name: impl Into<String>, value: i32) -> ArgBindings {
        self.scalars.insert(name.into(), value);
        self
    }

    /// Sets an array argument (builder style).
    pub fn array(mut self, name: impl Into<String>, data: Vec<i32>) -> ArgBindings {
        self.arrays.insert(name.into(), data);
        self
    }
}

/// What the interpreter observed during a run.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Number of statements / loop iterations executed.
    pub steps: u64,
    /// All recorded UB events (fatal ones also produce an error).
    pub ub_events: Vec<UbEvent>,
}

impl ExecReport {
    /// Returns `true` if any *non-fatal* UB (signed overflow) was recorded.
    pub fn had_signed_overflow(&self) -> bool {
        self.ub_events
            .iter()
            .any(|e| e.kind == UbKind::SignedOverflow)
    }
}

/// The result of a successful run: the final array contents plus the report.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Final contents of every array argument, keyed by parameter name.
    pub arrays: HashMap<String, Vec<i32>>,
    /// Final values of scalar locals and parameters that are still in scope
    /// at function exit (parameters only; loop locals are discarded).
    pub scalars: HashMap<String, i32>,
    /// Execution statistics and UB log.
    pub report: ExecReport,
}

/// Runs a kernel on the given argument bindings.
///
/// # Errors
///
/// Returns an [`ExecError`] on fatal undefined behaviour (out-of-bounds
/// access, division by zero, out-of-range shifts), on missing argument
/// bindings, on runaway loops exceeding the step budget, and on dynamic type
/// mismatches that indicate the program would not have type checked.
pub fn run_function(
    func: &Function,
    args: &ArgBindings,
    config: &ExecConfig,
) -> Result<ExecResult, ExecError> {
    let mut interp = Interp::new(func, args, config)?;
    let flow = interp.exec_block(&func.body)?;
    if let Flow::Goto(label) = flow {
        return Err(ExecError::MissingLabel(label));
    }
    Ok(interp.finish(func))
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return,
    Goto(String),
}

struct Interp<'a> {
    memory: Memory,
    scopes: Vec<HashMap<String, Value>>,
    steps: u64,
    config: &'a ExecConfig,
}

impl<'a> Interp<'a> {
    fn new(func: &Function, args: &ArgBindings, config: &'a ExecConfig) -> Result<Self, ExecError> {
        let mut memory = Memory::new();
        let mut globals = HashMap::new();
        for param in &func.params {
            match &param.ty {
                Type::Int => {
                    let value = args
                        .scalars
                        .get(&param.name)
                        .copied()
                        .ok_or_else(|| ExecError::MissingArgument(param.name.clone()))?;
                    globals.insert(param.name.clone(), Value::Int(value));
                }
                Type::Ptr(_) => {
                    let data = args
                        .arrays
                        .get(&param.name)
                        .cloned()
                        .ok_or_else(|| ExecError::MissingArgument(param.name.clone()))?;
                    let region = memory.alloc_region(&param.name, data);
                    globals.insert(
                        param.name.clone(),
                        Value::Ptr(Pointer { region, offset: 0 }),
                    );
                }
                other => {
                    return Err(ExecError::TypeMismatch(format!(
                        "parameter `{}` has unsupported type {}",
                        param.name, other
                    )))
                }
            }
        }
        Ok(Interp {
            memory,
            scopes: vec![globals],
            steps: 0,
            config,
        })
    }

    fn finish(mut self, func: &Function) -> ExecResult {
        let mut arrays = HashMap::new();
        for param in &func.params {
            if param.ty.is_ptr() {
                if let Some(region) = self.memory.region_by_name(&param.name) {
                    arrays.insert(param.name.clone(), self.memory.region_data(region).to_vec());
                }
            }
        }
        let mut scalars = HashMap::new();
        if let Some(globals) = self.scopes.first() {
            for (name, value) in globals {
                if let Value::Int(v) = value {
                    scalars.insert(name.clone(), *v);
                }
            }
        }
        ExecResult {
            arrays,
            scalars,
            report: ExecReport {
                steps: self.steps,
                ub_events: std::mem::take(&mut self.memory.ub_events),
            },
        }
    }

    fn tick(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            return Err(ExecError::StepLimitExceeded {
                limit: self.config.max_steps,
            });
        }
        Ok(())
    }

    // ---- environment ------------------------------------------------------

    fn declare(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), value);
    }

    fn lookup(&self, name: &str) -> Result<Value, ExecError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name).copied())
            .ok_or_else(|| ExecError::UnboundVariable(name.to_string()))
    }

    fn assign_var(&mut self, name: &str, value: Value) -> Result<(), ExecError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        Err(ExecError::UnboundVariable(name.to_string()))
    }

    // ---- statements ---------------------------------------------------------

    fn exec_block(&mut self, block: &Block) -> Result<Flow, ExecError> {
        self.scopes.push(HashMap::new());
        let result = self.exec_block_inner(block);
        self.scopes.pop();
        result
    }

    fn exec_block_inner(&mut self, block: &Block) -> Result<Flow, ExecError> {
        let mut idx = 0usize;
        while idx < block.stmts.len() {
            let flow = self.exec_stmt(&block.stmts[idx])?;
            match flow {
                Flow::Normal => idx += 1,
                Flow::Goto(label) => {
                    // Look for the label at this block level; if present jump
                    // there, otherwise propagate to the enclosing block.
                    match block
                        .stmts
                        .iter()
                        .position(|s| matches!(s, Stmt::Label(l) if *l == label))
                    {
                        Some(target) => idx = target + 1,
                        None => return Ok(Flow::Goto(label)),
                    }
                }
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, ExecError> {
        self.tick()?;
        match stmt {
            Stmt::Decl { ty, name, init } => {
                let value = match init {
                    Some(init) => self.eval(init)?,
                    None => default_value(ty)?,
                };
                self.declare(name, value);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond)?.as_int()?;
                if c != 0 {
                    self.exec_block(then_branch)
                } else if let Some(else_branch) = else_branch {
                    self.exec_block(else_branch)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let result = self.exec_for(init.as_deref(), cond.as_ref(), step.as_ref(), body);
                self.scopes.pop();
                result
            }
            Stmt::While { cond, body } => {
                loop {
                    self.tick()?;
                    if self.eval(cond)?.as_int()? == 0 {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(_) => Ok(Flow::Return),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Goto(label) => Ok(Flow::Goto(label.clone())),
            Stmt::Label(_) | Stmt::Empty => Ok(Flow::Normal),
            Stmt::Block(b) => self.exec_block(b),
        }
    }

    fn exec_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Block,
    ) -> Result<Flow, ExecError> {
        if let Some(init) = init {
            match self.exec_stmt(init)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        loop {
            self.tick()?;
            if let Some(cond) = cond {
                if self.eval(cond)?.as_int()? == 0 {
                    break;
                }
            }
            match self.exec_block(body)? {
                Flow::Normal | Flow::Continue => {}
                Flow::Break => break,
                other => return Ok(other),
            }
            if let Some(step) = step {
                self.eval(step)?;
            }
        }
        Ok(Flow::Normal)
    }

    // ---- expressions ---------------------------------------------------------

    fn eval(&mut self, expr: &Expr) -> Result<Value, ExecError> {
        match expr {
            Expr::IntLit(v) => Ok(Value::Int(*v as i32)),
            Expr::Var(name) => self.lookup(name),
            Expr::Index { base, index } => {
                let ptr = self.eval(base)?.as_ptr()?;
                let idx = self.eval(index)?.as_int()?;
                Ok(Value::Int(self.memory.read(ptr.offset_by(idx as i64))?))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?.as_int()?;
                let out = match op {
                    UnOp::Neg => {
                        if v == i32::MIN {
                            self.memory.record_overflow(format!("negation of {}", v));
                        }
                        v.wrapping_neg()
                    }
                    UnOp::Not => i32::from(v == 0),
                    UnOp::BitNot => !v,
                };
                Ok(Value::Int(out))
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::Assign { op, target, value } => self.eval_assign(*op, target, value),
            Expr::Call { callee, args } => self.eval_call(callee, args),
            Expr::Cast { ty, expr } => {
                let v = self.eval(expr)?;
                match (ty, v) {
                    (Type::Ptr(_), Value::Ptr(p)) => Ok(Value::Ptr(p)),
                    (Type::Int, Value::Int(i)) => Ok(Value::Int(i)),
                    (ty, v) => Err(ExecError::TypeMismatch(format!(
                        "cannot cast {} to {}",
                        v, ty
                    ))),
                }
            }
            Expr::AddrOf(inner) => match inner.as_ref() {
                Expr::Index { base, index } => {
                    let ptr = self.eval(base)?.as_ptr()?;
                    let idx = self.eval(index)?.as_int()?;
                    Ok(Value::Ptr(ptr.offset_by(idx as i64)))
                }
                Expr::Var(name) => {
                    // `&a` where `a` is already a pointer: TSVC code never
                    // takes the address of a scalar, so treat this as the
                    // pointer value itself.
                    let v = self.lookup(name)?;
                    match v {
                        Value::Ptr(p) => Ok(Value::Ptr(p)),
                        other => Err(ExecError::TypeMismatch(format!(
                            "cannot take the address of scalar `{}` = {}",
                            name, other
                        ))),
                    }
                }
                other => Err(ExecError::TypeMismatch(format!(
                    "unsupported address-of operand {:?}",
                    other
                ))),
            },
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if self.eval(cond)?.as_int()? != 0 {
                    self.eval(then_expr)
                } else {
                    self.eval(else_expr)
                }
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, ExecError> {
        // Short-circuit operators evaluate the right operand lazily.
        if op == BinOp::And {
            let l = self.eval(lhs)?.as_int()?;
            if l == 0 {
                return Ok(Value::Int(0));
            }
            let r = self.eval(rhs)?.as_int()?;
            return Ok(Value::Int(i32::from(r != 0)));
        }
        if op == BinOp::Or {
            let l = self.eval(lhs)?.as_int()?;
            if l != 0 {
                return Ok(Value::Int(1));
            }
            let r = self.eval(rhs)?.as_int()?;
            return Ok(Value::Int(i32::from(r != 0)));
        }

        let lv = self.eval(lhs)?;
        let rv = self.eval(rhs)?;
        // Pointer arithmetic.
        match (lv, rv, op) {
            (Value::Ptr(p), Value::Int(i), BinOp::Add) => {
                return Ok(Value::Ptr(p.offset_by(i as i64)))
            }
            (Value::Int(i), Value::Ptr(p), BinOp::Add) => {
                return Ok(Value::Ptr(p.offset_by(i as i64)))
            }
            (Value::Ptr(p), Value::Int(i), BinOp::Sub) => {
                return Ok(Value::Ptr(p.offset_by(-(i as i64))))
            }
            _ => {}
        }
        let l = lv.as_int()?;
        let r = rv.as_int()?;
        let out = match op {
            BinOp::Add => self.arith(l, r, i32::checked_add, i32::wrapping_add, "+"),
            BinOp::Sub => self.arith(l, r, i32::checked_sub, i32::wrapping_sub, "-"),
            BinOp::Mul => self.arith(l, r, i32::checked_mul, i32::wrapping_mul, "*"),
            BinOp::Div | BinOp::Rem => {
                if r == 0 {
                    let event = UbEvent {
                        kind: UbKind::DivByZero,
                        detail: format!("{} / {}", l, r),
                    };
                    self.memory.ub_events.push(event.clone());
                    return Err(ExecError::Ub(event));
                }
                if l == i32::MIN && r == -1 {
                    let event = UbEvent {
                        kind: UbKind::DivOverflow,
                        detail: format!("{} / {}", l, r),
                    };
                    self.memory.ub_events.push(event.clone());
                    return Err(ExecError::Ub(event));
                }
                if op == BinOp::Div {
                    l / r
                } else {
                    l % r
                }
            }
            BinOp::Lt => i32::from(l < r),
            BinOp::Le => i32::from(l <= r),
            BinOp::Gt => i32::from(l > r),
            BinOp::Ge => i32::from(l >= r),
            BinOp::Eq => i32::from(l == r),
            BinOp::Ne => i32::from(l != r),
            BinOp::BitAnd => l & r,
            BinOp::BitOr => l | r,
            BinOp::BitXor => l ^ r,
            BinOp::Shl | BinOp::Shr => {
                if !(0..32).contains(&r) {
                    let event = UbEvent {
                        kind: UbKind::ShiftOutOfRange,
                        detail: format!("shift by {}", r),
                    };
                    self.memory.ub_events.push(event.clone());
                    return Err(ExecError::Ub(event));
                }
                if op == BinOp::Shl {
                    ((l as u32) << r) as i32
                } else {
                    l >> r
                }
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        };
        Ok(Value::Int(out))
    }

    fn arith(
        &mut self,
        l: i32,
        r: i32,
        checked: impl Fn(i32, i32) -> Option<i32>,
        wrapping: impl Fn(i32, i32) -> i32,
        symbol: &str,
    ) -> i32 {
        match checked(l, r) {
            Some(v) => v,
            None => {
                self.memory
                    .record_overflow(format!("{} {} {}", l, symbol, r));
                wrapping(l, r)
            }
        }
    }

    fn eval_assign(
        &mut self,
        op: AssignOp,
        target: &Expr,
        value: &Expr,
    ) -> Result<Value, ExecError> {
        let new_value = match op.binop() {
            None => self.eval(value)?,
            Some(binop) => {
                // Compound assignment reads the target once, applies the
                // operator, and stores back.
                self.eval_binary(binop, target, value)?
            }
        };
        match target {
            Expr::Var(name) => {
                self.assign_var(name, new_value)?;
                Ok(new_value)
            }
            Expr::Index { base, index } => {
                let ptr = self.eval(base)?.as_ptr()?;
                let idx = self.eval(index)?.as_int()?;
                let scalar = new_value.as_int()?;
                self.memory.write(ptr.offset_by(idx as i64), scalar)?;
                Ok(new_value)
            }
            other => Err(ExecError::TypeMismatch(format!(
                "invalid assignment target {:?}",
                other
            ))),
        }
    }

    fn eval_call(&mut self, callee: &str, args: &[Expr]) -> Result<Value, ExecError> {
        match callee {
            "_mm256_loadu_si256" => {
                let ptr = self.eval(&args[0])?.as_ptr()?;
                Ok(Value::Vec(self.memory.read_vector(ptr)?))
            }
            "_mm256_storeu_si256" => {
                let ptr = self.eval(&args[0])?.as_ptr()?;
                let value = self.eval(&args[1])?.as_vec()?;
                self.memory.write_vector(ptr, value)?;
                Ok(Value::Int(0))
            }
            "_mm256_maskload_epi32" => {
                let ptr = self.eval(&args[0])?.as_ptr()?;
                let mask = self.eval(&args[1])?.as_vec()?;
                Ok(Value::Vec(self.memory.masked_read_vector(ptr, mask)?))
            }
            "_mm256_maskstore_epi32" => {
                let ptr = self.eval(&args[0])?.as_ptr()?;
                let mask = self.eval(&args[1])?.as_vec()?;
                let value = self.eval(&args[2])?.as_vec()?;
                self.memory.masked_write_vector(ptr, mask, value)?;
                Ok(Value::Int(0))
            }
            _ => {
                let mut simd_args = Vec::with_capacity(args.len());
                for arg in args {
                    let v = self.eval(arg)?;
                    simd_args.push(match v {
                        Value::Int(i) => SimdArg::Scalar(i),
                        Value::Vec(v) => SimdArg::Vector(v),
                        Value::Ptr(_) => {
                            return Err(ExecError::TypeMismatch(format!(
                                "pointer argument passed to pure intrinsic `{}`",
                                callee
                            )))
                        }
                    });
                }
                match eval_intrinsic(callee, &simd_args) {
                    Ok(SimdValue::Scalar(v)) => Ok(Value::Int(v)),
                    Ok(SimdValue::Vector(v)) => Ok(Value::Vec(v)),
                    Err(_) => Err(ExecError::UnknownCall(callee.to_string())),
                }
            }
        }
    }
}

fn default_value(ty: &Type) -> Result<Value, ExecError> {
    match ty {
        Type::Int => Ok(Value::Int(0)),
        Type::M256i => Ok(Value::Vec(lv_simd::I32x8::zero())),
        other => Err(ExecError::TypeMismatch(format!(
            "cannot default-initialize a value of type {}",
            other
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    fn run(src: &str, args: ArgBindings) -> Result<ExecResult, ExecError> {
        let func = parse_function(src).unwrap();
        run_function(&func, &args, &ExecConfig::default())
    }

    #[test]
    fn simple_copy_loop() {
        let result = run(
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
            ArgBindings::new()
                .scalar("n", 4)
                .array("a", vec![0; 4])
                .array("b", vec![10, 20, 30, 40]),
        )
        .unwrap();
        assert_eq!(result.arrays["a"], vec![11, 21, 31, 41]);
        assert_eq!(result.arrays["b"], vec![10, 20, 30, 40]);
    }

    #[test]
    fn s212_scalar_semantics() {
        // Figure 1(a): a[i] *= c[i]; b[i] += a[i+1] * d[i];
        let result = run(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
            ArgBindings::new()
                .scalar("n", 4)
                .array("a", vec![1, 2, 3, 4])
                .array("b", vec![1, 1, 1, 1])
                .array("c", vec![2, 2, 2, 2])
                .array("d", vec![3, 3, 3, 3]),
        )
        .unwrap();
        // i=0: a[0]=2, b[0]=1+a[1]*3=1+6=7 (a[1] still 2)
        // i=1: a[1]=4, b[1]=1+a[2]*3=1+9=10
        // i=2: a[2]=6, b[2]=1+a[3]*3=1+12=13
        assert_eq!(result.arrays["a"], vec![2, 4, 6, 4]);
        assert_eq!(result.arrays["b"], vec![7, 10, 13, 1]);
    }

    #[test]
    fn vectorized_code_executes() {
        let result = run(
            "void v(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); __m256i y = _mm256_add_epi32(x, _mm256_set1_epi32(1)); _mm256_storeu_si256((__m256i *)&a[i], y); } for (; i < n; i++) { a[i] = b[i] + 1; } }",
            ArgBindings::new()
                .scalar("n", 11)
                .array("a", vec![0; 11])
                .array("b", (0..11).collect()),
        )
        .unwrap();
        assert_eq!(result.arrays["a"], (1..=11).collect::<Vec<_>>());
    }

    #[test]
    fn goto_control_flow() {
        let result = run(
            "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }",
            ArgBindings::new()
                .scalar("n", 2)
                .array("a", vec![1, -1])
                .array("b", vec![2, 2])
                .array("c", vec![3, 3])
                .array("d", vec![4, 4])
                .array("e", vec![5, 5]),
        )
        .unwrap();
        // i=0: a[0] > 0, so c[0] = -3 + 20 = 17, a[0] = b[0] + c[0]*d[0] = 2 + 68 = 70
        // i=1: a[1] <= 0, so b[1] = -2 + 20 = 18, a[1] = 18 + 3*4 = 30
        assert_eq!(result.arrays["c"], vec![17, 3]);
        assert_eq!(result.arrays["b"], vec![2, 18]);
        assert_eq!(result.arrays["a"], vec![70, 30]);
    }

    #[test]
    fn reduction_and_scalar_result() {
        let result = run(
            "void vsumr(int n, int *a, int *sum) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } sum[0] = s; }",
            ArgBindings::new()
                .scalar("n", 5)
                .array("a", vec![1, 2, 3, 4, 5])
                .array("sum", vec![0]),
        )
        .unwrap();
        assert_eq!(result.arrays["sum"], vec![15]);
    }

    #[test]
    fn out_of_bounds_read_is_fatal() {
        let err = run(
            "void f(int n, int *a) { a[0] = a[n]; }",
            ArgBindings::new().scalar("n", 4).array("a", vec![0; 4]),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Ub(_)));
    }

    #[test]
    fn division_by_zero_is_fatal() {
        let err = run(
            "void f(int n, int *a) { a[0] = 1 / n; }",
            ArgBindings::new().scalar("n", 0).array("a", vec![0; 1]),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Ub(e) if e.kind == UbKind::DivByZero));
    }

    #[test]
    fn signed_overflow_wraps_and_is_recorded() {
        let result = run(
            "void f(int n, int *a) { a[0] = n * n; }",
            ArgBindings::new()
                .scalar("n", i32::MAX)
                .array("a", vec![0; 1]),
        )
        .unwrap();
        assert!(result.report.had_signed_overflow());
        assert_eq!(result.arrays["a"][0], i32::MAX.wrapping_mul(i32::MAX));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let func = parse_function("void f(int n) { while (1) { n = n + 0; } }").unwrap();
        let err = run_function(
            &func,
            &ArgBindings::new().scalar("n", 0),
            &ExecConfig { max_steps: 1000 },
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::StepLimitExceeded { .. }));
    }

    #[test]
    fn missing_argument_is_reported() {
        let err = run(
            "void f(int n, int *a) { a[0] = n; }",
            ArgBindings::new().scalar("n", 1),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::MissingArgument(name) if name == "a"));
    }

    #[test]
    fn short_circuit_avoids_division_by_zero() {
        let result = run(
            "void f(int n, int *a) { if (n != 0 && 10 / n > 1) { a[0] = 1; } else { a[0] = 2; } }",
            ArgBindings::new().scalar("n", 0).array("a", vec![0]),
        )
        .unwrap();
        assert_eq!(result.arrays["a"], vec![2]);
    }

    #[test]
    fn break_and_continue() {
        let result = run(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { if (i == 2) { continue; } if (i == 4) { break; } a[i] = 1; } }",
            ArgBindings::new().scalar("n", 8).array("a", vec![0; 8]),
        )
        .unwrap();
        assert_eq!(result.arrays["a"], vec![1, 1, 0, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn ternary_and_scalars_in_result() {
        let result = run(
            "void f(int n, int *a) { int m = n > 5 ? 1 : 0; a[0] = m; }",
            ArgBindings::new().scalar("n", 9).array("a", vec![0]),
        )
        .unwrap();
        assert_eq!(result.arrays["a"], vec![1]);
        assert_eq!(result.scalars["n"], 9);
    }

    #[test]
    fn masked_intrinsics_execute() {
        let result = run(
            "void f(int n, int *a, int *b) { __m256i mask = _mm256_setr_epi32(-1, -1, -1, -1, 0, 0, 0, 0); __m256i v = _mm256_maskload_epi32(b, mask); _mm256_maskstore_epi32(a, mask, v); }",
            ArgBindings::new()
                .scalar("n", 4)
                .array("a", vec![9; 4])
                .array("b", vec![1, 2, 3, 4]),
        )
        .unwrap();
        assert_eq!(result.arrays["a"], vec![1, 2, 3, 4]);
    }
}
