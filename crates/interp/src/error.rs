//! Runtime errors and undefined-behaviour events for the concrete interpreter.

use std::error::Error;
use std::fmt;

/// A kind of undefined or suspicious behaviour observed during execution.
///
/// Fatal kinds abort execution; non-fatal kinds are recorded in the
/// [`ExecReport`](crate::exec::ExecReport) so that the checksum harness and
/// the translation validator can reason about them (the paper's s124 example
/// shows a candidate whose bug is precisely a UB difference that concrete
/// testing misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UbKind {
    /// Out-of-bounds read from an array region.
    OobRead,
    /// Out-of-bounds write to an array region.
    OobWrite,
    /// Integer division or remainder by zero.
    DivByZero,
    /// `i32::MIN / -1` or `i32::MIN % -1`.
    DivOverflow,
    /// Shift amount outside `[0, 31]`.
    ShiftOutOfRange,
    /// Signed integer overflow in `+`, `-` or `*` (non-fatal: the value wraps,
    /// which is what optimized x86 code does, but the event is recorded).
    SignedOverflow,
}

impl UbKind {
    /// Whether this event aborts execution.
    pub fn is_fatal(self) -> bool {
        !matches!(self, UbKind::SignedOverflow)
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            UbKind::OobRead => "out-of-bounds read",
            UbKind::OobWrite => "out-of-bounds write",
            UbKind::DivByZero => "division by zero",
            UbKind::DivOverflow => "INT_MIN division overflow",
            UbKind::ShiftOutOfRange => "shift amount out of range",
            UbKind::SignedOverflow => "signed integer overflow",
        }
    }
}

impl fmt::Display for UbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A recorded undefined-behaviour event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UbEvent {
    /// What happened.
    pub kind: UbKind,
    /// Free-form context: array name and index, operands, etc.
    pub detail: String,
}

impl fmt::Display for UbEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// An error that aborts interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A fatal undefined-behaviour event.
    Ub(UbEvent),
    /// The step budget was exhausted (runaway loop).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A dynamic type mismatch (e.g. indexing a scalar). These indicate a
    /// program that the type checker should have rejected.
    TypeMismatch(String),
    /// Reference to a variable that has no binding at runtime.
    UnboundVariable(String),
    /// A call to a function or intrinsic the interpreter cannot execute.
    UnknownCall(String),
    /// A `goto` whose label was not found on the control-flow path.
    MissingLabel(String),
    /// A required argument binding was not supplied by the caller.
    MissingArgument(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Ub(event) => write!(f, "undefined behaviour: {}", event),
            ExecError::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded the step limit of {}", limit)
            }
            ExecError::TypeMismatch(msg) => write!(f, "runtime type mismatch: {}", msg),
            ExecError::UnboundVariable(name) => write!(f, "unbound variable `{}`", name),
            ExecError::UnknownCall(name) => write!(f, "cannot execute call to `{}`", name),
            ExecError::MissingLabel(name) => write!(f, "goto to missing label `{}`", name),
            ExecError::MissingArgument(name) => {
                write!(f, "no binding supplied for parameter `{}`", name)
            }
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality_classification() {
        assert!(UbKind::OobRead.is_fatal());
        assert!(UbKind::OobWrite.is_fatal());
        assert!(UbKind::DivByZero.is_fatal());
        assert!(!UbKind::SignedOverflow.is_fatal());
    }

    #[test]
    fn display_formats() {
        let e = ExecError::Ub(UbEvent {
            kind: UbKind::OobRead,
            detail: "a[100] with region of length 100".into(),
        });
        assert!(e.to_string().contains("out-of-bounds read"));
        assert!(ExecError::StepLimitExceeded { limit: 10 }
            .to_string()
            .contains("step limit"));
        assert!(ExecError::UnboundVariable("x".into())
            .to_string()
            .contains("`x`"));
    }
}
