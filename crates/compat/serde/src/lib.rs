//! Offline stand-in for `serde`.
//!
//! The seed sources only tag types with `#[derive(Serialize, Deserialize)]`
//! so downstream tooling *could* serialize reports; those derives expand to
//! nothing and the traits are empty markers with blanket implementations.
//!
//! The [`json`] module is the one real serialization facility: a minimal
//! JSON document model (`Value`), a recursive-descent parser, and a
//! deterministic renderer. `lv_core`'s persistent verdict cache uses it for
//! its on-disk format. When registry access appears and the real `serde` /
//! `serde_json` can be vendored, `json::Value` maps 1:1 onto
//! `serde_json::Value` and the cache code ports mechanically.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod json {
    //! A minimal JSON document model with a parser and a renderer.
    //!
    //! Supports the full JSON grammar except that numbers are restricted to
    //! `i64` (the workspace only persists counters, hashes — stored as hex
    //! strings — and enum tags, never floats). Object key order is preserved
    //! on parse and render, so a load/store round-trip is byte-stable.

    use std::fmt;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// An integer (the only number form the workspace persists).
        Int(i64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, with key order preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a `Str`.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The integer payload, if this is an `Int`.
        pub fn as_int(&self) -> Option<i64> {
            match self {
                Value::Int(v) => Some(*v),
                _ => None,
            }
        }

        /// The elements, if this is an `Array`.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Looks up a key, if this is an `Object`.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
                _ => None,
            }
        }
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => write!(f, "null"),
                Value::Bool(b) => write!(f, "{}", b),
                Value::Int(v) => write!(f, "{}", v),
                Value::Str(s) => write_escaped(f, s),
                Value::Array(items) => {
                    write!(f, "[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", item)?;
                    }
                    write!(f, "]")
                }
                Value::Object(entries) => {
                    write!(f, "{{")?;
                    for (i, (key, value)) in entries.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write_escaped(f, key)?;
                        write!(f, ":{}", value)?;
                    }
                    write!(f, "}}")
                }
            }
        }
    }

    fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
        write!(f, "\"")?;
        for c in s.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{}", c)?,
            }
        }
        write!(f, "\"")
    }

    /// A parse failure, with a byte offset into the input.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// Byte offset of the failure.
        pub at: usize,
        /// What went wrong.
        pub message: String,
    }

    impl fmt::Display for ParseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(input, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }

    fn err(at: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            at,
            message: message.into(),
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while let Some(&b) = bytes.get(*pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                *pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), ParseError> {
        if bytes.get(*pos) == Some(&token) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(*pos, format!("expected `{}`", token as char)))
        }
    }

    fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(err(*pos, "unexpected end of input")),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(parse_string(input, bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(input, bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(err(*pos, "expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(input, bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(input, bytes, pos)?;
                    entries.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(err(*pos, "expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if *b == b'-' || b.is_ascii_digit() => parse_int(bytes, pos),
            Some(&b) => Err(err(*pos, format!("unexpected byte `{}`", b as char))),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, ParseError> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(err(*pos, format!("expected `{}`", word)))
        }
    }

    fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits_start = *pos;
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == digits_start {
            return Err(err(*pos, "expected digits"));
        }
        if bytes
            .get(*pos)
            .is_some_and(|&b| b == b'.' || b == b'e' || b == b'E')
        {
            return Err(err(*pos, "floating-point numbers are not supported"));
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|e| err(start, format!("invalid integer `{}`: {}", text, e)))
    }

    fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(*pos, "invalid \\u escape"))?;
                            // Surrogate pairs are not needed for the cache
                            // format; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                            out.push(c);
                            *pos += 4;
                        }
                        _ => return Err(err(*pos, "invalid escape")),
                    }
                    *pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar value.
                    let rest = &input[*pos..];
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips_a_document() {
            let doc = Value::Object(vec![
                ("version".to_string(), Value::Int(1)),
                (
                    "entries".to_string(),
                    Value::Array(vec![
                        Value::Str("tab\t\"quote\" \\ \u{1F600} newline\n".to_string()),
                        Value::Int(-42),
                        Value::Bool(true),
                        Value::Null,
                    ]),
                ),
            ]);
            let text = doc.to_string();
            assert_eq!(parse(&text).unwrap(), doc);
            // Render is deterministic: a second round trip is byte-identical.
            assert_eq!(parse(&text).unwrap().to_string(), text);
        }

        #[test]
        fn parses_whitespace_and_nested_structures() {
            let text = " { \"a\" : [ 1 , 2 , { \"b\" : \"c\" } ] , \"d\" : null } ";
            let v = parse(text).unwrap();
            assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
            assert_eq!(
                v.get("a").unwrap().as_array().unwrap()[2]
                    .get("b")
                    .unwrap()
                    .as_str(),
                Some("c")
            );
            assert_eq!(v.get("d"), Some(&Value::Null));
        }

        #[test]
        fn rejects_garbage() {
            assert!(parse("").is_err());
            assert!(parse("{").is_err());
            assert!(parse("[1,]").is_err());
            assert!(parse("1.5").is_err());
            assert!(parse("\"unterminated").is_err());
            assert!(parse("{} trailing").is_err());
            assert!(parse("{\"a\"}").is_err());
        }

        #[test]
        fn unicode_escapes_decode() {
            assert_eq!(
                parse("\"\\u0041\\u00e9\"").unwrap(),
                Value::Str("Aé".to_string())
            );
            assert!(parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
        }
    }
}
