//! Offline stand-in for `serde`.
//!
//! The seed sources only tag types with `#[derive(Serialize, Deserialize)]`
//! so downstream tooling *could* serialize reports; those derives expand to
//! nothing and the traits are empty markers with blanket implementations.
//!
//! The [`json`] module is the one real serialization facility: a minimal
//! JSON document model (`Value`), a recursive-descent parser, and a
//! deterministic renderer. `lv_core`'s persistent verdict cache uses it for
//! its on-disk format. When registry access appears and the real `serde` /
//! `serde_json` can be vendored, `json::Value` maps 1:1 onto
//! `serde_json::Value` and the cache code ports mechanically.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod json {
    //! A minimal JSON document model with a parser and a renderer.
    //!
    //! Supports the full JSON grammar except that numbers are restricted to
    //! `i64` (the workspace only persists counters, hashes — stored as hex
    //! strings — and enum tags, never floats). Object key order is preserved
    //! on parse and render, so a load/store round-trip is byte-stable.
    //!
    //! Two serialization paths produce byte-identical output:
    //!
    //! * [`Value`]'s `Display`/`to_string` renders a pre-built document tree;
    //! * [`Emitter`] streams tokens directly into any [`io::Write`] without
    //!   building a tree or an intermediate `String` — the allocation-free
    //!   path the append-only journals use for per-record serialization
    //!   (pinned by a counting-global-allocator test in `lv_core`).
    //!
    //! [`to_writer`] bridges the two: it walks a [`Value`] through an
    //! [`Emitter`], so callers that already hold a document can stream it.

    use std::fmt;
    use std::io;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// An integer (the only number form the workspace persists).
        Int(i64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, with key order preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a `Str`.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The integer payload, if this is an `Int`.
        pub fn as_int(&self) -> Option<i64> {
            match self {
                Value::Int(v) => Some(*v),
                _ => None,
            }
        }

        /// The elements, if this is an `Array`.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Looks up a key, if this is an `Object`.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
                _ => None,
            }
        }
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => write!(f, "null"),
                Value::Bool(b) => write!(f, "{}", b),
                Value::Int(v) => write!(f, "{}", v),
                Value::Str(s) => write_escaped(f, s),
                Value::Array(items) => {
                    write!(f, "[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", item)?;
                    }
                    write!(f, "]")
                }
                Value::Object(entries) => {
                    write!(f, "{{")?;
                    for (i, (key, value)) in entries.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write_escaped(f, key)?;
                        write!(f, ":{}", value)?;
                    }
                    write!(f, "}}")
                }
            }
        }
    }

    fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
        write!(f, "\"")?;
        for c in s.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{}", c)?,
            }
        }
        write!(f, "\"")
    }

    /// Writes `s` to `w` as a JSON string literal, escaping exactly like the
    /// [`fmt::Display`] renderer so the two paths stay byte-identical. Clean
    /// runs are written as whole slices, so the common no-escape case is one
    /// `write_all` and never allocates.
    fn escape_into<W: io::Write + ?Sized>(w: &mut W, s: &str) -> io::Result<()> {
        w.write_all(b"\"")?;
        let bytes = s.as_bytes();
        let mut clean = 0;
        for (i, &b) in bytes.iter().enumerate() {
            let escape: &[u8] = match b {
                b'"' => b"\\\"",
                b'\\' => b"\\\\",
                b'\n' => b"\\n",
                b'\r' => b"\\r",
                b'\t' => b"\\t",
                _ if b < 0x20 => b"",
                _ => continue,
            };
            w.write_all(&bytes[clean..i])?;
            if escape.is_empty() {
                write!(w, "\\u{:04x}", b)?;
            } else {
                w.write_all(escape)?;
            }
            clean = i + 1;
        }
        w.write_all(&bytes[clean..])?;
        w.write_all(b"\"")
    }

    /// Maximum container nesting depth [`Emitter`] supports (the comma
    /// bookkeeping is a fixed bitset so emission never allocates).
    pub const MAX_EMIT_DEPTH: usize = 64;

    /// A streaming JSON serializer: tokens are written directly to the
    /// underlying [`io::Write`], with no intermediate document tree or
    /// `String`. Output is byte-identical to `Value::to_string` for the
    /// same document shape.
    ///
    /// The caller drives structure explicitly — [`Emitter::begin_object`] /
    /// [`Emitter::key`] / value calls / [`Emitter::end_object`] — and the
    /// emitter handles comma placement. Nesting deeper than
    /// [`MAX_EMIT_DEPTH`] panics (the workspace's formats are depth ≤ 4).
    #[derive(Debug)]
    pub struct Emitter<W: io::Write> {
        out: W,
        /// Bit `d` set ⇔ the container at depth `d+1` already holds an
        /// element, so the next element at that depth needs a comma.
        seen: u64,
        depth: usize,
        /// A key was just written; the next value call must not emit a comma.
        pending_key: bool,
    }

    impl<W: io::Write> Emitter<W> {
        /// An emitter writing to `out`.
        pub fn new(out: W) -> Emitter<W> {
            Emitter {
                out,
                seen: 0,
                depth: 0,
                pending_key: false,
            }
        }

        /// Consumes the emitter, returning the underlying writer.
        pub fn into_inner(self) -> W {
            self.out
        }

        fn value_prefix(&mut self) -> io::Result<()> {
            if self.pending_key {
                self.pending_key = false;
            } else if self.depth > 0 {
                let bit = 1u64 << (self.depth - 1);
                if self.seen & bit != 0 {
                    self.out.write_all(b",")?;
                }
                self.seen |= bit;
            }
            Ok(())
        }

        fn push(&mut self) {
            assert!(self.depth < MAX_EMIT_DEPTH, "emitter nesting too deep");
            self.depth += 1;
            self.seen &= !(1u64 << (self.depth - 1));
        }

        /// Opens an object (`{`).
        pub fn begin_object(&mut self) -> io::Result<()> {
            self.value_prefix()?;
            self.push();
            self.out.write_all(b"{")
        }

        /// Closes the innermost object (`}`).
        pub fn end_object(&mut self) -> io::Result<()> {
            self.depth -= 1;
            self.out.write_all(b"}")
        }

        /// Opens an array (`[`).
        pub fn begin_array(&mut self) -> io::Result<()> {
            self.value_prefix()?;
            self.push();
            self.out.write_all(b"[")
        }

        /// Closes the innermost array (`]`).
        pub fn end_array(&mut self) -> io::Result<()> {
            self.depth -= 1;
            self.out.write_all(b"]")
        }

        /// Writes an object key (escaped, followed by `:`).
        pub fn key(&mut self, key: &str) -> io::Result<()> {
            let bit = 1u64 << (self.depth - 1);
            if self.seen & bit != 0 {
                self.out.write_all(b",")?;
            }
            self.seen |= bit;
            escape_into(&mut self.out, key)?;
            self.out.write_all(b":")?;
            self.pending_key = true;
            Ok(())
        }

        /// Writes a string value.
        pub fn str(&mut self, s: &str) -> io::Result<()> {
            self.value_prefix()?;
            escape_into(&mut self.out, s)
        }

        /// Writes an integer value.
        pub fn int(&mut self, v: i64) -> io::Result<()> {
            self.value_prefix()?;
            write!(self.out, "{}", v)
        }

        /// Writes a boolean value.
        pub fn bool(&mut self, b: bool) -> io::Result<()> {
            self.value_prefix()?;
            self.out.write_all(if b { b"true" } else { b"false" })
        }

        /// Writes a `null` value.
        pub fn null(&mut self) -> io::Result<()> {
            self.value_prefix()?;
            self.out.write_all(b"null")
        }

        /// Writes a `u64` as the workspace's 16-digit lower-case hex string
        /// (JSON numbers cannot hold a `u64`).
        pub fn hex(&mut self, v: u64) -> io::Result<()> {
            self.value_prefix()?;
            write!(self.out, "\"{:016x}\"", v)
        }

        /// Writes a pre-built [`Value`] subtree at the current value
        /// position (for documents that mix streamed fields with an
        /// already-assembled branch).
        pub fn value(&mut self, value: &Value) -> io::Result<()> {
            match value {
                Value::Null => self.null(),
                Value::Bool(b) => self.bool(*b),
                Value::Int(v) => self.int(*v),
                Value::Str(s) => self.str(s),
                Value::Array(items) => {
                    self.begin_array()?;
                    for item in items {
                        self.value(item)?;
                    }
                    self.end_array()
                }
                Value::Object(entries) => {
                    self.begin_object()?;
                    for (key, item) in entries {
                        self.key(key)?;
                        self.value(item)?;
                    }
                    self.end_object()
                }
            }
        }

        /// `key` + string value.
        pub fn field_str(&mut self, key: &str, s: &str) -> io::Result<()> {
            self.key(key)?;
            self.str(s)
        }

        /// `key` + integer value.
        pub fn field_int(&mut self, key: &str, v: i64) -> io::Result<()> {
            self.key(key)?;
            self.int(v)
        }

        /// `key` + boolean value.
        pub fn field_bool(&mut self, key: &str, b: bool) -> io::Result<()> {
            self.key(key)?;
            self.bool(b)
        }

        /// `key` + hex-encoded `u64` value.
        pub fn field_hex(&mut self, key: &str, v: u64) -> io::Result<()> {
            self.key(key)?;
            self.hex(v)
        }
    }

    /// Streams `value` into `w` through an [`Emitter`]; output is
    /// byte-identical to `value.to_string()`.
    pub fn to_writer<W: io::Write>(w: W, value: &Value) -> io::Result<()> {
        Emitter::new(w).value(value)
    }

    /// An [`io::Write`] sink that discards its input and counts bytes — how
    /// serialized sizes are measured without rendering into a `String`.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct CountingWriter {
        /// Bytes written so far.
        pub bytes: u64,
    }

    impl io::Write for CountingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.bytes += buf.len() as u64;
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Serialized size of `value` in bytes (no allocation beyond the walk).
    pub fn serialized_len(value: &Value) -> u64 {
        let mut counter = CountingWriter::default();
        to_writer(&mut counter, value).expect("counting never fails");
        counter.bytes
    }

    /// A parse failure, with a byte offset into the input.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// Byte offset of the failure.
        pub at: usize,
        /// What went wrong.
        pub message: String,
    }

    impl fmt::Display for ParseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(input, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }

    fn err(at: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            at,
            message: message.into(),
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while let Some(&b) = bytes.get(*pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                *pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), ParseError> {
        if bytes.get(*pos) == Some(&token) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(*pos, format!("expected `{}`", token as char)))
        }
    }

    fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(err(*pos, "unexpected end of input")),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(parse_string(input, bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(input, bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(err(*pos, "expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(input, bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(input, bytes, pos)?;
                    entries.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(err(*pos, "expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if *b == b'-' || b.is_ascii_digit() => parse_int(bytes, pos),
            Some(&b) => Err(err(*pos, format!("unexpected byte `{}`", b as char))),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, ParseError> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(err(*pos, format!("expected `{}`", word)))
        }
    }

    fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits_start = *pos;
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == digits_start {
            return Err(err(*pos, "expected digits"));
        }
        if bytes
            .get(*pos)
            .is_some_and(|&b| b == b'.' || b == b'e' || b == b'E')
        {
            return Err(err(*pos, "floating-point numbers are not supported"));
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|e| err(start, format!("invalid integer `{}`: {}", text, e)))
    }

    fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(*pos, "invalid \\u escape"))?;
                            // Surrogate pairs are not needed for the cache
                            // format; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                            out.push(c);
                            *pos += 4;
                        }
                        _ => return Err(err(*pos, "invalid escape")),
                    }
                    *pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar value.
                    let rest = &input[*pos..];
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips_a_document() {
            let doc = Value::Object(vec![
                ("version".to_string(), Value::Int(1)),
                (
                    "entries".to_string(),
                    Value::Array(vec![
                        Value::Str("tab\t\"quote\" \\ \u{1F600} newline\n".to_string()),
                        Value::Int(-42),
                        Value::Bool(true),
                        Value::Null,
                    ]),
                ),
            ]);
            let text = doc.to_string();
            assert_eq!(parse(&text).unwrap(), doc);
            // Render is deterministic: a second round trip is byte-identical.
            assert_eq!(parse(&text).unwrap().to_string(), text);
        }

        #[test]
        fn parses_whitespace_and_nested_structures() {
            let text = " { \"a\" : [ 1 , 2 , { \"b\" : \"c\" } ] , \"d\" : null } ";
            let v = parse(text).unwrap();
            assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
            assert_eq!(
                v.get("a").unwrap().as_array().unwrap()[2]
                    .get("b")
                    .unwrap()
                    .as_str(),
                Some("c")
            );
            assert_eq!(v.get("d"), Some(&Value::Null));
        }

        #[test]
        fn rejects_garbage() {
            assert!(parse("").is_err());
            assert!(parse("{").is_err());
            assert!(parse("[1,]").is_err());
            assert!(parse("1.5").is_err());
            assert!(parse("\"unterminated").is_err());
            assert!(parse("{} trailing").is_err());
            assert!(parse("{\"a\"}").is_err());
        }

        #[test]
        fn emitter_matches_display_byte_for_byte() {
            let doc = Value::Object(vec![
                ("version".to_string(), Value::Int(1)),
                ("hash".to_string(), Value::Str(format!("{:016x}", u64::MAX))),
                (
                    "entries".to_string(),
                    Value::Array(vec![
                        Value::Str("tab\t\"quote\" \\ \u{1F600} newline\n ctrl\u{1}".to_string()),
                        Value::Int(-42),
                        Value::Bool(true),
                        Value::Null,
                        Value::Array(vec![]),
                        Value::Object(vec![]),
                        Value::Object(vec![("k".to_string(), Value::Array(vec![Value::Int(7)]))]),
                    ]),
                ),
            ]);
            let mut streamed = Vec::new();
            to_writer(&mut streamed, &doc).unwrap();
            assert_eq!(String::from_utf8(streamed).unwrap(), doc.to_string());
            assert_eq!(serialized_len(&doc), doc.to_string().len() as u64);
        }

        #[test]
        fn emitter_drives_structure_by_hand() {
            let mut out = Vec::new();
            let mut e = Emitter::new(&mut out);
            e.begin_object().unwrap();
            e.field_int("version", 1).unwrap();
            e.field_hex("hash", 0xdead_beef).unwrap();
            e.key("jobs").unwrap();
            e.begin_array().unwrap();
            e.str("a\nb").unwrap();
            e.begin_object().unwrap();
            e.field_bool("ok", false).unwrap();
            e.key("note").unwrap();
            e.null().unwrap();
            e.end_object().unwrap();
            e.end_array().unwrap();
            e.end_object().unwrap();
            let text = String::from_utf8(out).unwrap();
            assert_eq!(
                text,
                "{\"version\":1,\"hash\":\"00000000deadbeef\",\
                 \"jobs\":[\"a\\nb\",{\"ok\":false,\"note\":null}]}"
            );
            // The streamed text round-trips through the parser.
            assert!(parse(&text).is_ok());
        }

        #[test]
        fn unicode_escapes_decode() {
            assert_eq!(
                parse("\"\\u0041\\u00e9\"").unwrap(),
                Value::Str("Aé".to_string())
            );
            assert!(parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
        }
    }
}

pub mod bin {
    //! Little-endian binary codec primitives: the counterpart of
    //! [`crate::json`] for the compact on-disk formats.
    //!
    //! Two halves, mirroring `Emitter`/`parse`:
    //!
    //! * the `put_*` functions append fixed-width little-endian integers,
    //!   LEB128 varints, and varint-length-prefixed byte strings to a
    //!   `Vec<u8>` (infallible — the scratch-buffer append path the binary
    //!   journal and snapshot writers stream through);
    //! * [`Reader`] is a bounds-checked cursor over a byte slice decoding
    //!   the same primitives, returning `Err(String)` — never panicking,
    //!   never reading past the slice — so corrupt input surfaces as a
    //!   typed decode error.
    //!
    //! All multi-byte integers are little-endian. Varints are unsigned
    //! LEB128 (7 bits per byte, high bit = continuation), at most 10 bytes.

    /// Appends `v` as one byte.
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    /// Appends `v` as 4 little-endian bytes.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends `v` as 8 little-endian bytes.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends `v` as an unsigned LEB128 varint (1–10 bytes).
    pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }

    /// Appends `bytes` prefixed by its varint length.
    pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
        put_varint(buf, bytes.len() as u64);
        buf.extend_from_slice(bytes);
    }

    /// Appends `s`'s UTF-8 bytes prefixed by their varint length.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_bytes(buf, s.as_bytes());
    }

    /// Reads a `u32` from 4 little-endian bytes at `offset`, if in bounds.
    pub fn read_u32_at(bytes: &[u8], offset: usize) -> Option<u32> {
        let end = offset.checked_add(4)?;
        let slice = bytes.get(offset..end)?;
        Some(u32::from_le_bytes(slice.try_into().unwrap()))
    }

    /// Reads a `u64` from 8 little-endian bytes at `offset`, if in bounds.
    pub fn read_u64_at(bytes: &[u8], offset: usize) -> Option<u64> {
        let end = offset.checked_add(8)?;
        let slice = bytes.get(offset..end)?;
        Some(u64::from_le_bytes(slice.try_into().unwrap()))
    }

    /// A bounds-checked decoding cursor over a byte slice.
    #[derive(Debug, Clone)]
    pub struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// A cursor at the start of `bytes`.
        pub fn new(bytes: &'a [u8]) -> Reader<'a> {
            Reader { bytes, pos: 0 }
        }

        /// Bytes left to read.
        pub fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        /// `true` once every byte has been consumed.
        pub fn is_empty(&self) -> bool {
            self.remaining() == 0
        }

        /// The cursor's byte offset from the start of the slice.
        pub fn pos(&self) -> usize {
            self.pos
        }

        /// Takes the next `n` raw bytes.
        pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&end| end <= self.bytes.len())
                .ok_or_else(|| {
                    format!(
                        "truncated input: need {} bytes at offset {}, have {}",
                        n,
                        self.pos,
                        self.remaining()
                    )
                })?;
            let slice = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        /// Decodes one byte.
        pub fn u8(&mut self) -> Result<u8, String> {
            Ok(self.bytes(1)?[0])
        }

        /// Decodes 4 little-endian bytes.
        pub fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
        }

        /// Decodes 8 little-endian bytes.
        pub fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
        }

        /// Decodes an unsigned LEB128 varint.
        pub fn varint(&mut self) -> Result<u64, String> {
            let mut value = 0u64;
            let mut shift = 0u32;
            loop {
                let byte = self.u8().map_err(|e| format!("truncated varint: {}", e))?;
                if shift == 63 && byte > 1 {
                    return Err("varint overflows u64".to_string());
                }
                value |= u64::from(byte & 0x7f) << shift;
                if byte & 0x80 == 0 {
                    return Ok(value);
                }
                shift += 7;
                if shift > 63 {
                    return Err("varint longer than 10 bytes".to_string());
                }
            }
        }

        /// Decodes a varint-length-prefixed byte string.
        pub fn length_prefixed(&mut self) -> Result<&'a [u8], String> {
            let len = self.varint()?;
            let len =
                usize::try_from(len).map_err(|_| "length prefix overflows usize".to_string())?;
            self.bytes(len)
        }

        /// Decodes a varint-length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<&'a str, String> {
            std::str::from_utf8(self.length_prefixed()?)
                .map_err(|e| format!("string field is not UTF-8: {}", e))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn primitives_round_trip() {
            let mut buf = Vec::new();
            put_u8(&mut buf, 0xab);
            put_u32(&mut buf, 0xdead_beef);
            put_u64(&mut buf, u64::MAX - 1);
            put_varint(&mut buf, 0);
            put_varint(&mut buf, 127);
            put_varint(&mut buf, 128);
            put_varint(&mut buf, u64::MAX);
            put_str(&mut buf, "héllo\n\"world\"");
            let mut r = Reader::new(&buf);
            assert_eq!(r.u8().unwrap(), 0xab);
            assert_eq!(r.u32().unwrap(), 0xdead_beef);
            assert_eq!(r.u64().unwrap(), u64::MAX - 1);
            assert_eq!(r.varint().unwrap(), 0);
            assert_eq!(r.varint().unwrap(), 127);
            assert_eq!(r.varint().unwrap(), 128);
            assert_eq!(r.varint().unwrap(), u64::MAX);
            assert_eq!(r.str().unwrap(), "héllo\n\"world\"");
            assert!(r.is_empty());
        }

        #[test]
        fn varint_sizes_are_minimal() {
            for (v, len) in [(0u64, 1usize), (127, 1), (128, 2), (16_383, 2), (16_384, 3)] {
                let mut buf = Vec::new();
                put_varint(&mut buf, v);
                assert_eq!(buf.len(), len, "varint({})", v);
            }
            let mut buf = Vec::new();
            put_varint(&mut buf, u64::MAX);
            assert_eq!(buf.len(), 10);
        }

        #[test]
        fn truncation_and_overflow_are_errors_not_panics() {
            let mut r = Reader::new(&[0x01, 0x02]);
            assert!(r.u32().is_err());
            let mut r = Reader::new(&[0x80, 0x80]);
            assert!(r.varint().is_err(), "unterminated varint");
            let eleven = [0xffu8; 11];
            assert!(Reader::new(&eleven).varint().is_err(), "overlong varint");
            // Length prefix pointing past the end of the slice.
            let mut buf = Vec::new();
            put_varint(&mut buf, 100);
            buf.push(b'x');
            assert!(Reader::new(&buf).length_prefixed().is_err());
            // Non-UTF-8 string payload.
            let mut buf = Vec::new();
            put_bytes(&mut buf, &[0xff, 0xfe]);
            assert!(Reader::new(&buf).str().is_err());
        }

        #[test]
        fn random_access_reads_are_bounds_checked() {
            let mut buf = Vec::new();
            put_u32(&mut buf, 7);
            put_u64(&mut buf, 9);
            assert_eq!(read_u32_at(&buf, 0), Some(7));
            assert_eq!(read_u64_at(&buf, 4), Some(9));
            assert_eq!(read_u64_at(&buf, 5), None);
            assert_eq!(read_u32_at(&buf, usize::MAX), None, "offset overflow");
        }
    }
}
