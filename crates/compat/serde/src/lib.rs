//! Offline stand-in for `serde`.
//!
//! No code in this workspace serializes anything yet; the seed sources only
//! tag types with `#[derive(Serialize, Deserialize)]` so downstream tooling
//! *could* serialize reports. Until a real serialization backend is needed
//! (and the container can fetch one), the traits are empty markers with
//! blanket implementations and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
