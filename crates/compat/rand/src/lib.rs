//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! tiny slice of the `rand 0.8` API the reproduction uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension trait
//! with `gen`, `gen_range` and `gen_bool`, and uniform sampling over integer
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — not the
//! upstream ChaCha-based `StdRng`, but every consumer in this workspace only
//! relies on determinism and reasonable statistical quality, never on the
//! exact upstream stream.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream `gen_range`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform value below `bound` (> 0) by multiply-shift reduction.
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    // The slight modulo-style bias of the multiply-high reduction is
    // negligible for the bounds used here (all far below 2^32).
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(below(rng, span) as $wide) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as $wide).wrapping_add(below(rng, span + 1) as $wide) as $ty
            }
        }
    )*};
}

impl_int_ranges! {
    i32 => i64,
    i64 => i64,
    u32 => u64,
    u64 => u64,
    usize => u64,
}

/// The user-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-100..=100);
            assert!((-100..=100).contains(&x));
            let y: usize = rng.gen_range(0..7);
            assert!(y < 7);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{:?}", counts);
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "{}", heads);
    }
}
