//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stand-in gives `Serialize` / `Deserialize` blanket
//! implementations, so the derives have nothing to generate: they exist only
//! so `#[derive(Serialize, Deserialize)]` in the seed sources keeps
//! compiling without the real (network-only) proc-macro crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the trait is blanket-implemented by the `serde`
/// stand-in.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the trait is blanket-implemented by the
/// `serde` stand-in.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
