//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the `lv_bench` benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`criterion_group!`] / [`criterion_main!`] and [`black_box`] — with a
//! simple mean-of-samples wall-clock measurement instead of Criterion's
//! statistical machinery. Results are printed as `name: mean per-iter`.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives the closure under measurement.
pub struct Bencher {
    samples: usize,
    per_iter: Duration,
}

impl Bencher {
    /// Times `f`, averaging over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration outside the measurement.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.per_iter = start.elapsed() / self.samples as u32;
    }
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        per_iter: Duration::ZERO,
    };
    f(&mut bencher);
    println!(
        "bench {:<40} {:>12.3?} per iter ({} samples)",
        name, bencher.per_iter, bencher.samples
    );
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (both Criterion invocation forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
