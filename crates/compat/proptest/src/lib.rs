//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by `tests/property_tests.rs`: the [`proptest!`]
//! macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, integer-range and [`any`] strategies,
//! [`collection::vec`], and the `prop_assert*` macros. Cases are sampled from
//! a generator seeded deterministically per test name, so failures are
//! reproducible; there is no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i32, i64, u32, u64, usize);

/// Full-range strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.0.gen::<i32>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.0.gen::<u32>()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.0.gen::<u64>() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.0.gen::<u64>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen::<bool>()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s of exactly `len` elements (the `usize` size form of
    /// `proptest::collection::vec`).
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Vector strategy with a fixed length.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts within a property (panics with context, like an assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
}
