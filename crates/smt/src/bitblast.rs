//! Tseitin bit-blasting of QF_BV terms into CNF.
//!
//! Every bitvector term is lowered to a vector of SAT literals (LSB first);
//! every boolean term to a single literal. The encodings are the textbook
//! ones: ripple-carry adders, shift-and-add multipliers, barrel shifters,
//! restoring dividers and subtract-based comparators.
//!
//! # The blasted-CNF memo
//!
//! [`BlastCache`] memoizes whole assertion roots as *clause streams in local
//! numbering*, keyed by [`crate::term::structural_hash`] — a DAG hash that
//! ignores variable names but is sensitive to operators, constants, widths
//! and sharing. Two roots with equal hashes blast to literally the same
//! interleaved sequence of fresh-variable allocations and emitted clauses,
//! modulo a uniform renaming of SAT variables, so a hit replays the recorded
//! stream instead of re-walking the term DAG. Replay reproduces the exact
//! variable-allocation and clause order of a fresh blast, which keeps the
//! downstream CDCL search (and therefore the verdict and its statistics)
//! bit-identical — the property the `memoized_blast_is_clause_identical`
//! tests pin via [`crate::sat::SatSolver::cnf_fingerprint`].
//!
//! An entry is recorded only when its blast is *self-contained*: every
//! variable it touches is first bound inside it and every subterm it reuses
//! was blasted inside it. A root that shares variables or subterms with
//! earlier assertions in the same solver would record a context-dependent
//! stream, so recording simply invalidates itself and the root is never
//! cached. Symmetrically, a hit is replayed only when none of the root's
//! variables are bound yet. The cache lives on [`crate::Solver`], *beside*
//! the recycled term [`Context`] — [`crate::Solver::recycle`] clears the
//! context but keeps the memo, which is how blasts are shared across the
//! many queries of one verification job and across jobs on one worker.

use crate::sat::{Lit, SatSolver, Var};
use crate::term::{structural_hash_pair, vars_in_order, Context, Op, Sort, TermId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A sort/encoding mismatch discovered while lowering a term.
///
/// These used to be `panic!`s; as typed errors they surface as
/// [`crate::CheckResult::Unknown`] instead of aborting a verification worker
/// thread mid-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlastError {
    /// A boolean encoding was required but a bitvector was produced.
    ExpectedBool,
    /// A bitvector encoding was required but a boolean was produced.
    ExpectedBitVec,
    /// The two branches of an if-then-else lower to different encodings.
    MixedIteBranches,
    /// The two operands of an equality lower to different encodings.
    MixedEqOperands,
}

impl fmt::Display for BlastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            BlastError::ExpectedBool => "expected a boolean encoding, found a bitvector",
            BlastError::ExpectedBitVec => "expected a bitvector encoding, found a boolean",
            BlastError::MixedIteBranches => "ite branches have different encodings",
            BlastError::MixedEqOperands => "eq operands have different encodings",
        };
        write!(f, "bit-blasting failed: {}", msg)
    }
}

impl std::error::Error for BlastError {}

/// The bit-level encoding of a term.
#[derive(Debug, Clone)]
pub enum Bits {
    /// A boolean term.
    Bool(Lit),
    /// A bitvector term, least-significant bit first.
    Bv(Vec<Lit>),
}

impl Bits {
    /// The literal of a boolean encoding.
    pub fn try_bool(&self) -> Result<Lit, BlastError> {
        match self {
            Bits::Bool(l) => Ok(*l),
            Bits::Bv(_) => Err(BlastError::ExpectedBool),
        }
    }

    /// The literals of a bitvector encoding, least-significant first.
    pub fn try_bv(&self) -> Result<&[Lit], BlastError> {
        match self {
            Bits::Bv(bits) => Ok(bits),
            Bits::Bool(_) => Err(BlastError::ExpectedBitVec),
        }
    }
}

/// The kind of one recorded input-variable slot, in first-occurrence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputKind {
    /// A boolean variable: one local literal.
    Bool,
    /// A bitvector variable of the given width: `width` consecutive locals.
    Bv(u32),
}

/// One recorded input slot: its kind plus the local index of its first
/// SAT variable (bitvector slots occupy `width` consecutive locals).
#[derive(Debug, Clone, Copy)]
struct InputSlot {
    kind: InputKind,
    first_local: u32,
}

/// One step of a recorded blast, in emission order. Literal variables are
/// *local* indices: 0 is the true-literal variable, locals 1.. are the
/// fresh variables the blast allocated, in allocation order.
#[derive(Debug, Clone)]
enum BlastEvent {
    /// `SatSolver::new_var` was called.
    FreshVar,
    /// A clause was emitted (including the final unit assertion).
    Clause(Vec<Lit>),
}

/// A memoized assertion root: the full fresh-variable/clause stream of its
/// blast in local numbering, plus the input-variable layout needed to bind
/// a replay to a structurally identical root with different names.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// Structural hash under a second seed — a 128-bit-effective collision
    /// guard on top of the map key.
    check: u64,
    /// Input-variable slots in the canonical first-occurrence order of
    /// [`vars_in_order`].
    inputs: Vec<InputSlot>,
    /// The recorded stream.
    events: Vec<BlastEvent>,
}

/// Second FNV seed for [`CacheEntry::check`].
const CHECK_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Cross-query memo of blasted assertion roots, keyed by structural hash.
///
/// Owned by [`crate::Solver`] (one per verification worker) and surviving
/// [`crate::Solver::recycle`]; see the module docs for the design. Entries
/// are evicted in insertion order once the entry cap (default
/// [`BlastCache::DEFAULT_MAX_ENTRIES`]) is reached — each entry holds a full
/// clause stream, so the cache is a small working set, not an archive.
#[derive(Debug)]
pub struct BlastCache {
    entries: HashMap<u64, CacheEntry>,
    /// Insertion order, for FIFO eviction.
    order: Vec<u64>,
    max_entries: usize,
    hits: u64,
    misses: u64,
}

impl Default for BlastCache {
    fn default() -> Self {
        BlastCache::new()
    }
}

impl BlastCache {
    /// Default entry cap: each entry stores a whole query's clause stream,
    /// so the cache is sized as a working set of recent query shapes.
    pub const DEFAULT_MAX_ENTRIES: usize = 64;

    /// An empty cache with the default entry cap.
    pub fn new() -> BlastCache {
        BlastCache::with_capacity(BlastCache::DEFAULT_MAX_ENTRIES)
    }

    /// An empty cache evicting (oldest first) beyond `max_entries`.
    pub fn with_capacity(max_entries: usize) -> BlastCache {
        BlastCache {
            entries: HashMap::new(),
            order: Vec::new(),
            max_entries: max_entries.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Replayed roots since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Roots blasted fresh (whether or not they could be recorded).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoized roots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn insert(&mut self, hash: u64, entry: CacheEntry) {
        if self.entries.insert(hash, entry).is_none() {
            self.order.push(hash);
            if self.order.len() > self.max_entries {
                let oldest = self.order.remove(0);
                self.entries.remove(&oldest);
            }
        }
    }
}

/// Recording state for one in-progress self-contained blast.
#[derive(Debug)]
struct Recorder {
    /// Maps global SAT variables to local indices (true-literal var is 0).
    local_of: HashMap<Var, u32>,
    next_local: u32,
    events: Vec<BlastEvent>,
    inputs: Vec<InputSlot>,
    /// Terms first blasted inside this recording; an instance-cache hit on
    /// any other term means the stream depends on outside state.
    recorded_terms: HashSet<TermId>,
    /// Cleared when the blast turns out not to be self-contained.
    valid: bool,
}

impl Recorder {
    fn new(true_var: Var) -> Recorder {
        let mut local_of = HashMap::new();
        local_of.insert(true_var, 0);
        Recorder {
            local_of,
            next_local: 1,
            events: Vec::new(),
            inputs: Vec::new(),
            recorded_terms: HashSet::new(),
            valid: true,
        }
    }

    fn local_lit(&self, lit: Lit) -> Option<Lit> {
        self.local_of
            .get(&lit.var())
            .map(|&local| Lit::new(local, lit.is_neg()))
    }
}

/// The persistent half of a [`BitBlaster`], detached from the `Context` and
/// `SatSolver` borrows so the incremental solver can keep term encodings,
/// variable bindings and the true literal alive across queries. Produced by
/// [`BitBlaster::into_state`] and revived by [`BitBlaster::resume`].
#[derive(Debug)]
pub struct BlastState {
    cache: HashMap<TermId, Bits>,
    true_lit: Lit,
    var_bits: HashMap<String, Vec<Lit>>,
    var_bools: HashMap<String, Lit>,
}

impl BlastState {
    /// The literals of each free bitvector variable bound so far.
    pub fn var_bits(&self) -> &HashMap<String, Vec<Lit>> {
        &self.var_bits
    }

    /// The literal of each free boolean variable bound so far.
    pub fn var_bools(&self) -> &HashMap<String, Lit> {
        &self.var_bools
    }

    /// Every SAT variable reachable from this state (the true literal, all
    /// cached term encodings, and the free-variable bindings), sorted and
    /// deduplicated. These are the variables later queries may still refer
    /// to, so preprocessing an incremental session's base clauses must
    /// freeze exactly this set.
    pub fn cnf_vars(&self) -> Vec<crate::sat::Var> {
        let mut vars: Vec<crate::sat::Var> = vec![self.true_lit.var()];
        for bits in self.cache.values() {
            match bits {
                Bits::Bool(l) => vars.push(l.var()),
                Bits::Bv(bv) => vars.extend(bv.iter().map(|l| l.var())),
            }
        }
        for bv in self.var_bits.values() {
            vars.extend(bv.iter().map(|l| l.var()));
        }
        vars.extend(self.var_bools.values().map(|l| l.var()));
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

/// Bit-blasts terms from a [`Context`] into a [`SatSolver`].
pub struct BitBlaster<'a> {
    ctx: &'a Context,
    sat: &'a mut SatSolver,
    cache: HashMap<TermId, Bits>,
    true_lit: Lit,
    /// Bit literals of every free bitvector variable, for model extraction.
    var_bits: HashMap<String, Vec<Lit>>,
    /// Literal of every free boolean variable.
    var_bools: HashMap<String, Lit>,
    /// Active while a cache-miss blast is being recorded.
    recorder: Option<Recorder>,
}

impl<'a> BitBlaster<'a> {
    /// Creates a bit-blaster targeting the given SAT solver.
    pub fn new(ctx: &'a Context, sat: &'a mut SatSolver) -> Self {
        let t = sat.new_var();
        let true_lit = Lit::pos(t);
        sat.add_clause(&[true_lit]);
        BitBlaster {
            ctx,
            sat,
            cache: HashMap::new(),
            true_lit,
            var_bits: HashMap::new(),
            var_bools: HashMap::new(),
            recorder: None,
        }
    }

    /// Revives a blaster from persistent state, continuing to feed `sat`.
    /// `ctx` must still contain every term id recorded in `state` (the
    /// incremental solver guarantees this by never recycling the context
    /// while a persistent instance is alive).
    pub fn resume(ctx: &'a Context, sat: &'a mut SatSolver, state: BlastState) -> Self {
        BitBlaster {
            ctx,
            sat,
            cache: state.cache,
            true_lit: state.true_lit,
            var_bits: state.var_bits,
            var_bools: state.var_bools,
            recorder: None,
        }
    }

    /// Detaches the persistent half for a later [`BitBlaster::resume`].
    pub fn into_state(self) -> BlastState {
        BlastState {
            cache: self.cache,
            true_lit: self.true_lit,
            var_bits: self.var_bits,
            var_bools: self.var_bools,
        }
    }

    /// The literals of each free bitvector variable encountered so far.
    pub fn var_bits(&self) -> &HashMap<String, Vec<Lit>> {
        &self.var_bits
    }

    /// The literal of each free boolean variable encountered so far.
    pub fn var_bools(&self) -> &HashMap<String, Lit> {
        &self.var_bools
    }

    /// Asserts a boolean term.
    pub fn assert(&mut self, term: TermId) -> Result<(), BlastError> {
        let lit = self.blast(term)?.try_bool()?;
        self.emit(&[lit]);
        Ok(())
    }

    /// [`BitBlaster::assert`] through the blasted-CNF memo: a structurally
    /// identical root seen before replays its recorded clause stream; a miss
    /// blasts fresh and records the stream when it is self-contained (see
    /// the module docs).
    pub fn assert_with_cache(
        &mut self,
        term: TermId,
        memo: &mut BlastCache,
    ) -> Result<(), BlastError> {
        let (hash, check) =
            structural_hash_pair(self.ctx, term, crate::term::FNV_OFFSET, CHECK_SEED);
        if let Some(entry) = memo.entries.get(&hash) {
            if entry.check == check && self.try_replay(term, entry) {
                memo.hits += 1;
                return Ok(());
            }
        }
        memo.misses += 1;
        debug_assert!(self.recorder.is_none(), "recordings do not nest");
        self.recorder = Some(Recorder::new(self.true_lit.var()));
        let result = self.assert(term);
        let recorder = self.recorder.take().expect("recorder was just installed");
        if result.is_ok() && recorder.valid {
            memo.insert(
                hash,
                CacheEntry {
                    check,
                    inputs: recorder.inputs,
                    events: recorder.events,
                },
            );
        }
        result
    }

    /// Replays `entry` for the (hash-equal) root `term`. Returns `false` —
    /// leaving the solver untouched — when the root's variables do not line
    /// up with the recorded input slots or are already bound.
    ///
    /// The positional pairing below relies on [`blast`](Self::blast)
    /// lowering arguments strictly left-to-right, so a fresh blast binds
    /// variables in exactly the [`vars_in_order`] pre-order.
    fn try_replay(&mut self, term: TermId, entry: &CacheEntry) -> bool {
        let vars = vars_in_order(self.ctx, term);
        if vars.len() != entry.inputs.len() {
            return false;
        }
        for (&var_term, slot) in vars.iter().zip(&entry.inputs) {
            let Op::Var { name, sort } = &self.ctx.term(var_term).op else {
                return false;
            };
            let matches = match (sort, slot.kind) {
                (Sort::Bool, InputKind::Bool) => !self.var_bools.contains_key(name),
                (Sort::BitVec(w), InputKind::Bv(width)) => {
                    *w == width && !self.var_bits.contains_key(name)
                }
                _ => false,
            };
            if !matches {
                return false;
            }
        }
        // Replay the stream: allocate fresh variables and add clauses in
        // exactly the recorded order, building the local→global map as the
        // allocations happen.
        let mut global: Vec<Var> = Vec::with_capacity(entry.events.len() + 1);
        global.push(self.true_lit.var());
        for event in &entry.events {
            match event {
                BlastEvent::FreshVar => global.push(self.sat.new_var()),
                BlastEvent::Clause(locals) => {
                    let clause: Vec<Lit> = locals
                        .iter()
                        .map(|l| Lit::new(global[l.var() as usize], l.is_neg()))
                        .collect();
                    self.sat.add_clause(&clause);
                }
            }
        }
        // Bind the new root's variable names to the replayed input slots so
        // model extraction and later assertions see them.
        for (&var_term, slot) in vars.iter().zip(&entry.inputs) {
            let Op::Var { name, sort } = &self.ctx.term(var_term).op else {
                unreachable!("checked above");
            };
            let first = slot.first_local as usize;
            match sort {
                Sort::Bool => {
                    let lit = Lit::pos(global[first]);
                    self.var_bools.insert(name.clone(), lit);
                    self.cache.insert(var_term, Bits::Bool(lit));
                }
                Sort::BitVec(w) => {
                    let bits: Vec<Lit> = (0..*w as usize)
                        .map(|i| Lit::pos(global[first + i]))
                        .collect();
                    self.var_bits.insert(name.clone(), bits.clone());
                    self.cache.insert(var_term, Bits::Bv(bits));
                }
            }
        }
        true
    }

    fn const_lit(&self, value: bool) -> Lit {
        if value {
            self.true_lit
        } else {
            self.true_lit.negate()
        }
    }

    /// Allocates a SAT variable, recording the allocation when a memo
    /// recording is active.
    fn fresh_var(&mut self) -> Var {
        let var = self.sat.new_var();
        if let Some(rec) = &mut self.recorder {
            rec.events.push(BlastEvent::FreshVar);
            rec.local_of.insert(var, rec.next_local);
            rec.next_local += 1;
        }
        var
    }

    /// Adds a clause, recording it (in local numbering) when a memo
    /// recording is active. A literal from outside the recording makes the
    /// stream context-dependent and invalidates it.
    fn emit(&mut self, lits: &[Lit]) {
        if let Some(rec) = &mut self.recorder {
            let locals: Option<Vec<Lit>> = lits.iter().map(|&l| rec.local_lit(l)).collect();
            match locals {
                Some(locals) => rec.events.push(BlastEvent::Clause(locals)),
                None => rec.valid = false,
            }
        }
        self.sat.add_clause(lits);
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.fresh_var())
    }

    // ---- gates ---------------------------------------------------------------

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.const_lit(false) || b == self.const_lit(false) {
            return self.const_lit(false);
        }
        if a == self.const_lit(true) {
            return b;
        }
        if b == self.const_lit(true) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.const_lit(false);
        }
        let o = self.fresh();
        self.emit(&[a.negate(), b.negate(), o]);
        self.emit(&[a, o.negate()]);
        self.emit(&[b, o.negate()]);
        o
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.const_lit(false) {
            return b;
        }
        if b == self.const_lit(false) {
            return a;
        }
        if a == self.const_lit(true) {
            return b.negate();
        }
        if b == self.const_lit(true) {
            return a.negate();
        }
        if a == b {
            return self.const_lit(false);
        }
        if a == b.negate() {
            return self.const_lit(true);
        }
        let o = self.fresh();
        self.emit(&[a.negate(), b.negate(), o.negate()]);
        self.emit(&[a, b, o.negate()]);
        self.emit(&[a.negate(), b, o]);
        self.emit(&[a, b.negate(), o]);
        o
    }

    fn mux_gate(&mut self, cond: Lit, then_l: Lit, else_l: Lit) -> Lit {
        if then_l == else_l {
            return then_l;
        }
        if cond == self.const_lit(true) {
            return then_l;
        }
        if cond == self.const_lit(false) {
            return else_l;
        }
        let o = self.fresh();
        self.emit(&[cond.negate(), then_l.negate(), o]);
        self.emit(&[cond.negate(), then_l, o.negate()]);
        self.emit(&[cond, else_l.negate(), o]);
        self.emit(&[cond, else_l, o.negate()]);
        o
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let ab = self.xor_gate(a, b);
        let sum = self.xor_gate(ab, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(ab, cin);
        let cout = self.or_gate(c1, c2);
        (sum, cout)
    }

    /// Ripple-carry addition; returns (sum bits, carry out).
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (sum, cout) = self.full_adder(a[i], b[i], carry);
            out.push(sum);
            carry = cout;
        }
        (out, carry)
    }

    fn negate_bv(&mut self, a: &[Lit]) -> Vec<Lit> {
        let not_a: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let zeros = vec![self.const_lit(false); a.len()];
        let one = self.const_lit(true);
        self.adder(&not_a, &zeros, one).0
    }

    fn sub(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
        // a - b = a + ~b + 1; the final carry is 1 iff a >= b (unsigned).
        let not_b: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let one = self.const_lit(true);
        self.adder(a, &not_b, one)
    }

    fn mul(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.const_lit(false); w];
        for i in 0..w {
            // addend = (b << i) AND-ed with a[i], truncated to w bits.
            let mut addend = vec![self.const_lit(false); w];
            for j in 0..(w - i) {
                addend[i + j] = self.and_gate(a[i], b[j]);
            }
            let zero = self.const_lit(false);
            acc = self.adder(&acc, &addend, zero).0;
        }
        acc
    }

    fn shift(&mut self, a: &[Lit], amount: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let stages = usize::BITS - (w - 1).leading_zeros(); // log2(w)
        let fill = match kind {
            ShiftKind::Shl | ShiftKind::Lshr => self.const_lit(false),
            ShiftKind::Ashr => a[w - 1],
        };
        let mut current: Vec<Lit> = a.to_vec();
        for (stage, &sel) in amount.iter().enumerate().take(stages as usize) {
            let dist = 1usize << stage;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = match kind {
                    ShiftKind::Shl => {
                        if i >= dist {
                            current[i - dist]
                        } else {
                            fill
                        }
                    }
                    ShiftKind::Lshr | ShiftKind::Ashr => {
                        if i + dist < w {
                            current[i + dist]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.mux_gate(sel, shifted, current[i]));
            }
            current = next;
        }
        // If any shift bit at or above log2(w) is set, the result saturates.
        let mut overshoot = self.const_lit(false);
        for &bit in amount.iter().skip(stages as usize) {
            overshoot = self.or_gate(overshoot, bit);
        }
        let saturated: Vec<Lit> = (0..w).map(|_| fill).collect();
        (0..w)
            .map(|i| self.mux_gate(overshoot, saturated[i], current[i]))
            .collect()
    }

    /// Restoring unsigned division; returns (quotient, remainder) with the
    /// SMT-LIB convention for division by zero.
    fn udiv_urem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let mut remainder = vec![self.const_lit(false); w];
        let mut quotient = vec![self.const_lit(false); w];
        for i in (0..w).rev() {
            // remainder = (remainder << 1) | a[i]
            remainder.rotate_right(1);
            remainder[0] = a[i];
            // ge = remainder >= b  (unsigned), diff = remainder - b
            let (diff, carry) = self.sub(&remainder, b);
            quotient[i] = carry;
            remainder = (0..w)
                .map(|k| self.mux_gate(carry, diff[k], remainder[k]))
                .collect();
        }
        // Division by zero: quotient = all ones, remainder = a.
        let b_zero = self.is_zero(b);
        let ones = vec![self.const_lit(true); w];
        let q = (0..w)
            .map(|k| self.mux_gate(b_zero, ones[k], quotient[k]))
            .collect();
        let r = (0..w)
            .map(|k| self.mux_gate(b_zero, a[k], remainder[k]))
            .collect();
        (q, r)
    }

    fn is_zero(&mut self, a: &[Lit]) -> Lit {
        let mut any = self.const_lit(false);
        for &bit in a {
            any = self.or_gate(any, bit);
        }
        any.negate()
    }

    fn eq_bv(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut all = self.const_lit(true);
        for i in 0..a.len() {
            let same = self.xor_gate(a[i], b[i]).negate();
            all = self.and_gate(all, same);
        }
        all
    }

    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  iff  a - b underflows  iff  carry out of (a + ~b + 1) is 0.
        let (_, carry) = self.sub(a, b);
        carry.negate()
    }

    fn slt(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let w = a.len();
        let sa = a[w - 1];
        let sb = b[w - 1];
        let sign_differs = self.xor_gate(sa, sb);
        // If signs differ, a < b iff a is negative. Otherwise use unsigned.
        let unsigned = self.ult(a, b);
        self.mux_gate(sign_differs, sa, unsigned)
    }

    fn abs(&mut self, a: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let sign = a[w - 1];
        let neg = self.negate_bv(a);
        (0..w).map(|i| self.mux_gate(sign, neg[i], a[i])).collect()
    }

    // ---- term lowering ---------------------------------------------------------

    /// Lowers a term (memoized).
    pub fn blast(&mut self, term: TermId) -> Result<Bits, BlastError> {
        if let Some(bits) = self.cache.get(&term) {
            // An instance-cache hit on a term first blasted before the
            // active recording started means the recorded stream would
            // silently depend on outside state — unless every literal in
            // the cached bits is already local to the recording (constants
            // over the true literal, in practice), in which case a replay
            // reproduces them faithfully.
            if let Some(rec) = &mut self.recorder {
                if !rec.recorded_terms.contains(&term) {
                    let context_free = match bits {
                        Bits::Bool(l) => rec.local_of.contains_key(&l.var()),
                        Bits::Bv(v) => v.iter().all(|l| rec.local_of.contains_key(&l.var())),
                    };
                    if !context_free {
                        rec.valid = false;
                    }
                }
            }
            return Ok(bits.clone());
        }
        if let Some(rec) = &mut self.recorder {
            rec.recorded_terms.insert(term);
        }
        let data = self.ctx.term(term).clone();
        let arg = |i: usize| data.args[i];
        let result = match &data.op {
            Op::BoolConst(b) => Bits::Bool(self.const_lit(*b)),
            Op::BvConst { value, width } => {
                let bits = (0..*width)
                    .map(|i| self.const_lit((value >> i) & 1 == 1))
                    .collect();
                Bits::Bv(bits)
            }
            Op::Var { name, sort } => match sort {
                Sort::Bool => {
                    let lit = match self.var_bools.get(name) {
                        Some(&lit) => {
                            // Bound before this recording started: the
                            // stream is not self-contained.
                            if let Some(rec) = &mut self.recorder {
                                rec.valid = false;
                            }
                            lit
                        }
                        None => {
                            if let Some(rec) = &mut self.recorder {
                                rec.inputs.push(InputSlot {
                                    kind: InputKind::Bool,
                                    first_local: rec.next_local,
                                });
                            }
                            let lit = Lit::pos(self.fresh_var());
                            self.var_bools.insert(name.clone(), lit);
                            lit
                        }
                    };
                    Bits::Bool(lit)
                }
                Sort::BitVec(w) => {
                    if !self.var_bits.contains_key(name) {
                        if let Some(rec) = &mut self.recorder {
                            rec.inputs.push(InputSlot {
                                kind: InputKind::Bv(*w),
                                first_local: rec.next_local,
                            });
                        }
                        let bits: Vec<Lit> = (0..*w).map(|_| Lit::pos(self.fresh_var())).collect();
                        self.var_bits.insert(name.clone(), bits);
                    } else if let Some(rec) = &mut self.recorder {
                        rec.valid = false;
                    }
                    Bits::Bv(self.var_bits[name].clone())
                }
            },
            Op::Not => {
                let a = self.blast(arg(0))?.try_bool()?;
                Bits::Bool(a.negate())
            }
            Op::And => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.and_gate(a, b))
            }
            Op::Or => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.or_gate(a, b))
            }
            Op::Xor => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.xor_gate(a, b))
            }
            Op::Implies => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.or_gate(a.negate(), b))
            }
            Op::Ite => {
                let c = self.blast(arg(0))?.try_bool()?;
                let t = self.blast(arg(1))?;
                let e = self.blast(arg(2))?;
                match (t, e) {
                    (Bits::Bool(t), Bits::Bool(e)) => Bits::Bool(self.mux_gate(c, t, e)),
                    (Bits::Bv(t), Bits::Bv(e)) => {
                        Bits::Bv((0..t.len()).map(|i| self.mux_gate(c, t[i], e[i])).collect())
                    }
                    _ => return Err(BlastError::MixedIteBranches),
                }
            }
            Op::Eq => {
                let a = self.blast(arg(0))?;
                let b = self.blast(arg(1))?;
                match (a, b) {
                    (Bits::Bool(a), Bits::Bool(b)) => Bits::Bool(self.xor_gate(a, b).negate()),
                    (Bits::Bv(a), Bits::Bv(b)) => Bits::Bool(self.eq_bv(&a, &b)),
                    _ => return Err(BlastError::MixedEqOperands),
                }
            }
            Op::BvAdd => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let zero = self.const_lit(false);
                Bits::Bv(self.adder(&a, &b, zero).0)
            }
            Op::BvSub => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.sub(&a, &b).0)
            }
            Op::BvMul => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.mul(&a, &b))
            }
            Op::BvNeg => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                Bits::Bv(self.negate_bv(&a))
            }
            Op::BvAnd | Op::BvOr | Op::BvXor => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let bits = (0..a.len())
                    .map(|i| match data.op {
                        Op::BvAnd => self.and_gate(a[i], b[i]),
                        Op::BvOr => self.or_gate(a[i], b[i]),
                        _ => self.xor_gate(a[i], b[i]),
                    })
                    .collect();
                Bits::Bv(bits)
            }
            Op::BvNot => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                Bits::Bv(a.iter().map(|l| l.negate()).collect())
            }
            Op::BvShl | Op::BvLshr | Op::BvAshr => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let kind = match data.op {
                    Op::BvShl => ShiftKind::Shl,
                    Op::BvLshr => ShiftKind::Lshr,
                    _ => ShiftKind::Ashr,
                };
                Bits::Bv(self.shift(&a, &b, kind))
            }
            Op::BvUdiv => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.udiv_urem(&a, &b).0)
            }
            Op::BvUrem => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.udiv_urem(&a, &b).1)
            }
            Op::BvSdiv | Op::BvSrem => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let w = a.len();
                let abs_a = self.abs(&a);
                let abs_b = self.abs(&b);
                let (q, r) = self.udiv_urem(&abs_a, &abs_b);
                if data.op == Op::BvSdiv {
                    // Quotient is negative when operand signs differ.
                    let neg_q = self.negate_bv(&q);
                    let differ = self.xor_gate(a[w - 1], b[w - 1]);
                    Bits::Bv(
                        (0..w)
                            .map(|i| self.mux_gate(differ, neg_q[i], q[i]))
                            .collect(),
                    )
                } else {
                    // Remainder takes the dividend's sign (C semantics).
                    let neg_r = self.negate_bv(&r);
                    let a_neg = a[w - 1];
                    Bits::Bv(
                        (0..w)
                            .map(|i| self.mux_gate(a_neg, neg_r[i], r[i]))
                            .collect(),
                    )
                }
            }
            Op::BvUlt => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bool(self.ult(&a, &b))
            }
            Op::BvSlt => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bool(self.slt(&a, &b))
            }
            Op::BvSle => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let lt = self.slt(&a, &b);
                let eq = self.eq_bv(&a, &b);
                Bits::Bool(self.or_gate(lt, eq))
            }
        };
        self.cache.insert(term, result.clone());
        Ok(result)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Shl,
    Lshr,
    Ashr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatBudget, SatResult};
    use crate::term::sign_extend;

    /// Checks that `lhs op rhs == expected` is satisfiable and its negation
    /// is unsatisfiable (i.e. the circuit computes the expected value).
    fn assert_circuit(build: impl Fn(&mut Context) -> (TermId, u64)) {
        let mut ctx = Context::new();
        let (term, expected) = build(&mut ctx);
        let width = ctx.sort(term).width();
        let expected_term = ctx.bv_const(expected, width);
        // The equality must be valid: its negation is UNSAT.
        let eq = ctx.eq(term, expected_term);
        let neq = ctx.not(eq);

        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(neq).unwrap();
        assert_eq!(
            sat.solve(&SatBudget::default()),
            SatResult::Unsat,
            "circuit disagrees with the expected constant"
        );
    }

    /// Builds the term with fresh variables constrained to constants via
    /// assertions, so the circuit (not the constant folder) is exercised.
    fn var_pair(ctx: &mut Context, a: i32, b: i32) -> (TermId, TermId, TermId) {
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let ca = ctx.bv32(a);
        let cb = ctx.bv32(b);
        let ex = ctx.eq(x, ca);
        let ey = ctx.eq(y, cb);
        let both = ctx.and(ex, ey);
        (x, y, both)
    }

    fn check_binop(
        a: i32,
        b: i32,
        expected: i64,
        op: impl Fn(&mut Context, TermId, TermId) -> TermId,
    ) {
        let mut ctx = Context::new();
        let (x, y, pre) = var_pair(&mut ctx, a, b);
        let result = op(&mut ctx, x, y);
        let expected_t = ctx.bv_const(expected as u64, 32);
        let eq = ctx.eq(result, expected_t);
        let neq = ctx.not(eq);
        let query = ctx.and(pre, neq);

        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(query).unwrap();
        assert_eq!(
            sat.solve(&SatBudget::default()),
            SatResult::Unsat,
            "{} op {} should equal {}",
            a,
            b,
            expected
        );
    }

    #[test]
    fn adder_and_subtractor_circuits() {
        check_binop(13, 29, 42, |c, a, b| c.bv_add(a, b));
        check_binop(-5, 3, -2, |c, a, b| c.bv_add(a, b));
        check_binop(i32::MAX, 1, i32::MIN as i64, |c, a, b| c.bv_add(a, b));
        check_binop(10, 4, 6, |c, a, b| c.bv_sub(a, b));
        check_binop(3, 10, -7, |c, a, b| c.bv_sub(a, b));
    }

    #[test]
    fn multiplier_circuit() {
        check_binop(7, 6, 42, |c, a, b| c.bv_mul(a, b));
        check_binop(-3, 5, -15, |c, a, b| c.bv_mul(a, b));
        check_binop(65536, 65536, 0, |c, a, b| c.bv_mul(a, b));
    }

    #[test]
    fn division_circuits() {
        check_binop(42, 5, 8, |c, a, b| c.bv_sdiv(a, b));
        check_binop(42, 5, 2, |c, a, b| c.bv_srem(a, b));
        check_binop(-7, 2, -3, |c, a, b| c.bv_sdiv(a, b));
        check_binop(-7, 2, -1, |c, a, b| c.bv_srem(a, b));
        check_binop(7, -2, -3, |c, a, b| c.bv_sdiv(a, b));
        check_binop(100, 8, 4, |c, a, b| c.bv_srem(a, b));
    }

    #[test]
    fn shift_circuits() {
        check_binop(1, 5, 32, |c, a, b| c.bv_shl(a, b));
        check_binop(-8, 1, -4, |c, a, b| c.bv_ashr(a, b));
        check_binop(-8, 1, ((-8i32 as u32) >> 1) as i64, |c, a, b| {
            c.bv_lshr(a, b)
        });
        check_binop(1, 40, 0, |c, a, b| c.bv_shl(a, b));
    }

    #[test]
    fn comparison_circuits() {
        // slt(-1, 1) must be true: assert the negation and expect UNSAT.
        let mut ctx = Context::new();
        let (x, y, pre) = var_pair(&mut ctx, -1, 1);
        let lt = ctx.bv_slt(x, y);
        let not_lt = ctx.not(lt);
        let query = ctx.and(pre, not_lt);
        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(query).unwrap();
        assert_eq!(sat.solve(&SatBudget::default()), SatResult::Unsat);

        // ult(-1, 1) must be false (0xffffffff is large unsigned).
        let mut ctx = Context::new();
        let (x, y, pre) = var_pair(&mut ctx, -1, 1);
        let lt = ctx.bv_ult(x, y);
        let query = ctx.and(pre, lt);
        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(query).unwrap();
        assert_eq!(sat.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn model_extraction_finds_solution() {
        // x + y == 10 and x - y == 4  =>  x = 7, y = 3.
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let sum = ctx.bv_add(x, y);
        let diff = ctx.bv_sub(x, y);
        let ten = ctx.bv32(10);
        let four = ctx.bv32(4);
        let c1 = ctx.eq(sum, ten);
        let c2 = ctx.eq(diff, four);
        let query = ctx.and(c1, c2);

        let mut sat = SatSolver::new();
        let var_bits = {
            let mut blaster = BitBlaster::new(&ctx, &mut sat);
            blaster.assert(query).unwrap();
            blaster.var_bits().clone()
        };
        assert_eq!(sat.solve(&SatBudget::default()), SatResult::Sat);

        let read = |name: &str, sat: &SatSolver| -> i64 {
            let bits = &var_bits[name];
            let mut value: u64 = 0;
            for (i, lit) in bits.iter().enumerate() {
                let bit = sat.model_value(lit.var()) ^ lit.is_neg();
                if bit {
                    value |= 1 << i;
                }
            }
            sign_extend(value, 32)
        };
        let xv = read("x", &sat);
        let yv = read("y", &sat);
        assert_eq!(xv + yv, 10);
        assert_eq!(xv - yv, 4);
    }

    #[test]
    fn ite_selects_branch() {
        assert_circuit(|ctx| {
            let c = ctx.bool_const(true);
            let a = ctx.bv32(5);
            let b = ctx.bv32(9);
            (ctx.ite(c, a, b), 5)
        });
    }

    /// A nontrivial query over the given variable names: the validity-style
    /// assertion `!((x + y) - y == x)` (UNSAT once solved, and cheap — no
    /// multipliers, so the CDCL search stays small).
    fn distributivity_query(ctx: &mut Context, x: &str, y: &str) -> TermId {
        let x = ctx.bv_var(x, 32);
        let y = ctx.bv_var(y, 32);
        let sum = ctx.bv_add(x, y);
        let back = ctx.bv_sub(sum, y);
        let eq = ctx.eq(back, x);
        ctx.not(eq)
    }

    #[test]
    fn memoized_blast_is_clause_identical_to_fresh() {
        // Record the blast of a query in one solver, then replay it for an
        // alpha-renamed copy in a second solver; a third solver blasts the
        // renamed copy fresh. Replayed and fresh CNF must be bit-identical.
        let mut memo = BlastCache::new();

        let mut ctx_a = Context::new();
        let q_a = distributivity_query(&mut ctx_a, "x", "y");
        let mut sat_a = SatSolver::new();
        let mut bl_a = BitBlaster::new(&ctx_a, &mut sat_a);
        bl_a.assert_with_cache(q_a, &mut memo).unwrap();
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.len(), 1, "self-contained blast must be recorded");

        let mut ctx_b = Context::new();
        let q_b = distributivity_query(&mut ctx_b, "p", "q");
        let mut sat_b = SatSolver::new();
        let mut bl_b = BitBlaster::new(&ctx_b, &mut sat_b);
        bl_b.assert_with_cache(q_b, &mut memo).unwrap();
        assert_eq!(memo.hits(), 1, "alpha-renamed query must replay");

        let mut sat_c = SatSolver::new();
        let mut bl_c = BitBlaster::new(&ctx_b, &mut sat_c);
        bl_c.assert(q_b).unwrap();

        assert_eq!(
            sat_b.cnf_fingerprint(),
            sat_c.cnf_fingerprint(),
            "replayed CNF must be bit-identical to a fresh blast"
        );
        assert_eq!(sat_b.solve(&SatBudget::default()), SatResult::Unsat);
        assert_eq!(sat_c.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn replay_binds_variables_for_model_extraction() {
        // x + y == 10 && x - y == 4, recorded under one naming, replayed
        // under another; the replayed solver must still produce a model
        // through the replay-bound variable bits.
        let build = |ctx: &mut Context, x: &str, y: &str| {
            let x = ctx.bv_var(x, 32);
            let y = ctx.bv_var(y, 32);
            let sum = ctx.bv_add(x, y);
            let diff = ctx.bv_sub(x, y);
            let ten = ctx.bv32(10);
            let four = ctx.bv32(4);
            let c1 = ctx.eq(sum, ten);
            let c2 = ctx.eq(diff, four);
            ctx.and(c1, c2)
        };
        let mut memo = BlastCache::new();

        let mut ctx_a = Context::new();
        let q_a = build(&mut ctx_a, "x", "y");
        let mut sat_a = SatSolver::new();
        let mut bl_a = BitBlaster::new(&ctx_a, &mut sat_a);
        bl_a.assert_with_cache(q_a, &mut memo).unwrap();

        let mut ctx_b = Context::new();
        let q_b = build(&mut ctx_b, "u", "v");
        let mut sat_b = SatSolver::new();
        let var_bits = {
            let mut bl_b = BitBlaster::new(&ctx_b, &mut sat_b);
            bl_b.assert_with_cache(q_b, &mut memo).unwrap();
            bl_b.var_bits().clone()
        };
        assert_eq!(memo.hits(), 1);
        assert_eq!(sat_b.solve(&SatBudget::default()), SatResult::Sat);

        let read = |name: &str| -> i64 {
            let bits = &var_bits[name];
            let mut value: u64 = 0;
            for (i, lit) in bits.iter().enumerate() {
                if sat_b.model_value(lit.var()) ^ lit.is_neg() {
                    value |= 1 << i;
                }
            }
            sign_extend(value, 32)
        };
        assert_eq!(read("u") + read("v"), 10);
        assert_eq!(read("u") - read("v"), 4);
    }

    #[test]
    fn replay_refuses_when_variables_already_bound() {
        // Sharing a variable with an earlier assertion must force a fresh
        // blast (binding the replayed slots to new vars would decouple the
        // two assertions).
        let mut memo = BlastCache::new();

        let mut ctx_a = Context::new();
        let q_a = distributivity_query(&mut ctx_a, "x", "y");
        let mut sat_a = SatSolver::new();
        let mut bl_a = BitBlaster::new(&ctx_a, &mut sat_a);
        bl_a.assert_with_cache(q_a, &mut memo).unwrap();

        let mut ctx_b = Context::new();
        let x = ctx_b.bv_var("x", 32);
        let zero = ctx_b.bv32(0);
        let pin = ctx_b.eq(x, zero);
        let q_b = distributivity_query(&mut ctx_b, "x", "y");
        let mut sat_b = SatSolver::new();
        let mut bl_b = BitBlaster::new(&ctx_b, &mut sat_b);
        bl_b.assert(pin).unwrap();
        bl_b.assert_with_cache(q_b, &mut memo).unwrap();
        assert_eq!(memo.hits(), 0, "bound variable must block replay");
        assert_eq!(memo.misses(), 2);
        assert_eq!(sat_b.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn shared_subterm_queries_are_not_recorded_as_self_contained() {
        // Two assertions sharing a subterm: the second blast hits the
        // instance cache for the shared part, so its stream depends on the
        // first and must not be memoized.
        let mut memo = BlastCache::new();
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let sum = ctx.bv_add(x, y);
        let ten = ctx.bv32(10);
        let four = ctx.bv32(4);
        let c1 = ctx.eq(sum, ten);
        let diff = ctx.bv_sub(sum, y);
        let c2 = ctx.eq(diff, four);

        let mut sat = SatSolver::new();
        let mut bl = BitBlaster::new(&ctx, &mut sat);
        bl.assert_with_cache(c1, &mut memo).unwrap();
        assert_eq!(memo.len(), 1);
        bl.assert_with_cache(c2, &mut memo).unwrap();
        assert_eq!(memo.len(), 1, "context-dependent blast must not record");
        assert_eq!(sat.solve(&SatBudget::default()), SatResult::Sat);
    }

    #[test]
    fn memo_survives_solver_state_roundtrip() {
        // Record, detach with into_state, resume against a fresh SAT
        // solver: the memo (held outside) still replays and the resumed
        // blaster keeps its variable bindings.
        let mut memo = BlastCache::new();
        let mut ctx = Context::new();
        let q1 = distributivity_query(&mut ctx, "x", "y");

        let mut sat1 = SatSolver::new();
        let bl = {
            let mut bl = BitBlaster::new(&ctx, &mut sat1);
            bl.assert_with_cache(q1, &mut memo).unwrap();
            bl.into_state()
        };
        assert!(bl.var_bits().contains_key("x"));

        let q2 = distributivity_query(&mut ctx, "p", "q");
        let mut bl2 = BitBlaster::resume(&ctx, &mut sat1, bl);
        bl2.assert_with_cache(q2, &mut memo).unwrap();
        assert_eq!(memo.hits(), 1);
        assert!(bl2.var_bits().contains_key("p"));
        assert_eq!(sat1.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn blast_cache_evicts_in_insertion_order() {
        // Three structurally distinct queries through a capacity-2 cache.
        let mut memo = BlastCache::with_capacity(2);
        let mut ctx = Context::new();
        let queries: Vec<TermId> = (0..3u64)
            .map(|k| {
                let x = ctx.bv_var(format!("x{k}"), 32);
                let c = ctx.bv_const(k, 32);
                let sum = ctx.bv_add(x, c);
                let k2 = ctx.bv_const(k + 1, 32);
                ctx.eq(sum, k2)
            })
            .collect();
        let mut sat = SatSolver::new();
        let mut bl = BitBlaster::new(&ctx, &mut sat);
        for &q in &queries {
            bl.assert_with_cache(q, &mut memo).unwrap();
        }
        assert_eq!(memo.len(), 2, "oldest entry must have been evicted");
        assert_eq!(memo.misses(), 3);
    }
}
