//! Tseitin bit-blasting of QF_BV terms into CNF.
//!
//! Every bitvector term is lowered to a vector of SAT literals (LSB first);
//! every boolean term to a single literal. The encodings are the textbook
//! ones: ripple-carry adders, shift-and-add multipliers, barrel shifters,
//! restoring dividers and subtract-based comparators.

use crate::sat::{Lit, SatSolver};
use crate::term::{Context, Op, Sort, TermId};
use std::collections::HashMap;
use std::fmt;

/// A sort/encoding mismatch discovered while lowering a term.
///
/// These used to be `panic!`s; as typed errors they surface as
/// [`crate::CheckResult::Unknown`] instead of aborting a verification worker
/// thread mid-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlastError {
    /// A boolean encoding was required but a bitvector was produced.
    ExpectedBool,
    /// A bitvector encoding was required but a boolean was produced.
    ExpectedBitVec,
    /// The two branches of an if-then-else lower to different encodings.
    MixedIteBranches,
    /// The two operands of an equality lower to different encodings.
    MixedEqOperands,
}

impl fmt::Display for BlastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            BlastError::ExpectedBool => "expected a boolean encoding, found a bitvector",
            BlastError::ExpectedBitVec => "expected a bitvector encoding, found a boolean",
            BlastError::MixedIteBranches => "ite branches have different encodings",
            BlastError::MixedEqOperands => "eq operands have different encodings",
        };
        write!(f, "bit-blasting failed: {}", msg)
    }
}

impl std::error::Error for BlastError {}

/// The bit-level encoding of a term.
#[derive(Debug, Clone)]
pub enum Bits {
    /// A boolean term.
    Bool(Lit),
    /// A bitvector term, least-significant bit first.
    Bv(Vec<Lit>),
}

impl Bits {
    /// The literal of a boolean encoding.
    pub fn try_bool(&self) -> Result<Lit, BlastError> {
        match self {
            Bits::Bool(l) => Ok(*l),
            Bits::Bv(_) => Err(BlastError::ExpectedBool),
        }
    }

    /// The literals of a bitvector encoding, least-significant first.
    pub fn try_bv(&self) -> Result<&[Lit], BlastError> {
        match self {
            Bits::Bv(bits) => Ok(bits),
            Bits::Bool(_) => Err(BlastError::ExpectedBitVec),
        }
    }
}

/// Bit-blasts terms from a [`Context`] into a [`SatSolver`].
pub struct BitBlaster<'a> {
    ctx: &'a Context,
    sat: &'a mut SatSolver,
    cache: HashMap<TermId, Bits>,
    true_lit: Lit,
    /// Bit literals of every free bitvector variable, for model extraction.
    var_bits: HashMap<String, Vec<Lit>>,
    /// Literal of every free boolean variable.
    var_bools: HashMap<String, Lit>,
}

impl<'a> BitBlaster<'a> {
    /// Creates a bit-blaster targeting the given SAT solver.
    pub fn new(ctx: &'a Context, sat: &'a mut SatSolver) -> Self {
        let t = sat.new_var();
        let true_lit = Lit::pos(t);
        sat.add_clause(&[true_lit]);
        BitBlaster {
            ctx,
            sat,
            cache: HashMap::new(),
            true_lit,
            var_bits: HashMap::new(),
            var_bools: HashMap::new(),
        }
    }

    /// The literals of each free bitvector variable encountered so far.
    pub fn var_bits(&self) -> &HashMap<String, Vec<Lit>> {
        &self.var_bits
    }

    /// The literal of each free boolean variable encountered so far.
    pub fn var_bools(&self) -> &HashMap<String, Lit> {
        &self.var_bools
    }

    /// Asserts a boolean term.
    pub fn assert(&mut self, term: TermId) -> Result<(), BlastError> {
        let lit = self.blast(term)?.try_bool()?;
        self.sat.add_clause(&[lit]);
        Ok(())
    }

    fn const_lit(&self, value: bool) -> Lit {
        if value {
            self.true_lit
        } else {
            self.true_lit.negate()
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    // ---- gates ---------------------------------------------------------------

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.const_lit(false) || b == self.const_lit(false) {
            return self.const_lit(false);
        }
        if a == self.const_lit(true) {
            return b;
        }
        if b == self.const_lit(true) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.const_lit(false);
        }
        let o = self.fresh();
        self.sat.add_clause(&[a.negate(), b.negate(), o]);
        self.sat.add_clause(&[a, o.negate()]);
        self.sat.add_clause(&[b, o.negate()]);
        o
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.const_lit(false) {
            return b;
        }
        if b == self.const_lit(false) {
            return a;
        }
        if a == self.const_lit(true) {
            return b.negate();
        }
        if b == self.const_lit(true) {
            return a.negate();
        }
        if a == b {
            return self.const_lit(false);
        }
        if a == b.negate() {
            return self.const_lit(true);
        }
        let o = self.fresh();
        self.sat.add_clause(&[a.negate(), b.negate(), o.negate()]);
        self.sat.add_clause(&[a, b, o.negate()]);
        self.sat.add_clause(&[a.negate(), b, o]);
        self.sat.add_clause(&[a, b.negate(), o]);
        o
    }

    fn mux_gate(&mut self, cond: Lit, then_l: Lit, else_l: Lit) -> Lit {
        if then_l == else_l {
            return then_l;
        }
        if cond == self.const_lit(true) {
            return then_l;
        }
        if cond == self.const_lit(false) {
            return else_l;
        }
        let o = self.fresh();
        self.sat.add_clause(&[cond.negate(), then_l.negate(), o]);
        self.sat.add_clause(&[cond.negate(), then_l, o.negate()]);
        self.sat.add_clause(&[cond, else_l.negate(), o]);
        self.sat.add_clause(&[cond, else_l, o.negate()]);
        o
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let ab = self.xor_gate(a, b);
        let sum = self.xor_gate(ab, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(ab, cin);
        let cout = self.or_gate(c1, c2);
        (sum, cout)
    }

    /// Ripple-carry addition; returns (sum bits, carry out).
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (sum, cout) = self.full_adder(a[i], b[i], carry);
            out.push(sum);
            carry = cout;
        }
        (out, carry)
    }

    fn negate_bv(&mut self, a: &[Lit]) -> Vec<Lit> {
        let not_a: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let zeros = vec![self.const_lit(false); a.len()];
        let one = self.const_lit(true);
        self.adder(&not_a, &zeros, one).0
    }

    fn sub(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
        // a - b = a + ~b + 1; the final carry is 1 iff a >= b (unsigned).
        let not_b: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let one = self.const_lit(true);
        self.adder(a, &not_b, one)
    }

    fn mul(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.const_lit(false); w];
        for i in 0..w {
            // addend = (b << i) AND-ed with a[i], truncated to w bits.
            let mut addend = vec![self.const_lit(false); w];
            for j in 0..(w - i) {
                addend[i + j] = self.and_gate(a[i], b[j]);
            }
            let zero = self.const_lit(false);
            acc = self.adder(&acc, &addend, zero).0;
        }
        acc
    }

    fn shift(&mut self, a: &[Lit], amount: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let stages = usize::BITS - (w - 1).leading_zeros(); // log2(w)
        let fill = match kind {
            ShiftKind::Shl | ShiftKind::Lshr => self.const_lit(false),
            ShiftKind::Ashr => a[w - 1],
        };
        let mut current: Vec<Lit> = a.to_vec();
        for (stage, &sel) in amount.iter().enumerate().take(stages as usize) {
            let dist = 1usize << stage;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = match kind {
                    ShiftKind::Shl => {
                        if i >= dist {
                            current[i - dist]
                        } else {
                            fill
                        }
                    }
                    ShiftKind::Lshr | ShiftKind::Ashr => {
                        if i + dist < w {
                            current[i + dist]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.mux_gate(sel, shifted, current[i]));
            }
            current = next;
        }
        // If any shift bit at or above log2(w) is set, the result saturates.
        let mut overshoot = self.const_lit(false);
        for &bit in amount.iter().skip(stages as usize) {
            overshoot = self.or_gate(overshoot, bit);
        }
        let saturated: Vec<Lit> = (0..w).map(|_| fill).collect();
        (0..w)
            .map(|i| self.mux_gate(overshoot, saturated[i], current[i]))
            .collect()
    }

    /// Restoring unsigned division; returns (quotient, remainder) with the
    /// SMT-LIB convention for division by zero.
    fn udiv_urem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let mut remainder = vec![self.const_lit(false); w];
        let mut quotient = vec![self.const_lit(false); w];
        for i in (0..w).rev() {
            // remainder = (remainder << 1) | a[i]
            remainder.rotate_right(1);
            remainder[0] = a[i];
            // ge = remainder >= b  (unsigned), diff = remainder - b
            let (diff, carry) = self.sub(&remainder, b);
            quotient[i] = carry;
            remainder = (0..w)
                .map(|k| self.mux_gate(carry, diff[k], remainder[k]))
                .collect();
        }
        // Division by zero: quotient = all ones, remainder = a.
        let b_zero = self.is_zero(b);
        let ones = vec![self.const_lit(true); w];
        let q = (0..w)
            .map(|k| self.mux_gate(b_zero, ones[k], quotient[k]))
            .collect();
        let r = (0..w)
            .map(|k| self.mux_gate(b_zero, a[k], remainder[k]))
            .collect();
        (q, r)
    }

    fn is_zero(&mut self, a: &[Lit]) -> Lit {
        let mut any = self.const_lit(false);
        for &bit in a {
            any = self.or_gate(any, bit);
        }
        any.negate()
    }

    fn eq_bv(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut all = self.const_lit(true);
        for i in 0..a.len() {
            let same = self.xor_gate(a[i], b[i]).negate();
            all = self.and_gate(all, same);
        }
        all
    }

    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  iff  a - b underflows  iff  carry out of (a + ~b + 1) is 0.
        let (_, carry) = self.sub(a, b);
        carry.negate()
    }

    fn slt(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let w = a.len();
        let sa = a[w - 1];
        let sb = b[w - 1];
        let sign_differs = self.xor_gate(sa, sb);
        // If signs differ, a < b iff a is negative. Otherwise use unsigned.
        let unsigned = self.ult(a, b);
        self.mux_gate(sign_differs, sa, unsigned)
    }

    fn abs(&mut self, a: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let sign = a[w - 1];
        let neg = self.negate_bv(a);
        (0..w).map(|i| self.mux_gate(sign, neg[i], a[i])).collect()
    }

    // ---- term lowering ---------------------------------------------------------

    /// Lowers a term (memoized).
    pub fn blast(&mut self, term: TermId) -> Result<Bits, BlastError> {
        if let Some(bits) = self.cache.get(&term) {
            return Ok(bits.clone());
        }
        let data = self.ctx.term(term).clone();
        let arg = |i: usize| data.args[i];
        let result = match &data.op {
            Op::BoolConst(b) => Bits::Bool(self.const_lit(*b)),
            Op::BvConst { value, width } => {
                let bits = (0..*width)
                    .map(|i| self.const_lit((value >> i) & 1 == 1))
                    .collect();
                Bits::Bv(bits)
            }
            Op::Var { name, sort } => match sort {
                Sort::Bool => {
                    let lit = *self
                        .var_bools
                        .entry(name.clone())
                        .or_insert_with(|| Lit::pos(self.sat.new_var()));
                    Bits::Bool(lit)
                }
                Sort::BitVec(w) => {
                    if !self.var_bits.contains_key(name) {
                        let bits: Vec<Lit> =
                            (0..*w).map(|_| Lit::pos(self.sat.new_var())).collect();
                        self.var_bits.insert(name.clone(), bits);
                    }
                    Bits::Bv(self.var_bits[name].clone())
                }
            },
            Op::Not => {
                let a = self.blast(arg(0))?.try_bool()?;
                Bits::Bool(a.negate())
            }
            Op::And => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.and_gate(a, b))
            }
            Op::Or => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.or_gate(a, b))
            }
            Op::Xor => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.xor_gate(a, b))
            }
            Op::Implies => {
                let a = self.blast(arg(0))?.try_bool()?;
                let b = self.blast(arg(1))?.try_bool()?;
                Bits::Bool(self.or_gate(a.negate(), b))
            }
            Op::Ite => {
                let c = self.blast(arg(0))?.try_bool()?;
                let t = self.blast(arg(1))?;
                let e = self.blast(arg(2))?;
                match (t, e) {
                    (Bits::Bool(t), Bits::Bool(e)) => Bits::Bool(self.mux_gate(c, t, e)),
                    (Bits::Bv(t), Bits::Bv(e)) => {
                        Bits::Bv((0..t.len()).map(|i| self.mux_gate(c, t[i], e[i])).collect())
                    }
                    _ => return Err(BlastError::MixedIteBranches),
                }
            }
            Op::Eq => {
                let a = self.blast(arg(0))?;
                let b = self.blast(arg(1))?;
                match (a, b) {
                    (Bits::Bool(a), Bits::Bool(b)) => Bits::Bool(self.xor_gate(a, b).negate()),
                    (Bits::Bv(a), Bits::Bv(b)) => Bits::Bool(self.eq_bv(&a, &b)),
                    _ => return Err(BlastError::MixedEqOperands),
                }
            }
            Op::BvAdd => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let zero = self.const_lit(false);
                Bits::Bv(self.adder(&a, &b, zero).0)
            }
            Op::BvSub => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.sub(&a, &b).0)
            }
            Op::BvMul => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.mul(&a, &b))
            }
            Op::BvNeg => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                Bits::Bv(self.negate_bv(&a))
            }
            Op::BvAnd | Op::BvOr | Op::BvXor => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let bits = (0..a.len())
                    .map(|i| match data.op {
                        Op::BvAnd => self.and_gate(a[i], b[i]),
                        Op::BvOr => self.or_gate(a[i], b[i]),
                        _ => self.xor_gate(a[i], b[i]),
                    })
                    .collect();
                Bits::Bv(bits)
            }
            Op::BvNot => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                Bits::Bv(a.iter().map(|l| l.negate()).collect())
            }
            Op::BvShl | Op::BvLshr | Op::BvAshr => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let kind = match data.op {
                    Op::BvShl => ShiftKind::Shl,
                    Op::BvLshr => ShiftKind::Lshr,
                    _ => ShiftKind::Ashr,
                };
                Bits::Bv(self.shift(&a, &b, kind))
            }
            Op::BvUdiv => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.udiv_urem(&a, &b).0)
            }
            Op::BvUrem => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bv(self.udiv_urem(&a, &b).1)
            }
            Op::BvSdiv | Op::BvSrem => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let w = a.len();
                let abs_a = self.abs(&a);
                let abs_b = self.abs(&b);
                let (q, r) = self.udiv_urem(&abs_a, &abs_b);
                if data.op == Op::BvSdiv {
                    // Quotient is negative when operand signs differ.
                    let neg_q = self.negate_bv(&q);
                    let differ = self.xor_gate(a[w - 1], b[w - 1]);
                    Bits::Bv(
                        (0..w)
                            .map(|i| self.mux_gate(differ, neg_q[i], q[i]))
                            .collect(),
                    )
                } else {
                    // Remainder takes the dividend's sign (C semantics).
                    let neg_r = self.negate_bv(&r);
                    let a_neg = a[w - 1];
                    Bits::Bv(
                        (0..w)
                            .map(|i| self.mux_gate(a_neg, neg_r[i], r[i]))
                            .collect(),
                    )
                }
            }
            Op::BvUlt => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bool(self.ult(&a, &b))
            }
            Op::BvSlt => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                Bits::Bool(self.slt(&a, &b))
            }
            Op::BvSle => {
                let a = self.blast(arg(0))?.try_bv()?.to_vec();
                let b = self.blast(arg(1))?.try_bv()?.to_vec();
                let lt = self.slt(&a, &b);
                let eq = self.eq_bv(&a, &b);
                Bits::Bool(self.or_gate(lt, eq))
            }
        };
        self.cache.insert(term, result.clone());
        Ok(result)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Shl,
    Lshr,
    Ashr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatBudget, SatResult};
    use crate::term::sign_extend;

    /// Checks that `lhs op rhs == expected` is satisfiable and its negation
    /// is unsatisfiable (i.e. the circuit computes the expected value).
    fn assert_circuit(build: impl Fn(&mut Context) -> (TermId, u64)) {
        let mut ctx = Context::new();
        let (term, expected) = build(&mut ctx);
        let width = ctx.sort(term).width();
        let expected_term = ctx.bv_const(expected, width);
        // The equality must be valid: its negation is UNSAT.
        let eq = ctx.eq(term, expected_term);
        let neq = ctx.not(eq);

        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(neq).unwrap();
        assert_eq!(
            sat.solve(&SatBudget::default()),
            SatResult::Unsat,
            "circuit disagrees with the expected constant"
        );
    }

    /// Builds the term with fresh variables constrained to constants via
    /// assertions, so the circuit (not the constant folder) is exercised.
    fn var_pair(ctx: &mut Context, a: i32, b: i32) -> (TermId, TermId, TermId) {
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let ca = ctx.bv32(a);
        let cb = ctx.bv32(b);
        let ex = ctx.eq(x, ca);
        let ey = ctx.eq(y, cb);
        let both = ctx.and(ex, ey);
        (x, y, both)
    }

    fn check_binop(
        a: i32,
        b: i32,
        expected: i64,
        op: impl Fn(&mut Context, TermId, TermId) -> TermId,
    ) {
        let mut ctx = Context::new();
        let (x, y, pre) = var_pair(&mut ctx, a, b);
        let result = op(&mut ctx, x, y);
        let expected_t = ctx.bv_const(expected as u64, 32);
        let eq = ctx.eq(result, expected_t);
        let neq = ctx.not(eq);
        let query = ctx.and(pre, neq);

        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(query).unwrap();
        assert_eq!(
            sat.solve(&SatBudget::default()),
            SatResult::Unsat,
            "{} op {} should equal {}",
            a,
            b,
            expected
        );
    }

    #[test]
    fn adder_and_subtractor_circuits() {
        check_binop(13, 29, 42, |c, a, b| c.bv_add(a, b));
        check_binop(-5, 3, -2, |c, a, b| c.bv_add(a, b));
        check_binop(i32::MAX, 1, i32::MIN as i64, |c, a, b| c.bv_add(a, b));
        check_binop(10, 4, 6, |c, a, b| c.bv_sub(a, b));
        check_binop(3, 10, -7, |c, a, b| c.bv_sub(a, b));
    }

    #[test]
    fn multiplier_circuit() {
        check_binop(7, 6, 42, |c, a, b| c.bv_mul(a, b));
        check_binop(-3, 5, -15, |c, a, b| c.bv_mul(a, b));
        check_binop(65536, 65536, 0, |c, a, b| c.bv_mul(a, b));
    }

    #[test]
    fn division_circuits() {
        check_binop(42, 5, 8, |c, a, b| c.bv_sdiv(a, b));
        check_binop(42, 5, 2, |c, a, b| c.bv_srem(a, b));
        check_binop(-7, 2, -3, |c, a, b| c.bv_sdiv(a, b));
        check_binop(-7, 2, -1, |c, a, b| c.bv_srem(a, b));
        check_binop(7, -2, -3, |c, a, b| c.bv_sdiv(a, b));
        check_binop(100, 8, 4, |c, a, b| c.bv_srem(a, b));
    }

    #[test]
    fn shift_circuits() {
        check_binop(1, 5, 32, |c, a, b| c.bv_shl(a, b));
        check_binop(-8, 1, -4, |c, a, b| c.bv_ashr(a, b));
        check_binop(-8, 1, ((-8i32 as u32) >> 1) as i64, |c, a, b| {
            c.bv_lshr(a, b)
        });
        check_binop(1, 40, 0, |c, a, b| c.bv_shl(a, b));
    }

    #[test]
    fn comparison_circuits() {
        // slt(-1, 1) must be true: assert the negation and expect UNSAT.
        let mut ctx = Context::new();
        let (x, y, pre) = var_pair(&mut ctx, -1, 1);
        let lt = ctx.bv_slt(x, y);
        let not_lt = ctx.not(lt);
        let query = ctx.and(pre, not_lt);
        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(query).unwrap();
        assert_eq!(sat.solve(&SatBudget::default()), SatResult::Unsat);

        // ult(-1, 1) must be false (0xffffffff is large unsigned).
        let mut ctx = Context::new();
        let (x, y, pre) = var_pair(&mut ctx, -1, 1);
        let lt = ctx.bv_ult(x, y);
        let query = ctx.and(pre, lt);
        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&ctx, &mut sat);
        blaster.assert(query).unwrap();
        assert_eq!(sat.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn model_extraction_finds_solution() {
        // x + y == 10 and x - y == 4  =>  x = 7, y = 3.
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let sum = ctx.bv_add(x, y);
        let diff = ctx.bv_sub(x, y);
        let ten = ctx.bv32(10);
        let four = ctx.bv32(4);
        let c1 = ctx.eq(sum, ten);
        let c2 = ctx.eq(diff, four);
        let query = ctx.and(c1, c2);

        let mut sat = SatSolver::new();
        let var_bits = {
            let mut blaster = BitBlaster::new(&ctx, &mut sat);
            blaster.assert(query).unwrap();
            blaster.var_bits().clone()
        };
        assert_eq!(sat.solve(&SatBudget::default()), SatResult::Sat);

        let read = |name: &str, sat: &SatSolver| -> i64 {
            let bits = &var_bits[name];
            let mut value: u64 = 0;
            for (i, lit) in bits.iter().enumerate() {
                let bit = sat.model_value(lit.var()) ^ lit.is_neg();
                if bit {
                    value |= 1 << i;
                }
            }
            sign_extend(value, 32)
        };
        let xv = read("x", &sat);
        let yv = read("y", &sat);
        assert_eq!(xv + yv, 10);
        assert_eq!(xv - yv, 4);
    }

    #[test]
    fn ite_selects_branch() {
        assert_circuit(|ctx| {
            let c = ctx.bool_const(true);
            let a = ctx.bv32(5);
            let b = ctx.bv32(9);
            (ctx.ite(c, a, b), 5)
        });
    }
}
