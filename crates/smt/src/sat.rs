//! A CDCL SAT solver.
//!
//! This is the decision procedure at the bottom of the verification stack,
//! playing the role Z3's SAT core plays for Alive2's queries. It implements
//! the standard modern recipe: two-watched-literal propagation, first-UIP
//! conflict analysis with clause learning, VSIDS-style variable activities,
//! phase saving and geometric restarts. A conflict budget turns long-running
//! queries into `Unknown`, which the translation validator reports as
//! `Inconclusive` — the timeouts that motivate the paper's domain-specific
//! optimizations.
//!
//! Clause storage is a flat arena (`ClauseArena`): one contiguous literal
//! buffer plus fixed-size headers, so the watch/propagation hot loop walks
//! contiguous memory instead of chasing per-clause `Vec` boxes. The arena is
//! unconditional and preserves clause insertion order, so
//! [`SatSolver::cnf_fingerprint`] is byte-stable across the representation.
//!
//! Opt-in *inprocessing* ([`SatSolver::set_inprocessing`]) adds two
//! search-time simplifications on top: learned clauses are scored by LBD
//! (literal block distance — the number of distinct decision levels in the
//! clause) and the learned database is periodically reduced at restart
//! points, and conflict analysis strengthens learned clauses on the fly by
//! self-subsuming resolution with reason clauses. Both change the search
//! trajectory, so they stay off by default — the default path is
//! bit-identical to a solver without them.

use std::collections::BinaryHeap;

/// A propositional variable index (0-based).
pub type Var = u32;

/// A literal: a variable with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable; `negated` selects the negative phase.
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var << 1 | u32::from(negated))
    }

    /// A positive literal.
    pub fn pos(var: Var) -> Lit {
        Lit::new(var, false)
    }

    /// A negative literal.
    pub fn neg(var: Var) -> Lit {
        Lit::new(var, true)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// `true` if this is the negated phase.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index used for watch and occurrence lists.
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }
}

/// The outcome of a SAT check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a decision was reached.
    Unknown,
}

/// Resource limits for a single `solve` call.
#[derive(Debug, Clone, Copy)]
pub struct SatBudget {
    /// Maximum number of conflicts before giving up. `u64::MAX` means no limit.
    pub max_conflicts: u64,
}

impl Default for SatBudget {
    fn default() -> Self {
        SatBudget {
            max_conflicts: 2_000_000,
        }
    }
}

/// Statistics from the last `solve` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

/// Cumulative inprocessing statistics (not reset by `solve`; all zero unless
/// [`SatSolver::set_inprocessing`] enabled the hooks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InprocessStats {
    /// Learned-clause database reductions performed.
    pub reductions: u64,
    /// Learned clauses deleted by DB reduction (LBD-ranked or root-satisfied).
    pub learned_deleted: u64,
    /// Literals removed from learned clauses by on-the-fly self-subsumption.
    pub minimized_lits: u64,
}

type ClauseRef = usize;

/// Learned clauses with LBD at or below this survive every DB reduction.
const KEEP_LBD: u32 = 2;
/// Conflicts between DB reductions before the first reduction fires.
const REDUCE_INTERVAL_INIT: u64 = 2000;

#[derive(Debug, Clone, Copy)]
struct ClauseHead {
    start: u32,
    len: u32,
    /// LBD at learn time; 0 for original clauses (and when inprocessing is off).
    lbd: u32,
    learned: bool,
}

/// Flat clause storage: every clause's literals live in one contiguous
/// buffer, addressed through fixed-size headers. Insertion order is the
/// iteration order, so fingerprints over the clause database are unchanged
/// from the per-clause-`Vec` representation.
#[derive(Debug, Default)]
struct ClauseArena {
    lits: Vec<Lit>,
    heads: Vec<ClauseHead>,
}

impl ClauseArena {
    fn len(&self) -> usize {
        self.heads.len()
    }

    fn push(&mut self, lits: &[Lit], learned: bool, lbd: u32) -> ClauseRef {
        let cref = self.heads.len();
        self.heads.push(ClauseHead {
            start: self.lits.len() as u32,
            len: lits.len() as u32,
            lbd,
            learned,
        });
        self.lits.extend_from_slice(lits);
        cref
    }

    fn get(&self, cref: ClauseRef) -> &[Lit] {
        let h = self.heads[cref];
        &self.lits[h.start as usize..(h.start + h.len) as usize]
    }

    fn bytes(&self) -> usize {
        self.lits.len() * std::mem::size_of::<Lit>()
            + self.heads.len() * std::mem::size_of::<ClauseHead>()
    }
}

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    db: ClauseArena,
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: BinaryHeap<(OrderedActivity, Var)>,
    phase: Vec<bool>,
    /// Set when an empty clause has been added; the instance is trivially UNSAT.
    unsat: bool,
    /// Statistics from the most recent `solve` call.
    pub stats: SatStats,
    seen: Vec<bool>,
    // Reusable scratch buffers: the hot paths (clause intake, conflict
    // analysis) stay allocation-free once their capacities are warm.
    add_buf: Vec<Lit>,
    learned_buf: Vec<Lit>,
    minimize_buf: Vec<bool>,
    lbd_buf: Vec<u32>,
    // Inprocessing state.
    inprocess: bool,
    last_lbd: u32,
    conflicts_since_reduce: u64,
    reduce_limit: u64,
    inp: InprocessStats,
}

/// f64 wrapper with a total order for the activity heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedActivity(f64);

impl Eq for OrderedActivity {}
impl PartialOrd for OrderedActivity {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedActivity {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original plus learned).
    pub fn num_clauses(&self) -> usize {
        self.db.len()
    }

    /// `true` once the instance has been proven unsatisfiable at level 0.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// Enables or disables the inprocessing hooks (LBD-driven learned-clause
    /// DB reduction at restart points and on-the-fly self-subsumption during
    /// conflict analysis). Off by default; enabling changes the search
    /// trajectory, so callers that pin bit-identical behavior must leave it
    /// off.
    pub fn set_inprocessing(&mut self, on: bool) {
        self.inprocess = on;
        if on && self.reduce_limit == 0 {
            self.reduce_limit = REDUCE_INTERVAL_INIT;
        }
    }

    /// Cumulative inprocessing statistics (across all `solve` calls).
    pub fn inprocess_stats(&self) -> InprocessStats {
        self.inp
    }

    /// Bytes currently held by the flat clause arena (literal buffer plus
    /// headers, by length — the live working set the propagation loop walks).
    pub fn arena_bytes(&self) -> usize {
        self.db.bytes()
    }

    /// Pre-sizes the clause arena for a known clause stream (count and total
    /// literal count), so intake never reallocates mid-stream.
    pub fn reserve_clauses(&mut self, clauses: usize, lits: usize) {
        self.db.heads.reserve(clauses);
        self.db.lits.reserve(lits);
    }

    /// Pre-sizes the watch list of `lit` — used when the clause set is known
    /// up front (e.g. a preprocessed rebuild) so the propagation loop starts
    /// with watch lists at their final occupancy.
    pub fn reserve_watch(&mut self, lit: Lit, additional: usize) {
        self.watches[lit.negate().code()].reserve(additional);
    }

    /// Iterates the stored clauses (original and learned) in insertion order.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        (0..self.db.len()).map(move |cref| self.db.get(cref))
    }

    /// The level-0 implied trail: literals forced before any decision. When
    /// called at decision level 0 this is the entire current trail.
    pub fn root_units(&self) -> &[Lit] {
        let root = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        &self.trail[..root]
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let var = self.assign.len() as Var;
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push((OrderedActivity(0.0), var));
        var
    }

    /// Adds a clause. Returns `false` if the clause is trivially unsatisfiable
    /// at level 0 (the instance becomes UNSAT).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        let mut clause = std::mem::take(&mut self.add_buf);
        let ok = self.add_clause_inner(lits, &mut clause);
        self.add_buf = clause;
        ok
    }

    fn add_clause_inner(&mut self, lits: &[Lit], clause: &mut Vec<Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added before solving");
        if self.unsat {
            return false;
        }
        // Simplify: drop duplicate and false literals, detect tautologies and
        // already-satisfied clauses.
        clause.clear();
        for &lit in lits {
            match self.value(lit) {
                Some(true) => return true,
                Some(false) => continue,
                None => {}
            }
            if clause.contains(&lit.negate()) {
                return true;
            }
            if !clause.contains(&lit) {
                clause.push(lit);
            }
        }
        match clause.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(clause[0], None) {
                    self.unsat = true;
                    return false;
                }
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(clause, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learned: bool, lbd: u32) -> ClauseRef {
        let w0 = lits[0].negate().code();
        let w1 = lits[1].negate().code();
        let cref = self.db.push(lits, learned, lbd);
        self.watches[w0].push(cref);
        self.watches[w1].push(cref);
        cref
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var() as usize].map(|v| v ^ lit.is_neg())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let var = lit.var() as usize;
                self.assign[var] = Some(!lit.is_neg());
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.phase[var] = !lit.is_neg();
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬lit must be inspected.
            let false_lit = lit.negate();
            let mut watch_list = std::mem::take(&mut self.watches[lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let cref = watch_list[i];
                let head = self.db.heads[cref];
                let start = head.start as usize;
                // Ensure the false literal is in position 1.
                if self.db.lits[start] == false_lit {
                    self.db.lits.swap(start, start + 1);
                }
                if self.value(self.db.lits[start]) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..head.len as usize {
                    let candidate = self.db.lits[start + k];
                    if self.value(candidate) != Some(false) {
                        self.db.lits.swap(start + 1, start + k);
                        self.watches[candidate.negate().code()].push(cref);
                        watch_list.swap_remove(i);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: the clause is unit or conflicting.
                let first = self.db.lits[start];
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore the remaining watches and report.
                    self.watches[lit.code()] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[lit.code()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var as usize] += self.var_inc;
        if self.activity[var as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap
            .push((OrderedActivity(self.activity[var as usize]), var));
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Fills `self.learned_buf` with the learned
    /// clause (asserting literal first) and returns the backjump level; the
    /// clause's LBD is left in `self.last_lbd` when inprocessing is on.
    fn analyze(&mut self, mut conflict: ClauseRef) -> u32 {
        let mut learned = std::mem::take(&mut self.learned_buf);
        learned.clear();
        learned.push(Lit::pos(0)); // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            let head = self.db.heads[conflict];
            let start = head.start as usize;
            let skip = usize::from(lit.is_some());
            for j in skip..head.len as usize {
                let q = self.db.lits[start + j];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                index -= 1;
                let p = self.trail[index];
                if self.seen[p.var() as usize] {
                    lit = Some(p);
                    break;
                }
            }
            let p = lit.expect("resolution literal");
            self.seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.negate();
                break;
            }
            conflict = self.reason[p.var() as usize].expect("non-decision has a reason");
        }

        if self.inprocess && learned.len() > 1 {
            self.minimize_learned(&mut learned);
        } else {
            for l in &learned[1..] {
                self.seen[l.var() as usize] = false;
            }
        }

        if self.inprocess {
            // LBD: distinct decision levels across the learned clause.
            let mut levels = std::mem::take(&mut self.lbd_buf);
            levels.clear();
            levels.extend(learned.iter().map(|l| self.level[l.var() as usize]));
            levels.sort_unstable();
            levels.dedup();
            self.last_lbd = levels.len() as u32;
            self.lbd_buf = levels;
        } else {
            self.last_lbd = 0;
        }

        // Backjump level: highest level among the non-asserting literals.
        let backtrack_level = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level into watch position 1.
        if learned.len() > 1 {
            let (pos, _) = learned[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var() as usize])
                .expect("non-empty");
            learned.swap(1, pos + 1);
        }
        self.learned_buf = learned;
        backtrack_level
    }

    /// On-the-fly self-subsuming resolution: a learned literal whose reason
    /// clause is entirely absorbed by the remaining learned literals (each
    /// reason literal is level 0, already collected, or the literal's own
    /// negation) is redundant — resolving the learned clause with that reason
    /// yields a strict subset. Clears the `seen` marks of every collected
    /// literal as a side effect.
    fn minimize_learned(&mut self, learned: &mut Vec<Lit>) {
        let mut removable = std::mem::take(&mut self.minimize_buf);
        removable.clear();
        removable.push(false); // the asserting literal is never removed
        for &q in learned.iter().skip(1) {
            let keepable = match self.reason[q.var() as usize] {
                Some(cr) => {
                    let head = self.db.heads[cr];
                    let start = head.start as usize;
                    (0..head.len as usize).all(|j| {
                        let p = self.db.lits[start + j];
                        p == q.negate()
                            || self.level[p.var() as usize] == 0
                            || self.seen[p.var() as usize]
                    })
                }
                None => false,
            };
            removable.push(keepable);
        }
        for l in &learned[1..] {
            self.seen[l.var() as usize] = false;
        }
        let mut kept = 1;
        for i in 1..learned.len() {
            if removable[i] {
                self.inp.minimized_lits += 1;
            } else {
                learned[kept] = learned[i];
                kept += 1;
            }
        }
        learned.truncate(kept);
        self.minimize_buf = removable;
    }

    /// Learned-clause database reduction, run at a restart point (decision
    /// level 0, propagation at fixpoint). Learned clauses are ranked by
    /// (LBD, length) and the worst half deleted; glue (LBD ≤ 2) and binary
    /// clauses always survive. Survivors are root-simplified on the way into
    /// a fresh arena: level-0-satisfied clauses (including retired
    /// activation-literal groups) are collected and level-0-false literals
    /// stripped. Watches are rebuilt and reasons cleared — sound at level 0
    /// because conflict analysis only dereferences reasons of variables
    /// assigned above level 0.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        self.inp.reductions += 1;
        let mut victims: Vec<(u32, u32, ClauseRef)> = Vec::new();
        for (cref, h) in self.db.heads.iter().enumerate() {
            if h.learned && h.len > 2 && h.lbd > KEEP_LBD {
                victims.push((h.lbd, h.len, cref));
            }
        }
        victims.sort_unstable();
        let drop_count = victims.len() / 2;
        let mut dropped = vec![false; self.db.len()];
        for &(_, _, cref) in &victims[victims.len() - drop_count..] {
            dropped[cref] = true;
        }
        self.inp.learned_deleted += drop_count as u64;

        let mut new_db = ClauseArena::default();
        new_db.heads.reserve(self.db.len() - drop_count);
        new_db.lits.reserve(self.db.lits.len());
        let mut scratch: Vec<Lit> = Vec::new();
        'clause: for (cref, &is_dropped) in dropped.iter().enumerate() {
            if is_dropped {
                continue;
            }
            let h = self.db.heads[cref];
            let start = h.start as usize;
            scratch.clear();
            for j in 0..h.len as usize {
                let l = self.db.lits[start + j];
                match self.value(l) {
                    Some(true) => {
                        if h.learned {
                            self.inp.learned_deleted += 1;
                        }
                        continue 'clause;
                    }
                    Some(false) => {}
                    None => scratch.push(l),
                }
            }
            debug_assert!(
                scratch.len() >= 2,
                "unit or empty clauses cannot survive a level-0 fixpoint"
            );
            new_db.push(&scratch, h.learned, h.lbd);
        }
        self.db = new_db;
        for w in &mut self.watches {
            w.clear();
        }
        for cref in 0..self.db.len() {
            let h = self.db.heads[cref];
            let start = h.start as usize;
            let w0 = self.db.lits[start].negate().code();
            let w1 = self.db.lits[start + 1].negate().code();
            self.watches[w0].push(cref);
            self.watches[w1].push(cref);
        }
        for r in &mut self.reason {
            *r = None;
        }
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("level > 0");
            for &lit in &self.trail[start..] {
                let var = lit.var() as usize;
                self.assign[var] = None;
                self.reason[var] = None;
                self.heap
                    .push((OrderedActivity(self.activity[var]), lit.var()));
            }
            self.trail.truncate(start);
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Lazy-deletion max-heap: entries may carry stale (older, lower)
        // activities. Picking a var through a stale entry is a slightly
        // suboptimal but perfectly sound decision, so any unassigned pop wins.
        while let Some((_, var)) = self.heap.pop() {
            if self.assign[var as usize].is_none() {
                return Some(var);
            }
        }
        // Heap exhausted (all entries consumed): fall back to a linear scan.
        (0..self.num_vars() as Var).find(|&v| self.assign[v as usize].is_none())
    }

    /// Solves the formula under the given budget.
    pub fn solve(&mut self, budget: &SatBudget) -> SatResult {
        self.solve_with_assumptions(budget, &[])
    }

    /// Solves the formula under the given budget with a prefix of *assumption*
    /// literals decided before any free decision (MiniSat's
    /// `solve(assumptions)`).
    ///
    /// `Unsat` means the clause set is unsatisfiable *together with the
    /// assumptions*; only a conflict at decision level 0 marks the instance
    /// permanently unsatisfiable. Learned clauses never mention assumption
    /// literals as facts (assumptions are decisions, not units), so the
    /// solver stays reusable afterwards: call [`SatSolver::reset_to_root`]
    /// to drop the assumption decisions, add more clauses, and solve again
    /// under a different assumption set. This is the retraction mechanism
    /// behind the incremental per-scalar pathway in
    /// [`crate::solver::Solver`]: per-candidate assertions are guarded by an
    /// activation literal passed here, and "pop" is an unconditional unit
    /// clause asserting its negation.
    pub fn solve_with_assumptions(&mut self, budget: &SatBudget, assumptions: &[Lit]) -> SatResult {
        self.stats = SatStats::default();
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.inprocess {
                    self.conflicts_since_reduce += 1;
                }
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                if self.decision_level() as usize <= assumptions.len() {
                    // Every decision below this level is an assumption, so
                    // the conflicting assignment is implied by the clause
                    // set plus the assumption prefix: UNSAT under
                    // assumptions (but not globally).
                    self.backtrack(0);
                    return SatResult::Unsat;
                }
                if self.stats.conflicts >= budget.max_conflicts {
                    return SatResult::Unknown;
                }
                let backtrack_level = self.analyze(conflict);
                self.backtrack(backtrack_level);
                let learned = std::mem::take(&mut self.learned_buf);
                if learned.len() == 1 {
                    if !self.enqueue(learned[0], None) {
                        self.learned_buf = learned;
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let cref = self.attach_clause(&learned, true, self.last_lbd);
                    self.enqueue(learned[0], Some(cref));
                }
                self.learned_buf = learned;
                self.decay_activities();
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit + restart_limit / 2;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                    if self.inprocess && self.conflicts_since_reduce >= self.reduce_limit {
                        self.reduce_db();
                        self.conflicts_since_reduce = 0;
                        self.reduce_limit += self.reduce_limit / 2;
                    }
                    continue;
                }
                let level = self.decision_level() as usize;
                if level < assumptions.len() {
                    // Install the next assumption as this level's decision.
                    // An already-true assumption still opens an (empty)
                    // decision level so level k always means "assumptions
                    // 0..k are in force".
                    let p = assumptions[level];
                    match self.value(p) {
                        Some(true) => self.trail_lim.push(self.trail.len()),
                        Some(false) => {
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SatResult::Sat,
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(var, !self.phase[var as usize]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Undoes every decision (assumptions included), returning the solver to
    /// decision level 0 — the "pop" after an assumption-based query, after
    /// which more clauses can be added and the solver re-solved.
    pub fn reset_to_root(&mut self) {
        self.backtrack(0);
    }

    /// FNV-1a fingerprint of the solver's CNF at decision level 0: the
    /// variable count, the root-level implied trail, and every stored clause
    /// in insertion order. Two solvers with equal fingerprints hold
    /// literally the same instance and search identically under equal
    /// budgets; the blast-cache property tests use this to pin a
    /// memo-replayed blast to a fresh one.
    pub fn cnf_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut hash = OFFSET;
        let mut fold = |value: u64| {
            for b in value.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        fold(self.num_vars() as u64);
        let root = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        fold(root as u64);
        for &lit in &self.trail[..root] {
            fold(u64::from(lit.0));
        }
        fold(self.db.len() as u64);
        for head in &self.db.heads {
            fold(u64::from(head.len));
            let start = head.start as usize;
            for &lit in &self.db.lits[start..start + head.len as usize] {
                fold(u64::from(lit.0));
            }
        }
        hash
    }

    /// The value assigned to a variable by the last `Sat` result.
    pub fn model_value(&self, var: Var) -> bool {
        self.assign[var as usize].unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::pos((v - 1) as Var)
        } else {
            Lit::neg((-v - 1) as Var)
        }
    }

    fn solver_with_vars(n: usize) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn literal_encoding() {
        let l = Lit::pos(3);
        assert_eq!(l.var(), 3);
        assert!(!l.is_neg());
        assert!(l.negate().is_neg());
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        assert!(s.model_value(0));

        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬1 ∨ 2) ∧ (¬2 ∨ 3) ∧ 1 ∧ ¬3 is UNSAT.
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(-1), lit(2)]);
        s.add_clause(&[lit(-2), lit(3)]);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-3)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_3sat() {
        let mut s = solver_with_vars(4);
        s.add_clause(&[lit(1), lit(2), lit(3)]);
        s.add_clause(&[lit(-1), lit(2), lit(4)]);
        s.add_clause(&[lit(-2), lit(-3), lit(-4)]);
        s.add_clause(&[lit(1), lit(-2), lit(4)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        // Verify the model satisfies every clause.
        let model: Vec<bool> = (0..4).map(|v| s.model_value(v)).collect();
        let eval = |l: Lit| model[l.var() as usize] ^ l.is_neg();
        for clause in [
            vec![lit(1), lit(2), lit(3)],
            vec![lit(-1), lit(2), lit(4)],
            vec![lit(-2), lit(-3), lit(-4)],
            vec![lit(1), lit(-2), lit(4)],
        ] {
            assert!(clause.iter().any(|&l| eval(l)));
        }
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = solver_with_vars(6);
        let p = |i: usize, j: usize| lit((i * 2 + j + 1) as i32);
        // Every pigeon is in some hole.
        for i in 0..3 {
            s.add_clause(&[p(i, 0), p(i, 1)]);
        }
        // No two pigeons share a hole.
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[p(i1, j).negate(), p(i2, j).negate()]);
                }
            }
        }
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn budget_produces_unknown() {
        // A modest pigeonhole instance with an absurdly small conflict budget.
        let pigeons = 7usize;
        let holes = 6usize;
        let mut s = solver_with_vars(pigeons * holes);
        let p = |i: usize, j: usize| Lit::pos((i * holes + j) as Var);
        for i in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|j| p(i, j)).collect();
            s.add_clause(&clause);
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    s.add_clause(&[p(i1, j).negate(), p(i2, j).negate()]);
                }
            }
        }
        let result = s.solve(&SatBudget { max_conflicts: 5 });
        assert_eq!(result, SatResult::Unknown);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = solver_with_vars(2);
        // Tautology is dropped, duplicate literals collapse.
        assert!(s.add_clause(&[lit(1), lit(-1)]));
        assert!(s.add_clause(&[lit(2), lit(2)]));
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        assert!(s.model_value(1));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = solver_with_vars(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_without_committing() {
        // (1 ∨ 2) with assumption ¬1 forces 2; with assumption ¬2 forces 1;
        // the instance itself stays satisfiable throughout.
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[lit(-1)]),
            SatResult::Sat
        );
        assert!(!s.model_value(0));
        assert!(s.model_value(1));
        s.reset_to_root();
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[lit(-2)]),
            SatResult::Sat
        );
        assert!(s.model_value(0));
        s.reset_to_root();
        // Contradictory assumptions: UNSAT under assumptions only.
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[lit(-1), lit(-2)]),
            SatResult::Unsat
        );
        s.reset_to_root();
        // The instance is still satisfiable afterwards.
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
    }

    #[test]
    fn activation_literal_retracts_a_clause_group() {
        // The activation-literal protocol of the incremental solver: guard
        // clause (¬act ∨ c), solve under [act], retire with unit ¬act.
        let mut s = solver_with_vars(2);
        let act = Lit::pos(s.new_var());
        let c = lit(1);
        s.add_clause(&[act.negate(), c]);
        s.add_clause(&[act.negate(), lit(-1)]); // guarded contradiction
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[act]),
            SatResult::Unsat
        );
        s.reset_to_root();
        s.add_clause(&[act.negate()]); // pop: the guarded group goes inert
        let act2 = Lit::pos(s.new_var());
        s.add_clause(&[act2.negate(), lit(2)]);
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[act2]),
            SatResult::Sat
        );
        assert!(s.model_value(1));
        s.reset_to_root();
    }

    #[test]
    fn assumption_solve_matches_fresh_solve_on_units() {
        // Solving with assumption `a` must agree with a fresh solver where
        // `a` is a unit clause, over a small family of instances.
        for seed in 0..20u64 {
            let mut state = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let n = 6;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..12 {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n) as Var;
                    clause.push(Lit::new(v, next() % 2 == 1));
                }
                clauses.push(clause);
            }
            let assumption = Lit::new((next() % n) as Var, next() % 2 == 1);

            let mut fresh = solver_with_vars(n as usize);
            for c in &clauses {
                fresh.add_clause(c);
            }
            fresh.add_clause(&[assumption]);
            let want = fresh.solve(&SatBudget::default());

            let mut inc = solver_with_vars(n as usize);
            for c in &clauses {
                inc.add_clause(c);
            }
            let got = inc.solve_with_assumptions(&SatBudget::default(), &[assumption]);
            assert_eq!(got, want, "seed {}", seed);
        }
    }

    #[test]
    fn cnf_fingerprint_tracks_instance_content() {
        let mut a = solver_with_vars(3);
        a.add_clause(&[lit(1), lit(2)]);
        a.add_clause(&[lit(-2), lit(3)]);
        let mut b = solver_with_vars(3);
        b.add_clause(&[lit(1), lit(2)]);
        b.add_clause(&[lit(-2), lit(3)]);
        assert_eq!(a.cnf_fingerprint(), b.cnf_fingerprint());
        b.add_clause(&[lit(-3)]);
        assert_ne!(a.cnf_fingerprint(), b.cnf_fingerprint());
    }

    #[test]
    fn stats_are_populated() {
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(-1), lit(3)]);
        s.add_clause(&[lit(-2), lit(-3)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        assert!(s.stats.decisions + s.stats.propagations > 0);
    }

    #[test]
    fn clause_and_root_unit_accessors_reflect_the_instance() {
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-1), lit(2), lit(3)]);
        // The unit was absorbed into the root trail; the ternary clause was
        // simplified against it (¬1 dropped) and stored.
        let stored: Vec<Vec<Lit>> = s.clauses().map(|c| c.to_vec()).collect();
        assert_eq!(stored, vec![vec![lit(2), lit(3)]]);
        assert_eq!(s.root_units(), &[lit(1)]);
        assert!(!s.is_unsat());
    }

    /// Deterministic 3-CNF generator shared by the inprocessing tests.
    fn random_cnf(seed: u64, num_vars: u64, num_clauses: usize) -> Vec<Vec<Lit>> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..num_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| Lit::new((next() % num_vars) as Var, next() % 2 == 1))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn inprocessing_preserves_verdicts_on_random_cnfs() {
        for seed in 0..30u64 {
            // Clause/var ratio near the phase transition mixes SAT and UNSAT.
            let clauses = random_cnf(seed, 12, 52);
            let mut plain = solver_with_vars(12);
            let mut inproc = solver_with_vars(12);
            inproc.set_inprocessing(true);
            for c in &clauses {
                plain.add_clause(c);
                inproc.add_clause(c);
            }
            let want = plain.solve(&SatBudget::default());
            let got = inproc.solve(&SatBudget::default());
            assert_eq!(got, want, "seed {}", seed);
            if got == SatResult::Sat {
                let eval = |l: Lit| inproc.model_value(l.var()) ^ l.is_neg();
                for c in &clauses {
                    assert!(c.iter().any(|&l| eval(l)), "seed {}", seed);
                }
            }
        }
    }

    #[test]
    fn db_reduction_fires_and_keeps_the_verdict_on_a_hard_instance() {
        // A pigeonhole instance large enough to cross the reduction interval.
        let pigeons = 9usize;
        let holes = 8usize;
        let build = |inprocess: bool| {
            let mut s = solver_with_vars(pigeons * holes);
            if inprocess {
                s.set_inprocessing(true);
            }
            let p = |i: usize, j: usize| Lit::pos((i * holes + j) as Var);
            for i in 0..pigeons {
                let clause: Vec<Lit> = (0..holes).map(|j| p(i, j)).collect();
                s.add_clause(&clause);
            }
            for j in 0..holes {
                for i1 in 0..pigeons {
                    for i2 in (i1 + 1)..pigeons {
                        s.add_clause(&[p(i1, j).negate(), p(i2, j).negate()]);
                    }
                }
            }
            s
        };
        let mut plain = build(false);
        let mut inproc = build(true);
        let want = plain.solve(&SatBudget::default());
        let got = inproc.solve(&SatBudget::default());
        assert_eq!(got, want);
        assert_eq!(got, SatResult::Unsat);
        let stats = inproc.inprocess_stats();
        assert!(stats.reductions > 0, "expected at least one DB reduction");
        assert!(stats.learned_deleted > 0);
        assert_eq!(plain.inprocess_stats(), InprocessStats::default());
    }

    #[test]
    fn inprocessing_survives_assumption_cycles() {
        // The incremental activation-literal protocol must stay sound when
        // DB reduction collects retired groups between queries.
        let mut s = solver_with_vars(6);
        s.set_inprocessing(true);
        for seed in 0..10u64 {
            for c in random_cnf(seed + 100, 6, 6) {
                let act = Lit::pos(s.new_var());
                let mut guarded = vec![act.negate()];
                guarded.extend(c.iter().copied());
                s.add_clause(&guarded);
                let under = s.solve_with_assumptions(&SatBudget::default(), &[act]);
                s.reset_to_root();
                assert_ne!(under, SatResult::Unknown);
                s.add_clause(&[act.negate()]); // retire the group
            }
        }
        // With every group retired the instance is satisfiable.
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
    }

    #[test]
    fn arena_accounting_is_live_bytes() {
        let mut s = solver_with_vars(3);
        assert_eq!(s.arena_bytes(), 0);
        s.add_clause(&[lit(1), lit(2), lit(3)]);
        let one = s.arena_bytes();
        assert!(one > 0);
        s.add_clause(&[lit(-1), lit(-2), lit(-3)]);
        assert!(s.arena_bytes() > one);
    }
}
