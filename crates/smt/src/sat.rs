//! A CDCL SAT solver.
//!
//! This is the decision procedure at the bottom of the verification stack,
//! playing the role Z3's SAT core plays for Alive2's queries. It implements
//! the standard modern recipe: two-watched-literal propagation, first-UIP
//! conflict analysis with clause learning, VSIDS-style variable activities,
//! phase saving and geometric restarts. A conflict budget turns long-running
//! queries into `Unknown`, which the translation validator reports as
//! `Inconclusive` — the timeouts that motivate the paper's domain-specific
//! optimizations.

use std::collections::BinaryHeap;

/// A propositional variable index (0-based).
pub type Var = u32;

/// A literal: a variable with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable; `negated` selects the negative phase.
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var << 1 | u32::from(negated))
    }

    /// A positive literal.
    pub fn pos(var: Var) -> Lit {
        Lit::new(var, false)
    }

    /// A negative literal.
    pub fn neg(var: Var) -> Lit {
        Lit::new(var, true)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// `true` if this is the negated phase.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index used for watch lists.
    fn code(self) -> usize {
        self.0 as usize
    }
}

/// The outcome of a SAT check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a decision was reached.
    Unknown,
}

/// Resource limits for a single `solve` call.
#[derive(Debug, Clone, Copy)]
pub struct SatBudget {
    /// Maximum number of conflicts before giving up. `u64::MAX` means no limit.
    pub max_conflicts: u64,
}

impl Default for SatBudget {
    fn default() -> Self {
        SatBudget {
            max_conflicts: 2_000_000,
        }
    }
}

/// Statistics from the last `solve` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

type ClauseRef = usize;

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: BinaryHeap<(OrderedActivity, Var)>,
    phase: Vec<bool>,
    /// Set when an empty clause has been added; the instance is trivially UNSAT.
    unsat: bool,
    /// Statistics from the most recent `solve` call.
    pub stats: SatStats,
    seen: Vec<bool>,
}

/// f64 wrapper with a total order for the activity heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedActivity(f64);

impl Eq for OrderedActivity {}
impl PartialOrd for OrderedActivity {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedActivity {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original plus learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let var = self.assign.len() as Var;
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push((OrderedActivity(0.0), var));
        var
    }

    /// Adds a clause. Returns `false` if the clause is trivially unsatisfiable
    /// at level 0 (the instance becomes UNSAT).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added before solving");
        if self.unsat {
            return false;
        }
        // Simplify: drop duplicate and false literals, detect tautologies and
        // already-satisfied clauses.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            match self.value(lit) {
                Some(true) => return true,
                Some(false) => continue,
                None => {}
            }
            if clause.contains(&lit.negate()) {
                return true;
            }
            if !clause.contains(&lit) {
                clause.push(lit);
            }
        }
        match clause.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(clause[0], None) {
                    self.unsat = true;
                    return false;
                }
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(clause);
                true
            }
        }
    }

    fn attach_clause(&mut self, clause: Vec<Lit>) -> ClauseRef {
        let cref = self.clauses.len();
        self.watches[clause[0].negate().code()].push(cref);
        self.watches[clause[1].negate().code()].push(cref);
        self.clauses.push(clause);
        cref
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var() as usize].map(|v| v ^ lit.is_neg())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let var = lit.var() as usize;
                self.assign[var] = Some(!lit.is_neg());
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.phase[var] = !lit.is_neg();
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬lit must be inspected.
            let false_lit = lit.negate();
            let mut watch_list = std::mem::take(&mut self.watches[lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let cref = watch_list[i];
                // Ensure the false literal is in position 1.
                if self.clauses[cref][0] == false_lit {
                    self.clauses[cref].swap(0, 1);
                }
                if self.value(self.clauses[cref][0]) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..self.clauses[cref].len() {
                    if self.value(self.clauses[cref][k]) != Some(false) {
                        self.clauses[cref].swap(1, k);
                        let new_watch = self.clauses[cref][1];
                        self.watches[new_watch.negate().code()].push(cref);
                        watch_list.swap_remove(i);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: the clause is unit or conflicting.
                let first = self.clauses[cref][0];
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore the remaining watches and report.
                    self.watches[lit.code()] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[lit.code()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var as usize] += self.var_inc;
        if self.activity[var as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap
            .push((OrderedActivity(self.activity[var as usize]), var));
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            let clause = self.clauses[conflict].clone();
            let start = usize::from(lit.is_some());
            for &q in &clause[start..] {
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                index -= 1;
                let p = self.trail[index];
                if self.seen[p.var() as usize] {
                    lit = Some(p);
                    break;
                }
            }
            let p = lit.expect("resolution literal");
            self.seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.negate();
                break;
            }
            conflict = self.reason[p.var() as usize].expect("non-decision has a reason");
        }

        for l in &learned[1..] {
            self.seen[l.var() as usize] = false;
        }

        // Backjump level: highest level among the non-asserting literals.
        let backtrack_level = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level into watch position 1.
        if learned.len() > 1 {
            let (pos, _) = learned[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var() as usize])
                .expect("non-empty");
            learned.swap(1, pos + 1);
        }
        (learned, backtrack_level)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("level > 0");
            for &lit in &self.trail[start..] {
                let var = lit.var() as usize;
                self.assign[var] = None;
                self.reason[var] = None;
                self.heap
                    .push((OrderedActivity(self.activity[var]), lit.var()));
            }
            self.trail.truncate(start);
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Lazy-deletion max-heap: entries may carry stale (older, lower)
        // activities. Picking a var through a stale entry is a slightly
        // suboptimal but perfectly sound decision, so any unassigned pop wins.
        while let Some((_, var)) = self.heap.pop() {
            if self.assign[var as usize].is_none() {
                return Some(var);
            }
        }
        // Heap exhausted (all entries consumed): fall back to a linear scan.
        (0..self.num_vars() as Var).find(|&v| self.assign[v as usize].is_none())
    }

    /// Solves the formula under the given budget.
    pub fn solve(&mut self, budget: &SatBudget) -> SatResult {
        self.solve_with_assumptions(budget, &[])
    }

    /// Solves the formula under the given budget with a prefix of *assumption*
    /// literals decided before any free decision (MiniSat's
    /// `solve(assumptions)`).
    ///
    /// `Unsat` means the clause set is unsatisfiable *together with the
    /// assumptions*; only a conflict at decision level 0 marks the instance
    /// permanently unsatisfiable. Learned clauses never mention assumption
    /// literals as facts (assumptions are decisions, not units), so the
    /// solver stays reusable afterwards: call [`SatSolver::reset_to_root`]
    /// to drop the assumption decisions, add more clauses, and solve again
    /// under a different assumption set. This is the retraction mechanism
    /// behind the incremental per-scalar pathway in
    /// [`crate::solver::Solver`]: per-candidate assertions are guarded by an
    /// activation literal passed here, and "pop" is an unconditional unit
    /// clause asserting its negation.
    pub fn solve_with_assumptions(&mut self, budget: &SatBudget, assumptions: &[Lit]) -> SatResult {
        self.stats = SatStats::default();
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                if self.decision_level() as usize <= assumptions.len() {
                    // Every decision below this level is an assumption, so
                    // the conflicting assignment is implied by the clause
                    // set plus the assumption prefix: UNSAT under
                    // assumptions (but not globally).
                    self.backtrack(0);
                    return SatResult::Unsat;
                }
                if self.stats.conflicts >= budget.max_conflicts {
                    return SatResult::Unknown;
                }
                let (learned, backtrack_level) = self.analyze(conflict);
                self.backtrack(backtrack_level);
                if learned.len() == 1 {
                    if !self.enqueue(learned[0], None) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let cref = self.attach_clause(learned);
                    let assert_lit = self.clauses[cref][0];
                    self.enqueue(assert_lit, Some(cref));
                }
                self.decay_activities();
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit + restart_limit / 2;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                    continue;
                }
                let level = self.decision_level() as usize;
                if level < assumptions.len() {
                    // Install the next assumption as this level's decision.
                    // An already-true assumption still opens an (empty)
                    // decision level so level k always means "assumptions
                    // 0..k are in force".
                    let p = assumptions[level];
                    match self.value(p) {
                        Some(true) => self.trail_lim.push(self.trail.len()),
                        Some(false) => {
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SatResult::Sat,
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(var, !self.phase[var as usize]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Undoes every decision (assumptions included), returning the solver to
    /// decision level 0 — the "pop" after an assumption-based query, after
    /// which more clauses can be added and the solver re-solved.
    pub fn reset_to_root(&mut self) {
        self.backtrack(0);
    }

    /// FNV-1a fingerprint of the solver's CNF at decision level 0: the
    /// variable count, the root-level implied trail, and every stored clause
    /// in insertion order. Two solvers with equal fingerprints hold
    /// literally the same instance and search identically under equal
    /// budgets; the blast-cache property tests use this to pin a
    /// memo-replayed blast to a fresh one.
    pub fn cnf_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut hash = OFFSET;
        let mut fold = |value: u64| {
            for b in value.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        fold(self.num_vars() as u64);
        let root = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        fold(root as u64);
        for &lit in &self.trail[..root] {
            fold(u64::from(lit.0));
        }
        fold(self.clauses.len() as u64);
        for clause in &self.clauses {
            fold(clause.len() as u64);
            for &lit in clause {
                fold(u64::from(lit.0));
            }
        }
        hash
    }

    /// The value assigned to a variable by the last `Sat` result.
    pub fn model_value(&self, var: Var) -> bool {
        self.assign[var as usize].unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::pos((v - 1) as Var)
        } else {
            Lit::neg((-v - 1) as Var)
        }
    }

    fn solver_with_vars(n: usize) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn literal_encoding() {
        let l = Lit::pos(3);
        assert_eq!(l.var(), 3);
        assert!(!l.is_neg());
        assert!(l.negate().is_neg());
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        assert!(s.model_value(0));

        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬1 ∨ 2) ∧ (¬2 ∨ 3) ∧ 1 ∧ ¬3 is UNSAT.
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(-1), lit(2)]);
        s.add_clause(&[lit(-2), lit(3)]);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-3)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_3sat() {
        let mut s = solver_with_vars(4);
        s.add_clause(&[lit(1), lit(2), lit(3)]);
        s.add_clause(&[lit(-1), lit(2), lit(4)]);
        s.add_clause(&[lit(-2), lit(-3), lit(-4)]);
        s.add_clause(&[lit(1), lit(-2), lit(4)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        // Verify the model satisfies every clause.
        let model: Vec<bool> = (0..4).map(|v| s.model_value(v)).collect();
        let eval = |l: Lit| model[l.var() as usize] ^ l.is_neg();
        for clause in [
            vec![lit(1), lit(2), lit(3)],
            vec![lit(-1), lit(2), lit(4)],
            vec![lit(-2), lit(-3), lit(-4)],
            vec![lit(1), lit(-2), lit(4)],
        ] {
            assert!(clause.iter().any(|&l| eval(l)));
        }
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = solver_with_vars(6);
        let p = |i: usize, j: usize| lit((i * 2 + j + 1) as i32);
        // Every pigeon is in some hole.
        for i in 0..3 {
            s.add_clause(&[p(i, 0), p(i, 1)]);
        }
        // No two pigeons share a hole.
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[p(i1, j).negate(), p(i2, j).negate()]);
                }
            }
        }
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn budget_produces_unknown() {
        // A modest pigeonhole instance with an absurdly small conflict budget.
        let pigeons = 7usize;
        let holes = 6usize;
        let mut s = solver_with_vars(pigeons * holes);
        let p = |i: usize, j: usize| Lit::pos((i * holes + j) as Var);
        for i in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|j| p(i, j)).collect();
            s.add_clause(&clause);
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    s.add_clause(&[p(i1, j).negate(), p(i2, j).negate()]);
                }
            }
        }
        let result = s.solve(&SatBudget { max_conflicts: 5 });
        assert_eq!(result, SatResult::Unknown);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = solver_with_vars(2);
        // Tautology is dropped, duplicate literals collapse.
        assert!(s.add_clause(&[lit(1), lit(-1)]));
        assert!(s.add_clause(&[lit(2), lit(2)]));
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        assert!(s.model_value(1));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = solver_with_vars(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_without_committing() {
        // (1 ∨ 2) with assumption ¬1 forces 2; with assumption ¬2 forces 1;
        // the instance itself stays satisfiable throughout.
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[lit(-1)]),
            SatResult::Sat
        );
        assert!(!s.model_value(0));
        assert!(s.model_value(1));
        s.reset_to_root();
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[lit(-2)]),
            SatResult::Sat
        );
        assert!(s.model_value(0));
        s.reset_to_root();
        // Contradictory assumptions: UNSAT under assumptions only.
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[lit(-1), lit(-2)]),
            SatResult::Unsat
        );
        s.reset_to_root();
        // The instance is still satisfiable afterwards.
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
    }

    #[test]
    fn activation_literal_retracts_a_clause_group() {
        // The activation-literal protocol of the incremental solver: guard
        // clause (¬act ∨ c), solve under [act], retire with unit ¬act.
        let mut s = solver_with_vars(2);
        let act = Lit::pos(s.new_var());
        let c = lit(1);
        s.add_clause(&[act.negate(), c]);
        s.add_clause(&[act.negate(), lit(-1)]); // guarded contradiction
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[act]),
            SatResult::Unsat
        );
        s.reset_to_root();
        s.add_clause(&[act.negate()]); // pop: the guarded group goes inert
        let act2 = Lit::pos(s.new_var());
        s.add_clause(&[act2.negate(), lit(2)]);
        assert_eq!(
            s.solve_with_assumptions(&SatBudget::default(), &[act2]),
            SatResult::Sat
        );
        assert!(s.model_value(1));
        s.reset_to_root();
    }

    #[test]
    fn assumption_solve_matches_fresh_solve_on_units() {
        // Solving with assumption `a` must agree with a fresh solver where
        // `a` is a unit clause, over a small family of instances.
        for seed in 0..20u64 {
            let mut state = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let n = 6;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..12 {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n) as Var;
                    clause.push(Lit::new(v, next() % 2 == 1));
                }
                clauses.push(clause);
            }
            let assumption = Lit::new((next() % n) as Var, next() % 2 == 1);

            let mut fresh = solver_with_vars(n as usize);
            for c in &clauses {
                fresh.add_clause(c);
            }
            fresh.add_clause(&[assumption]);
            let want = fresh.solve(&SatBudget::default());

            let mut inc = solver_with_vars(n as usize);
            for c in &clauses {
                inc.add_clause(c);
            }
            let got = inc.solve_with_assumptions(&SatBudget::default(), &[assumption]);
            assert_eq!(got, want, "seed {}", seed);
        }
    }

    #[test]
    fn cnf_fingerprint_tracks_instance_content() {
        let mut a = solver_with_vars(3);
        a.add_clause(&[lit(1), lit(2)]);
        a.add_clause(&[lit(-2), lit(3)]);
        let mut b = solver_with_vars(3);
        b.add_clause(&[lit(1), lit(2)]);
        b.add_clause(&[lit(-2), lit(3)]);
        assert_eq!(a.cnf_fingerprint(), b.cnf_fingerprint());
        b.add_clause(&[lit(-3)]);
        assert_ne!(a.cnf_fingerprint(), b.cnf_fingerprint());
    }

    #[test]
    fn stats_are_populated() {
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(-1), lit(3)]);
        s.add_clause(&[lit(-2), lit(-3)]);
        assert_eq!(s.solve(&SatBudget::default()), SatResult::Sat);
        assert!(s.stats.decisions + s.stats.propagations > 0);
    }
}
