//! # lv-smt — a QF_BV SMT solver (bit-blasting + CDCL SAT)
//!
//! The paper verifies vectorizations by having Alive2 encode refinement
//! queries into SMT-LIB and discharge them with Z3. Z3 is not available to
//! this reproduction, so this crate provides the decision procedure the
//! translation validator needs: quantifier-free bitvector formulas over
//! 32-bit values, decided by Tseitin bit-blasting into CNF and a CDCL SAT
//! solver. Resource budgets turn long-running queries into `Unknown`
//! results, reproducing the timeout behaviour that motivates the paper's
//! domain-specific optimizations (Sections 3.2 and 3.3).
//!
//! * [`term`] — hash-consed terms with constructor-time simplification
//!   ([`Context`]) and an alpha-insensitive [`structural_hash`];
//! * [`bitblast`] — Tseitin encoding of the bitvector operations
//!   ([`BitBlaster`]), with a blasted-CNF memo ([`BlastCache`]) replaying
//!   recorded clause streams for structurally repeated queries;
//! * [`sat`] — the CDCL SAT solver ([`SatSolver`]) with a flat clause
//!   arena, MiniSat-style assumption solving for the incremental push/pop
//!   pathway, and opt-in inprocessing (LBD-driven learned-clause DB
//!   reduction, on-the-fly self-subsumption);
//! * [`preprocess`] — SatELite-style clause-database preprocessing
//!   ([`preprocess::preprocess`], [`SimplifyConfig`]), run once per query
//!   before search;
//! * [`solver`] — the user-facing facade ([`Solver`], [`CheckResult`],
//!   [`Validity`]), including the incremental per-scalar session
//!   ([`Solver::begin_incremental`] / [`Solver::check_assuming`]) and the
//!   reuse counters ([`ReuseStats`]).
//!
//! # Preprocessing and inprocessing
//!
//! With [`SimplifyConfig::preprocess`] enabled (via
//! [`Solver::set_simplify`]), every query's bit-blasted CNF is simplified
//! once before CDCL search: unit propagation to fixpoint, pure-literal
//! elimination, subsumption + self-subsuming resolution, and bounded
//! variable elimination. The rules that only preserve satisfiability
//! (pure literals, variable elimination) respect a **freeze set**; a
//! **reconstruction stack** rebuilds values for eliminated variables when a
//! `Sat` answer needs a counterexample, so models always satisfy the
//! original formula. [`SimplifyConfig::inprocess`] additionally enables the
//! search-time hooks inside [`SatSolver`].
//!
//! The subsystem composes with the reuse stack: preprocessing runs on the
//! *post-replay* clause stream, so [`BlastCache`] records and replays the
//! unsimplified blast and memo hits stay clause-identical; incremental
//! sessions preprocess only their base clauses, with every variable
//! reachable from the session's [`BlastState`] frozen so later
//! per-candidate clauses and activation literals stay meaningful.
//!
//! # Examples
//!
//! ```
//! use lv_smt::{Solver, SolverBudget, Validity};
//!
//! let mut solver = Solver::new();
//! let x = solver.ctx.bv_var("x", 32);
//! let y = solver.ctx.bv_var("y", 32);
//! let lhs = solver.ctx.bv_add(x, y);
//! let rhs = solver.ctx.bv_add(y, x);
//! let commutes = solver.ctx.eq(lhs, rhs);
//! assert_eq!(
//!     solver.check_validity(commutes, &SolverBudget::default()),
//!     Validity::Valid
//! );
//! ```

#![warn(missing_docs)]

pub mod bitblast;
pub mod preprocess;
pub mod sat;
pub mod solver;
pub mod term;

pub use bitblast::{BitBlaster, Bits, BlastCache, BlastError, BlastState};
pub use preprocess::{PreprocessStats, Preprocessed, SimplifyConfig, SimplifyStats};
pub use sat::{InprocessStats, Lit, SatBudget, SatResult, SatSolver, SatStats, Var};
pub use solver::{CheckResult, CheckStats, Model, ReuseStats, Solver, SolverBudget, Validity};
pub use term::{mask, sign_extend, structural_hash, Context, Op, Sort, TermData, TermId};
