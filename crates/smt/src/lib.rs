//! # lv-smt — a QF_BV SMT solver (bit-blasting + CDCL SAT)
//!
//! The paper verifies vectorizations by having Alive2 encode refinement
//! queries into SMT-LIB and discharge them with Z3. Z3 is not available to
//! this reproduction, so this crate provides the decision procedure the
//! translation validator needs: quantifier-free bitvector formulas over
//! 32-bit values, decided by Tseitin bit-blasting into CNF and a CDCL SAT
//! solver. Resource budgets turn long-running queries into `Unknown`
//! results, reproducing the timeout behaviour that motivates the paper's
//! domain-specific optimizations (Sections 3.2 and 3.3).
//!
//! * [`term`] — hash-consed terms with constructor-time simplification
//!   ([`Context`]) and an alpha-insensitive [`structural_hash`];
//! * [`bitblast`] — Tseitin encoding of the bitvector operations
//!   ([`BitBlaster`]), with a blasted-CNF memo ([`BlastCache`]) replaying
//!   recorded clause streams for structurally repeated queries;
//! * [`sat`] — the CDCL SAT solver ([`SatSolver`]), with MiniSat-style
//!   assumption solving for the incremental push/pop pathway;
//! * [`solver`] — the user-facing facade ([`Solver`], [`CheckResult`],
//!   [`Validity`]), including the incremental per-scalar session
//!   ([`Solver::begin_incremental`] / [`Solver::check_assuming`]) and the
//!   reuse counters ([`ReuseStats`]).
//!
//! # Examples
//!
//! ```
//! use lv_smt::{Solver, SolverBudget, Validity};
//!
//! let mut solver = Solver::new();
//! let x = solver.ctx.bv_var("x", 32);
//! let y = solver.ctx.bv_var("y", 32);
//! let lhs = solver.ctx.bv_add(x, y);
//! let rhs = solver.ctx.bv_add(y, x);
//! let commutes = solver.ctx.eq(lhs, rhs);
//! assert_eq!(
//!     solver.check_validity(commutes, &SolverBudget::default()),
//!     Validity::Valid
//! );
//! ```

#![warn(missing_docs)]

pub mod bitblast;
pub mod sat;
pub mod solver;
pub mod term;

pub use bitblast::{BitBlaster, Bits, BlastCache, BlastError, BlastState};
pub use sat::{Lit, SatBudget, SatResult, SatSolver, SatStats, Var};
pub use solver::{CheckResult, CheckStats, Model, ReuseStats, Solver, SolverBudget, Validity};
pub use term::{mask, sign_extend, structural_hash, Context, Op, Sort, TermData, TermId};
