//! The user-facing solver: assert terms, check satisfiability, read models.
//!
//! This is the reproduction's stand-in for Z3 as used by Alive2: the
//! translation validator builds one verification condition per query, asks
//! for a model of its negation, and treats resource exhaustion as an
//! inconclusive (timeout-like) answer.

use crate::bitblast::BitBlaster;
use crate::sat::{SatBudget, SatResult, SatSolver};
use crate::term::{sign_extend, Context, Sort, TermId};
use std::collections::HashMap;
use std::fmt;

/// Resource limits for one `check` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBudget {
    /// Maximum SAT conflicts before returning [`CheckResult::Unknown`].
    pub max_conflicts: u64,
    /// Maximum number of CNF clauses the bit-blaster may create before the
    /// query is declared too large (models Alive2's memory-outs).
    pub max_clauses: usize,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            max_conflicts: 500_000,
            max_clauses: 4_000_000,
        }
    }
}

impl SolverBudget {
    /// A small budget useful in tests and for the "out-of-the-box Alive2"
    /// configuration that times out on hard queries.
    pub fn tight() -> SolverBudget {
        SolverBudget {
            max_conflicts: 20_000,
            max_clauses: 400_000,
        }
    }

    /// The componentwise minimum of two budgets — used by adaptive tuning,
    /// which only ever *tightens* a configured budget so that a tuned run can
    /// never spend more than the base configuration allowed.
    pub fn min_with(self, other: SolverBudget) -> SolverBudget {
        SolverBudget {
            max_conflicts: self.max_conflicts.min(other.max_conflicts),
            max_clauses: self.max_clauses.min(other.max_clauses),
        }
    }

    /// The componentwise maximum of two budgets — used to apply floors.
    pub fn max_with(self, other: SolverBudget) -> SolverBudget {
        SolverBudget {
            max_conflicts: self.max_conflicts.max(other.max_conflicts),
            max_clauses: self.max_clauses.max(other.max_clauses),
        }
    }

    /// A stable 64-bit fingerprint of the budget, folded into the engine
    /// configuration hash that keys the persistent verdict cache (a changed
    /// budget can change `Inconclusive` outcomes, so it must invalidate
    /// cached verdicts).
    pub fn fingerprint(self) -> u64 {
        // FNV-1a over the two limits, little-endian.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .max_conflicts
            .to_le_bytes()
            .into_iter()
            .chain((self.max_clauses as u64).to_le_bytes())
        {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

/// A model: concrete values for the free variables of a satisfiable query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<String, u64>,
    widths: HashMap<String, u32>,
    bools: HashMap<String, bool>,
}

impl Model {
    /// The unsigned value of a bitvector variable, if it appears in the model.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// The value of a 32-bit variable interpreted as a signed integer.
    pub fn value_i32(&self, name: &str) -> Option<i32> {
        self.values.get(name).map(|&v| {
            let w = self.widths.get(name).copied().unwrap_or(32);
            sign_extend(v, w) as i32
        })
    }

    /// The value of a boolean variable.
    pub fn bool_value(&self, name: &str) -> Option<bool> {
        self.bools.get(name).copied()
    }

    /// All bitvector assignments, sorted by name (useful for counterexample
    /// reports).
    pub fn assignments(&self) -> Vec<(String, i64)> {
        let mut out: Vec<(String, i64)> = self
            .values
            .iter()
            .map(|(k, &v)| {
                let w = self.widths.get(k).copied().unwrap_or(32);
                (k.clone(), sign_extend(v, w))
            })
            .collect();
        out.sort();
        out
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.assignments() {
            writeln!(f, "{} = {}", name, value)?;
        }
        Ok(())
    }
}

/// The result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// Satisfiable, with a model of the free variables.
    Sat(Box<Model>),
    /// Unsatisfiable.
    Unsat,
    /// The budget was exhausted (the Alive2 analogue of timeout/memory-out).
    Unknown(String),
}

impl CheckResult {
    /// Returns `true` for `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, CheckResult::Unsat)
    }

    /// Returns `true` for `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }
}

/// Statistics reported by [`Solver::check`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// CNF variables created by bit-blasting.
    pub cnf_vars: usize,
    /// CNF clauses created by bit-blasting.
    pub cnf_clauses: usize,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
}

/// An incremental-style solver facade over the term [`Context`].
#[derive(Debug, Default)]
pub struct Solver {
    /// The term context; build terms through this.
    pub ctx: Context,
    assertions: Vec<TermId>,
    /// Statistics from the most recent `check` call.
    pub last_stats: CheckStats,
}

impl Solver {
    /// Creates a solver with an empty context.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Adds an assertion.
    pub fn assert(&mut self, term: TermId) {
        debug_assert_eq!(self.ctx.sort(term), Sort::Bool);
        self.assertions.push(term);
    }

    /// Removes all assertions, keeping the term context.
    pub fn reset_assertions(&mut self) {
        self.assertions.clear();
    }

    /// Resets the solver to its just-constructed state while keeping the
    /// allocations of the term arena and interner.
    ///
    /// Batch-verification workers hold one `Solver` for their whole lifetime
    /// and call this between queries, so per-query setup does not have to
    /// reallocate the term context from scratch. After `recycle` the solver
    /// behaves exactly like `Solver::new()` — same term ids for the same
    /// construction order — which keeps batched runs bit-identical to
    /// one-shot runs.
    pub fn recycle(&mut self) {
        self.ctx.clear();
        self.assertions.clear();
        self.last_stats = CheckStats::default();
    }

    /// The current assertions.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Checks satisfiability of the conjunction of all assertions.
    pub fn check(&mut self, budget: &SolverBudget) -> CheckResult {
        // Fast path: constant assertions.
        if self
            .assertions
            .iter()
            .any(|&a| self.ctx.as_bool_const(a) == Some(false))
        {
            return CheckResult::Unsat;
        }

        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&self.ctx, &mut sat);
        for &assertion in &self.assertions {
            if let Err(err) = blaster.assert(assertion) {
                // An ill-sorted query is inconclusive, not fatal: batch
                // workers treat it like a timeout and move on.
                return CheckResult::Unknown(err.to_string());
            }
        }
        let var_bits = blaster.var_bits().clone();
        let var_bools = blaster.var_bools().clone();

        self.last_stats = CheckStats {
            cnf_vars: sat.num_vars(),
            cnf_clauses: sat.num_clauses(),
            ..CheckStats::default()
        };
        if sat.num_clauses() > budget.max_clauses {
            return CheckResult::Unknown(format!(
                "bit-blasting produced {} clauses, exceeding the budget of {}",
                sat.num_clauses(),
                budget.max_clauses
            ));
        }

        let result = sat.solve(&SatBudget {
            max_conflicts: budget.max_conflicts,
        });
        self.last_stats.conflicts = sat.stats.conflicts;
        self.last_stats.decisions = sat.stats.decisions;

        match result {
            SatResult::Unsat => CheckResult::Unsat,
            SatResult::Unknown => CheckResult::Unknown(format!(
                "solver exhausted its budget of {} conflicts",
                budget.max_conflicts
            )),
            SatResult::Sat => {
                let mut model = Model::default();
                for (name, bits) in &var_bits {
                    let mut value: u64 = 0;
                    for (i, lit) in bits.iter().enumerate() {
                        if sat.model_value(lit.var()) ^ lit.is_neg() {
                            value |= 1 << i;
                        }
                    }
                    model.values.insert(name.clone(), value);
                    model.widths.insert(name.clone(), bits.len() as u32);
                }
                for (name, lit) in &var_bools {
                    model
                        .bools
                        .insert(name.clone(), sat.model_value(lit.var()) ^ lit.is_neg());
                }
                CheckResult::Sat(Box::new(model))
            }
        }
    }

    /// Convenience: checks whether `formula` is valid (true for all variable
    /// assignments) by asking for a model of its negation.
    pub fn check_validity(&mut self, formula: TermId, budget: &SolverBudget) -> Validity {
        let negated = self.ctx.not(formula);
        let saved = std::mem::take(&mut self.assertions);
        self.assertions = saved.clone();
        self.assertions.push(negated);
        let result = self.check(budget);
        self.assertions = saved;
        match result {
            CheckResult::Unsat => Validity::Valid,
            CheckResult::Sat(model) => Validity::Invalid(model),
            CheckResult::Unknown(reason) => Validity::Unknown(reason),
        }
    }
}

/// The result of a validity check (universally quantified over free variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The formula holds for every assignment.
    Valid,
    /// A counterexample was found.
    Invalid(Box<Model>),
    /// The budget was exhausted.
    Unknown(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let three = solver.ctx.bv32(3);
        let seven = solver.ctx.bv32(7);
        let prod = solver.ctx.bv_mul(x, three);
        let eq = solver.ctx.eq(prod, seven);
        // 3x == 7 has a solution modulo 2^32 (3 is invertible).
        solver.assert(eq);
        match solver.check(&SolverBudget::default()) {
            CheckResult::Sat(model) => {
                let xv = model.value("x").unwrap();
                assert_eq!((xv.wrapping_mul(3)) & 0xffff_ffff, 7);
            }
            other => panic!("expected sat, got {:?}", other),
        }
    }

    #[test]
    fn unsat_parity() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let two = solver.ctx.bv32(2);
        let one = solver.ctx.bv32(1);
        let double = solver.ctx.bv_mul(x, two);
        let eq = solver.ctx.eq(double, one);
        // 2x == 1 has no solution modulo 2^32.
        solver.assert(eq);
        assert!(solver.check(&SolverBudget::default()).is_unsat());
    }

    #[test]
    fn validity_of_commutativity() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let xy = solver.ctx.bv_add(x, y);
        let yx = solver.ctx.bv_add(y, x);
        let eq = solver.ctx.eq(xy, yx);
        assert_eq!(
            solver.check_validity(eq, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn invalid_formula_produces_counterexample() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let one = solver.ctx.bv32(1);
        let inc = solver.ctx.bv_add(x, one);
        let eq = solver.ctx.eq(inc, x);
        match solver.check_validity(eq, &SolverBudget::default()) {
            Validity::Invalid(model) => {
                assert!(model.value("x").is_some());
            }
            other => panic!("expected invalid, got {:?}", other),
        }
    }

    #[test]
    fn distributivity_is_valid() {
        // (x + y) * 2 == 2x + 2y — exercises the multiplier on symbolic inputs.
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let two = solver.ctx.bv32(2);
        let sum = solver.ctx.bv_add(x, y);
        let lhs = solver.ctx.bv_mul(sum, two);
        let x2 = solver.ctx.bv_mul(x, two);
        let y2 = solver.ctx.bv_mul(y, two);
        let rhs = solver.ctx.bv_add(x2, y2);
        let eq = solver.ctx.eq(lhs, rhs);
        assert_eq!(
            solver.check_validity(eq, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        // Two symbolic multiplications that are equal but hard for a SAT
        // solver with an extremely small conflict budget.
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let xy = solver.ctx.bv_mul(x, y);
        let yx = solver.ctx.bv_mul(y, x);
        let eq = solver.ctx.eq(xy, yx);
        let result = solver.check_validity(
            eq,
            &SolverBudget {
                max_conflicts: 3,
                max_clauses: 4_000_000,
            },
        );
        assert!(
            matches!(result, Validity::Unknown(_) | Validity::Valid),
            "tiny budgets must never report Invalid for a valid formula: {:?}",
            result
        );
    }

    #[test]
    fn clause_budget_is_enforced() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let xy = solver.ctx.bv_mul(x, y);
        let z = solver.ctx.bv32(12345);
        let eq = solver.ctx.eq(xy, z);
        solver.assert(eq);
        let result = solver.check(&SolverBudget {
            max_conflicts: 1_000_000,
            max_clauses: 10,
        });
        assert!(matches!(result, CheckResult::Unknown(_)));
    }

    #[test]
    fn stats_are_recorded() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let five = solver.ctx.bv32(5);
        let eq = solver.ctx.eq(x, five);
        solver.assert(eq);
        let _ = solver.check(&SolverBudget::default());
        assert!(solver.last_stats.cnf_vars > 0);
        assert!(solver.last_stats.cnf_clauses > 0);
    }

    #[test]
    fn ill_sorted_query_is_unknown_not_a_panic() {
        // `eq` between a boolean and a bitvector is constructible (the
        // Context only folds same-sort cases); it must surface as Unknown.
        let mut solver = Solver::new();
        let p = solver.ctx.bool_var("p");
        let x = solver.ctx.bv_var("x", 32);
        let eq = solver.ctx.eq(p, x);
        solver.assert(eq);
        match solver.check(&SolverBudget::default()) {
            CheckResult::Unknown(reason) => {
                assert!(reason.contains("different encodings"), "{}", reason)
            }
            other => panic!("expected Unknown, got {:?}", other),
        }
    }

    #[test]
    fn recycled_solver_replays_identically() {
        let mut solver = Solver::new();
        let run = |solver: &mut Solver| {
            let x = solver.ctx.bv_var("x", 32);
            let y = solver.ctx.bv_var("y", 32);
            let sum = solver.ctx.bv_add(x, y);
            let ten = solver.ctx.bv32(10);
            let eq = solver.ctx.eq(sum, ten);
            solver.assert(eq);
            (solver.ctx.len(), solver.check(&SolverBudget::default()))
        };
        let (terms_fresh, first) = run(&mut solver);
        solver.recycle();
        assert!(solver.ctx.is_empty());
        assert!(solver.assertions().is_empty());
        let (terms_recycled, second) = run(&mut solver);
        assert_eq!(terms_fresh, terms_recycled);
        assert_eq!(first, second);
    }

    #[test]
    fn model_display_and_i32() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let neg = solver.ctx.bv32(-9);
        let eq = solver.ctx.eq(x, neg);
        solver.assert(eq);
        match solver.check(&SolverBudget::default()) {
            CheckResult::Sat(model) => {
                assert_eq!(model.value_i32("x"), Some(-9));
                assert!(model.to_string().contains("x = -9"));
            }
            other => panic!("expected sat, got {:?}", other),
        }
    }
}
