//! The user-facing solver: assert terms, check satisfiability, read models.
//!
//! This is the reproduction's stand-in for Z3 as used by Alive2: the
//! translation validator builds one verification condition per query, asks
//! for a model of its negation, and treats resource exhaustion as an
//! inconclusive (timeout-like) answer.
//!
//! # Cross-query reuse
//!
//! Two optional mechanisms cut repeated work across the queries of a batch
//! sweep; both default off, and the plain [`Solver::check`] path is
//! byte-for-byte unchanged when they stay off.
//!
//! - **Blasted-CNF memo** ([`Solver::enable_blast_memo`]): a
//!   [`BlastCache`] keyed by the structural hash of each asserted root,
//!   replaying the recorded CNF stream for structurally identical
//!   assertions (see [`crate::bitblast`] for the keying and the
//!   bit-identity guarantee). The memo lives on the `Solver` *beside* the
//!   recycled term [`Context`] — [`Solver::recycle`] clears terms and
//!   assertions but keeps the memo, which is the point: one worker verifies
//!   many candidates of the same scalar, and their verification conditions
//!   re-blast identically across recycles.
//!
//! - **Incremental push/pop** ([`Solver::begin_incremental`] /
//!   [`Solver::check_assuming`]): the assertions at `begin_incremental`
//!   time (the scalar-side context) are blasted once into a persistent SAT
//!   instance. Each `check_assuming(f)` then blasts only `f`, guards it
//!   behind a fresh *activation literal* `act` (one clause `¬act ∨ f`),
//!   and solves under the assumption `[act]`; the "pop" is an
//!   unconditional unit clause `¬act` that permanently satisfies the
//!   guard, so retired candidate constraints can never influence later
//!   queries. Term encodings are shared through the persistent
//!   [`BitBlaster`] instance cache, so a subterm common to every candidate
//!   (the scalar's symbolic execution, in the verifier) is blasted exactly
//!   once per session.

use crate::bitblast::{BitBlaster, BlastCache, BlastState};
use crate::preprocess::{preprocess_solver, SimplifyConfig, SimplifyStats};
use crate::sat::{InprocessStats, Lit, SatBudget, SatResult, SatSolver, Var};
use crate::term::{sign_extend, Context, Sort, TermId};
use std::collections::HashMap;
use std::fmt;

/// Resource limits for one `check` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBudget {
    /// Maximum SAT conflicts before returning [`CheckResult::Unknown`].
    pub max_conflicts: u64,
    /// Maximum number of CNF clauses the bit-blaster may create before the
    /// query is declared too large (models Alive2's memory-outs).
    pub max_clauses: usize,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            max_conflicts: 500_000,
            max_clauses: 4_000_000,
        }
    }
}

impl SolverBudget {
    /// A small budget useful in tests and for the "out-of-the-box Alive2"
    /// configuration that times out on hard queries.
    pub fn tight() -> SolverBudget {
        SolverBudget {
            max_conflicts: 20_000,
            max_clauses: 400_000,
        }
    }

    /// The componentwise minimum of two budgets — used by adaptive tuning,
    /// which only ever *tightens* a configured budget so that a tuned run can
    /// never spend more than the base configuration allowed.
    pub fn min_with(self, other: SolverBudget) -> SolverBudget {
        SolverBudget {
            max_conflicts: self.max_conflicts.min(other.max_conflicts),
            max_clauses: self.max_clauses.min(other.max_clauses),
        }
    }

    /// The componentwise maximum of two budgets — used to apply floors.
    pub fn max_with(self, other: SolverBudget) -> SolverBudget {
        SolverBudget {
            max_conflicts: self.max_conflicts.max(other.max_conflicts),
            max_clauses: self.max_clauses.max(other.max_clauses),
        }
    }

    /// A stable 64-bit fingerprint of the budget, folded into the engine
    /// configuration hash that keys the persistent verdict cache (a changed
    /// budget can change `Inconclusive` outcomes, so it must invalidate
    /// cached verdicts).
    pub fn fingerprint(self) -> u64 {
        // FNV-1a over the two limits, little-endian.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .max_conflicts
            .to_le_bytes()
            .into_iter()
            .chain((self.max_clauses as u64).to_le_bytes())
        {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

/// A model: concrete values for the free variables of a satisfiable query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<String, u64>,
    widths: HashMap<String, u32>,
    bools: HashMap<String, bool>,
}

impl Model {
    /// The unsigned value of a bitvector variable, if it appears in the model.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// The value of a 32-bit variable interpreted as a signed integer.
    pub fn value_i32(&self, name: &str) -> Option<i32> {
        self.values.get(name).map(|&v| {
            let w = self.widths.get(name).copied().unwrap_or(32);
            sign_extend(v, w) as i32
        })
    }

    /// The value of a boolean variable.
    pub fn bool_value(&self, name: &str) -> Option<bool> {
        self.bools.get(name).copied()
    }

    /// All bitvector assignments, sorted by name (useful for counterexample
    /// reports).
    pub fn assignments(&self) -> Vec<(String, i64)> {
        let mut out: Vec<(String, i64)> = self
            .values
            .iter()
            .map(|(k, &v)| {
                let w = self.widths.get(k).copied().unwrap_or(32);
                (k.clone(), sign_extend(v, w))
            })
            .collect();
        out.sort();
        out
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.assignments() {
            writeln!(f, "{} = {}", name, value)?;
        }
        Ok(())
    }
}

/// The result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// Satisfiable, with a model of the free variables.
    Sat(Box<Model>),
    /// Unsatisfiable.
    Unsat,
    /// The budget was exhausted (the Alive2 analogue of timeout/memory-out).
    Unknown(String),
}

impl CheckResult {
    /// Returns `true` for `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, CheckResult::Unsat)
    }

    /// Returns `true` for `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }
}

/// Statistics reported by [`Solver::check`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// CNF variables created by bit-blasting.
    pub cnf_vars: usize,
    /// CNF clauses created by bit-blasting.
    pub cnf_clauses: usize,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
}

/// Counters for the cross-query reuse machinery; see the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Assertion roots replayed from the blasted-CNF memo.
    pub blast_hits: u64,
    /// Assertion roots blasted fresh while the memo was enabled.
    pub blast_misses: u64,
    /// Queries answered by an assumption solve on a warm incremental
    /// session instead of a from-scratch blast.
    pub assumption_reuses: u64,
}

impl ReuseStats {
    /// Componentwise sum, for aggregating per-worker counters.
    pub fn absorb(&mut self, other: ReuseStats) {
        self.blast_hits += other.blast_hits;
        self.blast_misses += other.blast_misses;
        self.assumption_reuses += other.assumption_reuses;
    }
}

/// The persistent half of an incremental session: the warm SAT instance,
/// the blaster state binding term encodings and variables into it, and the
/// clause count of the scalar-side base (for budget accounting).
#[derive(Debug)]
struct IncSession {
    sat: SatSolver,
    blast: BlastState,
    base_clauses: usize,
}

/// How many keyed incremental sessions a solver keeps warm at once. The
/// verifier's stage cascade builds one scalar-side context per symbolic
/// strategy, so a handful covers a whole same-scalar job group; beyond the
/// cap the oldest session is dropped (each holds a full SAT instance).
const MAX_INC_SESSIONS: usize = 4;

/// An incremental-style solver facade over the term [`Context`].
#[derive(Debug, Default)]
pub struct Solver {
    /// The term context; build terms through this.
    pub ctx: Context,
    assertions: Vec<TermId>,
    /// Statistics from the most recent `check` call.
    pub last_stats: CheckStats,
    /// Blasted-CNF memo; survives [`Solver::recycle`] when enabled.
    blast_memo: Option<BlastCache>,
    /// Warm incremental sessions, keyed by caller-chosen scalar-context
    /// keys; all dropped by [`Solver::recycle`].
    inc: Vec<(u64, IncSession)>,
    /// Cumulative count of `check_assuming` calls on warm sessions.
    assumption_reuses: u64,
    /// Which simplification layers run; both off by default, keeping the
    /// solve path bit-identical to a solver without the subsystem.
    simplify: SimplifyConfig,
    /// Cumulative simplification counters (all zero while `simplify` is off).
    simplify_stats: SimplifyStats,
}

impl Solver {
    /// Creates a solver with an empty context.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Enables the blasted-CNF memo. Idempotent: an already-populated memo
    /// is kept.
    pub fn enable_blast_memo(&mut self) {
        if self.blast_memo.is_none() {
            self.blast_memo = Some(BlastCache::new());
        }
    }

    /// Selects which simplification layers run on subsequent checks: CNF
    /// preprocessing before search ([`crate::preprocess`]) and/or the
    /// in-search inprocessing hooks of [`SatSolver`]. Off by default.
    ///
    /// Preprocessing composes with the reuse stack: it runs on the
    /// *post-replay* clause stream (after any [`BlastCache`] record or
    /// replay), so memo entries stay clause-identical; incremental sessions
    /// preprocess only their base clauses, freezing every variable reachable
    /// from the session's blast state.
    pub fn set_simplify(&mut self, simplify: SimplifyConfig) {
        self.simplify = simplify;
    }

    /// Cumulative simplification counters (all zero while simplify is off).
    pub fn simplify_stats(&self) -> SimplifyStats {
        self.simplify_stats
    }

    /// Folds one solve's inprocessing delta and arena high-water mark into
    /// the cumulative simplify counters. No-op while simplify is off, so the
    /// counters stay exactly zero on the default path.
    fn absorb_solve_effects(&mut self, before: InprocessStats, sat: &SatSolver) {
        if !self.simplify.any() {
            return;
        }
        let after = sat.inprocess_stats();
        self.simplify_stats.clauses_subsumed += after.learned_deleted - before.learned_deleted;
        self.simplify_stats.clauses_strengthened += after.minimized_lits - before.minimized_lits;
        self.simplify_stats.arena_bytes = self
            .simplify_stats
            .arena_bytes
            .max(sat.arena_bytes() as u64);
    }

    /// Cumulative reuse counters (zeros when reuse is off).
    pub fn reuse_stats(&self) -> ReuseStats {
        ReuseStats {
            blast_hits: self.blast_memo.as_ref().map_or(0, BlastCache::hits),
            blast_misses: self.blast_memo.as_ref().map_or(0, BlastCache::misses),
            assumption_reuses: self.assumption_reuses,
        }
    }

    /// Adds an assertion.
    pub fn assert(&mut self, term: TermId) {
        debug_assert_eq!(self.ctx.sort(term), Sort::Bool);
        self.assertions.push(term);
    }

    /// Removes all assertions, keeping the term context.
    pub fn reset_assertions(&mut self) {
        self.assertions.clear();
    }

    /// Resets the solver to its just-constructed state while keeping the
    /// allocations of the term arena and interner.
    ///
    /// Batch-verification workers hold one `Solver` for their whole lifetime
    /// and call this between queries, so per-query setup does not have to
    /// reallocate the term context from scratch. After `recycle` the solver
    /// behaves exactly like `Solver::new()` — same term ids for the same
    /// construction order — which keeps batched runs bit-identical to
    /// one-shot runs.
    pub fn recycle(&mut self) {
        self.ctx.clear();
        self.assertions.clear();
        self.last_stats = CheckStats::default();
        // Term ids are invalidated by the clear, so any warm incremental
        // session dies with them — but the blasted-CNF memo is keyed by
        // structural hash, not term id, and deliberately survives: reusing
        // blasts across recycles is its whole purpose.
        self.inc.clear();
    }

    /// The current assertions.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Checks satisfiability of the conjunction of all assertions.
    pub fn check(&mut self, budget: &SolverBudget) -> CheckResult {
        // Fast path: constant assertions.
        if self
            .assertions
            .iter()
            .any(|&a| self.ctx.as_bool_const(a) == Some(false))
        {
            return CheckResult::Unsat;
        }

        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&self.ctx, &mut sat);
        for &assertion in &self.assertions {
            let blasted = match &mut self.blast_memo {
                Some(memo) => blaster.assert_with_cache(assertion, memo),
                None => blaster.assert(assertion),
            };
            if let Err(err) = blasted {
                // An ill-sorted query is inconclusive, not fatal: batch
                // workers treat it like a timeout and move on.
                return CheckResult::Unknown(err.to_string());
            }
        }
        let var_bits = blaster.var_bits().clone();
        let var_bools = blaster.var_bools().clone();

        self.last_stats = CheckStats {
            cnf_vars: sat.num_vars(),
            cnf_clauses: sat.num_clauses(),
            ..CheckStats::default()
        };
        if sat.num_clauses() > budget.max_clauses {
            return CheckResult::Unknown(format!(
                "bit-blasting produced {} clauses, exceeding the budget of {}",
                sat.num_clauses(),
                budget.max_clauses
            ));
        }

        // Preprocess the post-blast clause stream when enabled: the memo
        // above already recorded/replayed the raw blast, so cache entries
        // stay clause-identical regardless of this step.
        let pre = if self.simplify.preprocess {
            let t0 = std::time::Instant::now();
            let pre = preprocess_solver(&sat, &[]);
            self.simplify_stats.vars_eliminated += pre.stats.vars_eliminated;
            self.simplify_stats.clauses_subsumed += pre.stats.clauses_subsumed;
            self.simplify_stats.clauses_strengthened += pre.stats.clauses_strengthened;
            self.simplify_stats.preprocess_micros += t0.elapsed().as_micros() as u64;
            sat = pre.build_solver();
            Some(pre)
        } else {
            None
        };
        if self.simplify.inprocess {
            sat.set_inprocessing(true);
        }
        let inp_before = sat.inprocess_stats();

        let result = sat.solve(&SatBudget {
            max_conflicts: budget.max_conflicts,
        });
        self.last_stats.conflicts = sat.stats.conflicts;
        self.last_stats.decisions = sat.stats.decisions;
        self.absorb_solve_effects(inp_before, &sat);

        match result {
            SatResult::Unsat => CheckResult::Unsat,
            SatResult::Unknown => CheckResult::Unknown(format!(
                "solver exhausted its budget of {} conflicts",
                budget.max_conflicts
            )),
            SatResult::Sat => match pre {
                None => CheckResult::Sat(Box::new(extract_model(&sat, &var_bits, &var_bools))),
                Some(pre) => {
                    // Rebuild values for eliminated variables before reading
                    // the model, so counterexamples satisfy the original
                    // (unsimplified) formula.
                    let mut model: Vec<bool> = (0..pre.num_vars())
                        .map(|v| sat.model_value(v as Var))
                        .collect();
                    pre.complete_model(&mut model);
                    CheckResult::Sat(Box::new(extract_model_with(
                        |v| model[v as usize],
                        &var_bits,
                        &var_bools,
                    )))
                }
            },
        }
    }

    /// Begins an incremental session under `key`: blasts the current
    /// assertions (the scalar-side context, in the verifier) into a
    /// persistent SAT instance that later [`Solver::check_assuming`] calls
    /// with the same key extend. An existing session under the key is
    /// replaced; the oldest session is evicted beyond a small cap.
    /// Ill-sorted assertions surface as an error and leave the solver
    /// without a session under the key.
    pub fn begin_incremental(&mut self, key: u64) -> Result<(), String> {
        self.inc.retain(|(k, _)| *k != key);
        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new(&self.ctx, &mut sat);
        for &assertion in &self.assertions {
            let blasted = match &mut self.blast_memo {
                Some(memo) => blaster.assert_with_cache(assertion, memo),
                None => blaster.assert(assertion),
            };
            if let Err(err) = blasted {
                return Err(err.to_string());
            }
        }
        let blast = blaster.into_state();
        if self.simplify.preprocess {
            // Preprocess the scalar-side base clauses only. Every variable
            // reachable from the blast state is frozen: later candidate
            // blasts re-use those encodings, and the activation literals of
            // `check_assuming` are created after this point, so only dead
            // Tseitin internals are eliminated.
            let t0 = std::time::Instant::now();
            let frozen = blast.cnf_vars();
            let pre = preprocess_solver(&sat, &frozen);
            self.simplify_stats.vars_eliminated += pre.stats.vars_eliminated;
            self.simplify_stats.clauses_subsumed += pre.stats.clauses_subsumed;
            self.simplify_stats.clauses_strengthened += pre.stats.clauses_strengthened;
            self.simplify_stats.preprocess_micros += t0.elapsed().as_micros() as u64;
            sat = pre.build_solver();
        }
        if self.simplify.inprocess {
            sat.set_inprocessing(true);
        }
        let base_clauses = sat.num_clauses();
        self.inc.push((
            key,
            IncSession {
                sat,
                blast,
                base_clauses,
            },
        ));
        if self.inc.len() > MAX_INC_SESSIONS {
            self.inc.remove(0);
        }
        Ok(())
    }

    /// `true` while a warm incremental session is loaded under `key`.
    pub fn has_incremental_session(&self, key: u64) -> bool {
        self.inc.iter().any(|(k, _)| *k == key)
    }

    /// Drops every incremental session, keeping context and memo.
    pub fn end_incremental(&mut self) {
        self.inc.clear();
    }

    /// Checks satisfiability of the keyed session's assertions ∧ `formula`
    /// on the warm incremental instance, then retracts `formula`.
    ///
    /// `formula` is blasted into the persistent instance (sharing every
    /// already-encoded subterm), guarded behind a fresh activation literal,
    /// and solved under that single assumption; afterwards a unit clause
    /// retires the activation literal for good. Without a session under
    /// `key` this falls back to a one-shot [`Solver::check`] of the
    /// solver's current assertions ∧ `formula`.
    ///
    /// The clause budget is applied to `base + delta` — the scalar-side
    /// clauses plus the clauses this query added — so accumulation from
    /// earlier (retired) candidates does not eat later candidates' budgets.
    pub fn check_assuming(
        &mut self,
        key: u64,
        formula: TermId,
        budget: &SolverBudget,
    ) -> CheckResult {
        let Some(pos) = self.inc.iter().position(|(k, _)| *k == key) else {
            self.assertions.push(formula);
            let result = self.check(budget);
            self.assertions.pop();
            return result;
        };
        let (_, session) = self.inc.remove(pos);
        let IncSession {
            mut sat,
            blast,
            base_clauses,
        } = session;
        let clauses_before = sat.num_clauses();
        let mut blaster = BitBlaster::resume(&self.ctx, &mut sat, blast);
        let blasted = blaster.blast(formula).and_then(|bits| bits.try_bool());
        let blast = blaster.into_state();
        let lit = match blasted {
            Ok(lit) => lit,
            Err(err) => {
                self.inc.push((
                    key,
                    IncSession {
                        sat,
                        blast,
                        base_clauses,
                    },
                ));
                return CheckResult::Unknown(err.to_string());
            }
        };
        let act = Lit::pos(sat.new_var());
        sat.add_clause(&[act.negate(), lit]);

        let effective_clauses = base_clauses + (sat.num_clauses() - clauses_before);
        self.last_stats = CheckStats {
            cnf_vars: sat.num_vars(),
            cnf_clauses: effective_clauses,
            ..CheckStats::default()
        };
        let result = if effective_clauses > budget.max_clauses {
            CheckResult::Unknown(format!(
                "bit-blasting produced {} clauses, exceeding the budget of {}",
                effective_clauses, budget.max_clauses
            ))
        } else {
            let inp_before = sat.inprocess_stats();
            let sat_result = sat.solve_with_assumptions(
                &SatBudget {
                    max_conflicts: budget.max_conflicts,
                },
                &[act],
            );
            self.last_stats.conflicts = sat.stats.conflicts;
            self.last_stats.decisions = sat.stats.decisions;
            self.absorb_solve_effects(inp_before, &sat);
            match sat_result {
                SatResult::Unsat => CheckResult::Unsat,
                SatResult::Unknown => CheckResult::Unknown(format!(
                    "solver exhausted its budget of {} conflicts",
                    budget.max_conflicts
                )),
                SatResult::Sat => CheckResult::Sat(Box::new(extract_model(
                    &sat,
                    blast.var_bits(),
                    blast.var_bools(),
                ))),
            }
        };
        // Pop: drop the assumption decisions and permanently satisfy the
        // guard, so this candidate's constraints can never fire again.
        sat.reset_to_root();
        sat.add_clause(&[act.negate()]);
        self.assumption_reuses += 1;
        self.inc.push((
            key,
            IncSession {
                sat,
                blast,
                base_clauses,
            },
        ));
        result
    }

    /// [`Solver::check_validity`] on the warm incremental session: asks
    /// [`Solver::check_assuming`] for a model of `¬formula`.
    pub fn check_validity_assuming(
        &mut self,
        key: u64,
        formula: TermId,
        budget: &SolverBudget,
    ) -> Validity {
        let negated = self.ctx.not(formula);
        match self.check_assuming(key, negated, budget) {
            CheckResult::Unsat => Validity::Valid,
            CheckResult::Sat(model) => Validity::Invalid(model),
            CheckResult::Unknown(reason) => Validity::Unknown(reason),
        }
    }

    /// Convenience: checks whether `formula` is valid (true for all variable
    /// assignments) by asking for a model of its negation.
    pub fn check_validity(&mut self, formula: TermId, budget: &SolverBudget) -> Validity {
        let negated = self.ctx.not(formula);
        let saved = std::mem::take(&mut self.assertions);
        self.assertions = saved.clone();
        self.assertions.push(negated);
        let result = self.check(budget);
        self.assertions = saved;
        match result {
            CheckResult::Unsat => Validity::Valid,
            CheckResult::Sat(model) => Validity::Invalid(model),
            CheckResult::Unknown(reason) => Validity::Unknown(reason),
        }
    }
}

/// Reads the satisfying assignment for every bound variable out of a `Sat`
/// solver.
fn extract_model(
    sat: &SatSolver,
    var_bits: &HashMap<String, Vec<Lit>>,
    var_bools: &HashMap<String, Lit>,
) -> Model {
    extract_model_with(|v| sat.model_value(v), var_bits, var_bools)
}

/// [`extract_model`] over an arbitrary variable valuation — the preprocessed
/// path reads from a reconstructed assignment instead of the solver.
fn extract_model_with(
    value_of: impl Fn(Var) -> bool,
    var_bits: &HashMap<String, Vec<Lit>>,
    var_bools: &HashMap<String, Lit>,
) -> Model {
    let mut model = Model::default();
    for (name, bits) in var_bits {
        let mut value: u64 = 0;
        for (i, lit) in bits.iter().enumerate() {
            if value_of(lit.var()) ^ lit.is_neg() {
                value |= 1 << i;
            }
        }
        model.values.insert(name.clone(), value);
        model.widths.insert(name.clone(), bits.len() as u32);
    }
    for (name, lit) in var_bools {
        model
            .bools
            .insert(name.clone(), value_of(lit.var()) ^ lit.is_neg());
    }
    model
}

/// The result of a validity check (universally quantified over free variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The formula holds for every assignment.
    Valid,
    /// A counterexample was found.
    Invalid(Box<Model>),
    /// The budget was exhausted.
    Unknown(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let three = solver.ctx.bv32(3);
        let seven = solver.ctx.bv32(7);
        let prod = solver.ctx.bv_mul(x, three);
        let eq = solver.ctx.eq(prod, seven);
        // 3x == 7 has a solution modulo 2^32 (3 is invertible).
        solver.assert(eq);
        match solver.check(&SolverBudget::default()) {
            CheckResult::Sat(model) => {
                let xv = model.value("x").unwrap();
                assert_eq!((xv.wrapping_mul(3)) & 0xffff_ffff, 7);
            }
            other => panic!("expected sat, got {:?}", other),
        }
    }

    #[test]
    fn unsat_parity() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let two = solver.ctx.bv32(2);
        let one = solver.ctx.bv32(1);
        let double = solver.ctx.bv_mul(x, two);
        let eq = solver.ctx.eq(double, one);
        // 2x == 1 has no solution modulo 2^32.
        solver.assert(eq);
        assert!(solver.check(&SolverBudget::default()).is_unsat());
    }

    #[test]
    fn validity_of_commutativity() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let xy = solver.ctx.bv_add(x, y);
        let yx = solver.ctx.bv_add(y, x);
        let eq = solver.ctx.eq(xy, yx);
        assert_eq!(
            solver.check_validity(eq, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn invalid_formula_produces_counterexample() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let one = solver.ctx.bv32(1);
        let inc = solver.ctx.bv_add(x, one);
        let eq = solver.ctx.eq(inc, x);
        match solver.check_validity(eq, &SolverBudget::default()) {
            Validity::Invalid(model) => {
                assert!(model.value("x").is_some());
            }
            other => panic!("expected invalid, got {:?}", other),
        }
    }

    #[test]
    fn distributivity_is_valid() {
        // (x + y) * 2 == 2x + 2y — exercises the multiplier on symbolic inputs.
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let two = solver.ctx.bv32(2);
        let sum = solver.ctx.bv_add(x, y);
        let lhs = solver.ctx.bv_mul(sum, two);
        let x2 = solver.ctx.bv_mul(x, two);
        let y2 = solver.ctx.bv_mul(y, two);
        let rhs = solver.ctx.bv_add(x2, y2);
        let eq = solver.ctx.eq(lhs, rhs);
        assert_eq!(
            solver.check_validity(eq, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        // Two symbolic multiplications that are equal but hard for a SAT
        // solver with an extremely small conflict budget.
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let xy = solver.ctx.bv_mul(x, y);
        let yx = solver.ctx.bv_mul(y, x);
        let eq = solver.ctx.eq(xy, yx);
        let result = solver.check_validity(
            eq,
            &SolverBudget {
                max_conflicts: 3,
                max_clauses: 4_000_000,
            },
        );
        assert!(
            matches!(result, Validity::Unknown(_) | Validity::Valid),
            "tiny budgets must never report Invalid for a valid formula: {:?}",
            result
        );
    }

    #[test]
    fn clause_budget_is_enforced() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let y = solver.ctx.bv_var("y", 32);
        let xy = solver.ctx.bv_mul(x, y);
        let z = solver.ctx.bv32(12345);
        let eq = solver.ctx.eq(xy, z);
        solver.assert(eq);
        let result = solver.check(&SolverBudget {
            max_conflicts: 1_000_000,
            max_clauses: 10,
        });
        assert!(matches!(result, CheckResult::Unknown(_)));
    }

    #[test]
    fn stats_are_recorded() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let five = solver.ctx.bv32(5);
        let eq = solver.ctx.eq(x, five);
        solver.assert(eq);
        let _ = solver.check(&SolverBudget::default());
        assert!(solver.last_stats.cnf_vars > 0);
        assert!(solver.last_stats.cnf_clauses > 0);
    }

    #[test]
    fn ill_sorted_query_is_unknown_not_a_panic() {
        // `eq` between a boolean and a bitvector is constructible (the
        // Context only folds same-sort cases); it must surface as Unknown.
        let mut solver = Solver::new();
        let p = solver.ctx.bool_var("p");
        let x = solver.ctx.bv_var("x", 32);
        let eq = solver.ctx.eq(p, x);
        solver.assert(eq);
        match solver.check(&SolverBudget::default()) {
            CheckResult::Unknown(reason) => {
                assert!(reason.contains("different encodings"), "{}", reason)
            }
            other => panic!("expected Unknown, got {:?}", other),
        }
    }

    #[test]
    fn recycled_solver_replays_identically() {
        let mut solver = Solver::new();
        let run = |solver: &mut Solver| {
            let x = solver.ctx.bv_var("x", 32);
            let y = solver.ctx.bv_var("y", 32);
            let sum = solver.ctx.bv_add(x, y);
            let ten = solver.ctx.bv32(10);
            let eq = solver.ctx.eq(sum, ten);
            solver.assert(eq);
            (solver.ctx.len(), solver.check(&SolverBudget::default()))
        };
        let (terms_fresh, first) = run(&mut solver);
        solver.recycle();
        assert!(solver.ctx.is_empty());
        assert!(solver.assertions().is_empty());
        let (terms_recycled, second) = run(&mut solver);
        assert_eq!(terms_fresh, terms_recycled);
        assert_eq!(first, second);
    }

    /// Builds a small deterministic formula over `x`, `y` from an LCG
    /// state: a comparison between affine combinations, occasionally
    /// conjoined or negated. Cheap to solve (no multipliers on symbolic
    /// operands) yet varied enough to hit Sat, Unsat and shared structure.
    fn random_formula(ctx: &mut Context, state: &mut u64) -> TermId {
        let mut next = |m: u64| {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*state >> 33) % m
        };
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let c1 = ctx.bv_const(next(64), 32);
        let c2 = ctx.bv_const(next(64), 32);
        let lhs = ctx.bv_add(x, c1);
        let rhs = match next(3) {
            0 => ctx.bv_add(y, c2),
            1 => ctx.bv_sub(y, c2),
            _ => c2,
        };
        let cmp = match next(3) {
            0 => ctx.eq(lhs, rhs),
            1 => ctx.bv_ult(lhs, rhs),
            _ => ctx.bv_slt(lhs, rhs),
        };
        match next(4) {
            0 => ctx.not(cmp),
            1 => {
                let ten = ctx.bv32(10);
                let bound = ctx.bv_ult(y, ten);
                ctx.and(cmp, bound)
            }
            _ => cmp,
        }
    }

    /// Satellite property test: the incremental (assumption-based) verdict
    /// equals a fresh solve of base ∧ candidate over random term sets.
    #[test]
    fn incremental_verdict_equals_fresh_solve() {
        for seed in 0..12u64 {
            let base_seed = seed.wrapping_mul(0x9e37_79b9) + 1;
            let mut inc = Solver::new();
            let mut state = base_seed;
            let base = random_formula(&mut inc.ctx, &mut state);
            inc.assert(base);
            inc.begin_incremental(7).unwrap();
            let cand_seed = state;
            let mut cand_state = cand_seed;
            for i in 0..6usize {
                let cand = random_formula(&mut inc.ctx, &mut cand_state);
                let warm = inc.check_assuming(7, cand, &SolverBudget::default());

                // A fresh solver replaying the same construction order and
                // solving base ∧ candidate from scratch.
                let mut fresh = Solver::new();
                let mut fresh_state = base_seed;
                let fresh_base = random_formula(&mut fresh.ctx, &mut fresh_state);
                fresh.assert(fresh_base);
                let mut fresh_cand_state = cand_seed;
                let mut fresh_cand = None;
                for _ in 0..=i {
                    fresh_cand = Some(random_formula(&mut fresh.ctx, &mut fresh_cand_state));
                }
                fresh.assert(fresh_cand.unwrap());
                let cold = fresh.check(&SolverBudget::default());

                match (&warm, &cold) {
                    (CheckResult::Sat(_), CheckResult::Sat(_)) => {}
                    (CheckResult::Unsat, CheckResult::Unsat) => {}
                    other => panic!(
                        "seed {} candidate {}: warm/cold verdicts diverge: {:?}",
                        seed, i, other
                    ),
                }
            }
        }
    }

    #[test]
    fn check_assuming_pops_candidate_constraints() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let five = solver.ctx.bv32(5);
        let six = solver.ctx.bv32(6);
        let base = solver.ctx.eq(x, five);
        solver.assert(base);
        solver.begin_incremental(7).unwrap();

        let contradiction = solver.ctx.eq(x, six);
        assert!(solver
            .check_assuming(7, contradiction, &SolverBudget::default())
            .is_unsat());
        // The contradictory candidate is retracted: the next query sees
        // only the base again.
        let consistent = solver.ctx.eq(x, five);
        match solver.check_assuming(7, consistent, &SolverBudget::default()) {
            CheckResult::Sat(model) => assert_eq!(model.value("x"), Some(5)),
            other => panic!("expected sat after pop, got {:?}", other),
        }
        assert_eq!(solver.reuse_stats().assumption_reuses, 2);
    }

    #[test]
    fn check_assuming_without_session_falls_back_to_one_shot() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let five = solver.ctx.bv32(5);
        let base = solver.ctx.eq(x, five);
        solver.assert(base);
        let six = solver.ctx.bv32(6);
        let cand = solver.ctx.eq(x, six);
        assert!(solver
            .check_assuming(7, cand, &SolverBudget::default())
            .is_unsat());
        // The fallback must not leave the pushed candidate behind.
        assert_eq!(solver.assertions().len(), 1);
        assert!(solver.check(&SolverBudget::default()).is_sat());
    }

    #[test]
    fn blast_memo_survives_recycle_and_replays() {
        let mut solver = Solver::new();
        solver.enable_blast_memo();
        let run = |solver: &mut Solver| {
            let x = solver.ctx.bv_var("x", 32);
            let y = solver.ctx.bv_var("y", 32);
            let sum = solver.ctx.bv_add(x, y);
            let ten = solver.ctx.bv32(10);
            let eq = solver.ctx.eq(sum, ten);
            solver.assert(eq);
            solver.check(&SolverBudget::default())
        };
        let first = run(&mut solver);
        assert_eq!(solver.reuse_stats().blast_hits, 0);
        solver.recycle();
        let second = run(&mut solver);
        assert_eq!(
            solver.reuse_stats().blast_hits,
            1,
            "the re-built query must replay from the memo across recycle"
        );
        assert_eq!(first, second, "memo replay must not change the verdict");
    }

    #[test]
    fn memoized_check_matches_unmemoized_check() {
        let build = |solver: &mut Solver| {
            let x = solver.ctx.bv_var("x", 32);
            let y = solver.ctx.bv_var("y", 32);
            let sum = solver.ctx.bv_add(x, y);
            let diff = solver.ctx.bv_sub(x, y);
            let ten = solver.ctx.bv32(10);
            let four = solver.ctx.bv32(4);
            let c1 = solver.ctx.eq(sum, ten);
            let c2 = solver.ctx.eq(diff, four);
            solver.assert(c1);
            solver.assert(c2);
        };
        let mut plain = Solver::new();
        build(&mut plain);
        let plain_result = plain.check(&SolverBudget::default());

        let mut memoized = Solver::new();
        memoized.enable_blast_memo();
        build(&mut memoized);
        let warmup = memoized.check(&SolverBudget::default());
        let replayed = memoized.check(&SolverBudget::default());
        assert_eq!(plain_result, warmup);
        assert_eq!(plain_result, replayed);
        assert!(memoized.reuse_stats().blast_hits > 0);
    }

    /// Satellite property test: over random well-typed bitvector term
    /// pairs, the fully simplified solve (preprocess + inprocess) agrees
    /// with the plain solve on the verdict class, and `Sat` models really
    /// satisfy the original formula (pinned by re-solving with the model
    /// values asserted).
    #[test]
    fn simplified_check_matches_plain_check() {
        for seed in 0..25u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9).wrapping_add(17);
            let mut plain = Solver::new();
            let formula = random_formula(&mut plain.ctx, &mut state);
            plain.assert(formula);
            let want = plain.check(&SolverBudget::default());

            let mut simp = Solver::new();
            simp.set_simplify(SimplifyConfig::full());
            let mut state2 = seed.wrapping_mul(0x9e37_79b9).wrapping_add(17);
            let formula2 = random_formula(&mut simp.ctx, &mut state2);
            simp.assert(formula2);
            let got = simp.check(&SolverBudget::default());

            match (&want, &got) {
                (CheckResult::Sat(_), CheckResult::Sat(model)) => {
                    // The reconstructed model must satisfy the original
                    // formula: pin x and y to the model values and re-check.
                    let mut check = Solver::new();
                    let mut state3 = seed.wrapping_mul(0x9e37_79b9).wrapping_add(17);
                    let f = random_formula(&mut check.ctx, &mut state3);
                    check.assert(f);
                    for name in ["x", "y"] {
                        if let Some(v) = model.value(name) {
                            let var = check.ctx.bv_var(name, 32);
                            let val = check.ctx.bv_const(v, 32);
                            let pin = check.ctx.eq(var, val);
                            check.assert(pin);
                        }
                    }
                    assert!(
                        check.check(&SolverBudget::default()).is_sat(),
                        "seed {}: simplified model does not satisfy the original formula",
                        seed
                    );
                }
                (CheckResult::Unsat, CheckResult::Unsat) => {}
                other => panic!("seed {}: simplify changed the verdict: {:?}", seed, other),
            }
        }
    }

    /// The incremental pathway with simplification enabled (base-clause
    /// preprocessing under a frozen blast state) keeps the fresh-solve
    /// verdicts.
    #[test]
    fn incremental_with_simplify_matches_fresh_solve() {
        for seed in 0..12u64 {
            let base_seed = seed.wrapping_mul(0x51_7cc1).wrapping_add(3);
            let mut inc = Solver::new();
            inc.set_simplify(SimplifyConfig::full());
            let mut state = base_seed;
            let base = random_formula(&mut inc.ctx, &mut state);
            inc.assert(base);
            inc.begin_incremental(11).unwrap();
            let cand_seed = state;
            let mut cand_state = cand_seed;
            for i in 0..5usize {
                let cand = random_formula(&mut inc.ctx, &mut cand_state);
                let warm = inc.check_assuming(11, cand, &SolverBudget::default());

                let mut fresh = Solver::new();
                let mut fresh_state = base_seed;
                let fresh_base = random_formula(&mut fresh.ctx, &mut fresh_state);
                fresh.assert(fresh_base);
                let mut fresh_cand_state = cand_seed;
                let mut fresh_cand = None;
                for _ in 0..=i {
                    fresh_cand = Some(random_formula(&mut fresh.ctx, &mut fresh_cand_state));
                }
                fresh.assert(fresh_cand.unwrap());
                let cold = fresh.check(&SolverBudget::default());

                match (&warm, &cold) {
                    (CheckResult::Sat(_), CheckResult::Sat(_)) => {}
                    (CheckResult::Unsat, CheckResult::Unsat) => {}
                    other => panic!(
                        "seed {} candidate {}: simplified warm/cold verdicts diverge: {:?}",
                        seed, i, other
                    ),
                }
            }
        }
    }

    #[test]
    fn simplify_counters_populate_and_stay_zero_when_off() {
        let build = |solver: &mut Solver| {
            let x = solver.ctx.bv_var("x", 32);
            let y = solver.ctx.bv_var("y", 32);
            let prod = solver.ctx.bv_mul(x, y);
            let ten = solver.ctx.bv32(10);
            let eq = solver.ctx.eq(prod, ten);
            solver.assert(eq);
        };
        let mut plain = Solver::new();
        build(&mut plain);
        let _ = plain.check(&SolverBudget::default());
        assert!(plain.simplify_stats().is_zero());

        let mut simp = Solver::new();
        simp.set_simplify(SimplifyConfig::full());
        build(&mut simp);
        let _ = simp.check(&SolverBudget::default());
        let stats = simp.simplify_stats();
        assert!(
            stats.vars_eliminated > 0,
            "a Tseitin blast must yield eliminable variables: {:?}",
            stats
        );
        assert!(stats.arena_bytes > 0);
    }

    #[test]
    fn model_display_and_i32() {
        let mut solver = Solver::new();
        let x = solver.ctx.bv_var("x", 32);
        let neg = solver.ctx.bv32(-9);
        let eq = solver.ctx.eq(x, neg);
        solver.assert(eq);
        match solver.check(&SolverBudget::default()) {
            CheckResult::Sat(model) => {
                assert_eq!(model.value_i32("x"), Some(-9));
                assert!(model.to_string().contains("x = -9"));
            }
            other => panic!("expected sat, got {:?}", other),
        }
    }
}
